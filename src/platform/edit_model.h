// Collaborative-editing dynamics, including the "edit war" the paper
// observed (Section 5.1.2): unguided workers on a shared document repeatedly
// override each other, producing more edits (6.25 vs 3.45 on average for
// sentence translation) and lower quality.
#ifndef STRATREC_PLATFORM_EDIT_MODEL_H_
#define STRATREC_PLATFORM_EDIT_MODEL_H_

#include "src/common/rng.h"
#include "src/core/strategy.h"

namespace stratrec::platform {

/// The edit trace of one task's collaborative session.
struct EditOutcome {
  int num_edits = 0;
  /// Conflicting overwrites (pairs of edits that undid each other).
  int num_conflicts = 0;
  /// Quality lost to conflicts, in [0, 1].
  double quality_penalty = 0.0;
};

/// Knobs of the editing model, calibrated to the paper's observations.
struct EditModelOptions {
  /// Mean edits per task when StratRec guides the deployment (paper: 3.45).
  double guided_edit_rate = 3.45;
  /// Mean edits per task when workers are left to themselves (paper: 6.25).
  double unguided_edit_rate = 6.25;
  /// Probability that a simultaneous-collaborative edit conflicts with an
  /// earlier one when unguided.
  double unguided_conflict_rate = 0.35;
  /// Same, when the deployment follows a recommended structure.
  double guided_conflict_rate = 0.08;
  /// Quality penalty per conflict.
  double penalty_per_conflict = 0.03;
  /// Cap on the total conflict penalty.
  double max_penalty = 0.30;
};

/// Simulates one task's editing session under a strategy stage.
///
/// Conflicts arise only for simultaneous-collaborative work (the shared
/// document is edited concurrently); sequential or independent organization
/// serializes contributions.
EditOutcome SimulateEditing(const core::StageSpec& stage, bool guided,
                            const EditModelOptions& options, Rng* rng);

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_EDIT_MODEL_H_
