#include "src/platform/task.h"

namespace stratrec::platform {

const char* TaskTypeName(TaskType type) {
  switch (type) {
    case TaskType::kSentenceTranslation:
      return "translation";
    case TaskType::kTextCreation:
      return "creation";
  }
  return "?";
}

std::vector<Task> SampleTasks(TaskType type) {
  std::vector<Task> tasks;
  if (type == TaskType::kSentenceTranslation) {
    tasks.push_back({"rhyme-1", type, "Mary had a little lamb"});
    tasks.push_back({"rhyme-2", type, "Lavender's blue, dilly dilly"});
    tasks.push_back({"rhyme-3", type, "Rock-a-bye, baby, in the treetop"});
  } else {
    tasks.push_back({"topic-1", type, "Robert Mueller Report"});
    tasks.push_back({"topic-2", type, "Notre Dame Cathedral"});
    tasks.push_back({"topic-3", type, "2019 Pulitzer prizes"});
  }
  return tasks;
}

Hit MakeHit(std::string id, TaskType type, std::vector<Task> tasks) {
  Hit hit;
  hit.id = std::move(id);
  hit.type = type;
  hit.tasks = std::move(tasks);
  return hit;
}

}  // namespace stratrec::platform
