#include "src/platform/execution.h"

#include <algorithm>

#include "src/common/float_compare.h"
#include "src/platform/expert.h"

namespace stratrec::platform {

ExecutionSimulator::ExecutionSimulator(const WorkerPool* pool,
                                       const ExecutionOptions& options,
                                       uint64_t seed)
    : pool_(pool), options_(options), rng_(seed) {}

DeploymentOutcome ExecutionSimulator::Execute(const Hit& hit,
                                              const core::StageSpec& stage,
                                              DeploymentWindow window,
                                              bool guided) {
  const double availability =
      pool_->ObserveAvailability(window, hit.type, &rng_);
  return ExecuteAtAvailability(hit, stage, availability, guided);
}

DeploymentOutcome ExecutionSimulator::ExecuteAtAvailability(
    const Hit& hit, const core::StageSpec& stage, double availability,
    bool guided) {
  DeploymentOutcome outcome;
  outcome.availability = availability;

  const core::StrategyProfile truth = TrueProfile(hit.type, stage);

  // Collaborative editing runs per task; conflicts erode latent quality.
  double conflict_penalty = 0.0;
  const size_t num_tasks = std::max<size_t>(1, hit.tasks.size());
  for (size_t t = 0; t < num_tasks; ++t) {
    const EditOutcome edits =
        SimulateEditing(stage, guided, options_.edit_model, &rng_);
    outcome.num_edits += edits.num_edits;
    outcome.num_conflicts += edits.num_conflicts;
    conflict_penalty += edits.quality_penalty;
  }
  conflict_penalty /= static_cast<double>(num_tasks);

  // Latent quality from the response surface, minus edit-war damage, plus
  // observation noise; the expert panel then scores it.
  const double latent_quality = ClampUnit(
      truth.quality.Eval(availability) - conflict_penalty +
      rng_.Normal(0.0, options_.noise.quality_std));
  ExpertPanel panel(options_.experts, options_.expert_noise_std, rng_.Next());
  std::vector<double> task_qualities(num_tasks, latent_quality);
  outcome.observed.quality = panel.AggregateScore(task_qualities).value_or(
      latent_quality);

  outcome.observed.cost = ClampUnit(truth.cost.Eval(availability) +
                                    rng_.Normal(0.0, options_.noise.cost_std));
  // Latency is measured relative to the nominal 72-hour window; scarce
  // weekends can overrun it (the Table 6 surfaces exceed 1.0 at low
  // availability), so only a loose physical cap applies — clamping at 1.0
  // would flatten the linear relationship the fitting pipeline estimates.
  outcome.observed.latency =
      Clamp(truth.latency.Eval(availability) +
                rng_.Normal(0.0, options_.noise.latency_std),
            0.0, 2.0);
  return outcome;
}

std::vector<core::Observation> ExecutionSimulator::CollectObservations(
    const Hit& hit, const core::StageSpec& stage, int repetitions) {
  std::vector<core::Observation> observations;
  observations.reserve(static_cast<size_t>(repetitions) * kNumWindows);
  for (int r = 0; r < repetitions; ++r) {
    for (int w = 0; w < kNumWindows; ++w) {
      const DeploymentOutcome outcome =
          Execute(hit, stage, static_cast<DeploymentWindow>(w), /*guided=*/true);
      observations.push_back(
          core::Observation{outcome.availability, outcome.observed});
    }
  }
  return observations;
}

}  // namespace stratrec::platform
