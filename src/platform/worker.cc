#include "src/platform/worker.h"

#include <algorithm>

#include "src/common/float_compare.h"

namespace stratrec::platform {

bool PassesFilter(const WorkerProfile& worker, const RecruitmentFilter& filter) {
  if (worker.hit_approval_rate < filter.min_hit_approval_rate) return false;
  if (!filter.regions.empty() &&
      std::find(filter.regions.begin(), filter.regions.end(), worker.region) ==
          filter.regions.end()) {
    return false;
  }
  if (filter.require_bachelors && !worker.bachelors_degree) return false;
  return true;
}

RecruitmentFilter FilterForTaskType(TaskType type) {
  RecruitmentFilter filter;
  if (type == TaskType::kSentenceTranslation) {
    filter.regions = {Region::kUs, Region::kIndia};
  } else {
    filter.regions = {Region::kUs};
    filter.require_bachelors = true;
  }
  return filter;
}

WorkerProfile SampleWorker(int64_t id, Rng* rng) {
  WorkerProfile worker;
  worker.id = id;
  worker.skill = rng->TruncatedNormal(0.82, 0.12, 0.3, 1.0);
  worker.hit_approval_rate = rng->TruncatedNormal(0.95, 0.05, 0.5, 1.0);
  const double region_draw = rng->Uniform();
  worker.region = region_draw < 0.55
                      ? Region::kUs
                      : (region_draw < 0.85 ? Region::kIndia : Region::kOther);
  worker.bachelors_degree = rng->Bernoulli(0.6);
  for (double& aptitude : worker.type_aptitude) {
    aptitude = rng->Uniform(0.75, 1.0);
  }
  return worker;
}

bool PassesQualification(const WorkerProfile& worker, TaskType type, Rng* rng,
                         double passing_score) {
  const double demonstrated =
      ClampUnit(worker.SkillFor(type) + rng->Normal(0.0, 0.05));
  return demonstrated >= passing_score;
}

}  // namespace stratrec::platform
