#include "src/platform/edit_model.h"

#include <algorithm>

namespace stratrec::platform {

EditOutcome SimulateEditing(const core::StageSpec& stage, bool guided,
                            const EditModelOptions& options, Rng* rng) {
  EditOutcome outcome;
  const double rate =
      guided ? options.guided_edit_rate : options.unguided_edit_rate;
  // At least one edit: somebody produces the artifact.
  outcome.num_edits = std::max(1, rng->Poisson(rate));

  const bool concurrent_shared_document =
      stage.structure == core::Structure::kSimultaneous &&
      stage.organization == core::Organization::kCollaborative;
  if (concurrent_shared_document) {
    const double conflict_rate =
        guided ? options.guided_conflict_rate : options.unguided_conflict_rate;
    for (int e = 1; e < outcome.num_edits; ++e) {
      if (rng->Bernoulli(conflict_rate)) ++outcome.num_conflicts;
    }
    outcome.quality_penalty =
        std::min(options.max_penalty,
                 options.penalty_per_conflict *
                     static_cast<double>(outcome.num_conflicts));
  }
  return outcome;
}

}  // namespace stratrec::platform
