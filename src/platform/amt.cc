#include "src/platform/amt.h"

#include <algorithm>

#include "src/stats/descriptive.h"

namespace stratrec::platform {
namespace {

using core::StageSpec;

StageSpec SeqIndCro() {
  return StageSpec{core::Structure::kSequential,
                   core::Organization::kIndependent,
                   core::WorkStyle::kCrowdOnly};
}

StageSpec SimColCro() {
  return StageSpec{core::Structure::kSimultaneous,
                   core::Organization::kCollaborative,
                   core::WorkStyle::kCrowdOnly};
}

}  // namespace

AmtSimulator::AmtSimulator(const AmtStudyOptions& options, uint64_t seed)
    : options_(options),
      pool_(options.pool, seed),
      executor_(&pool_, options.execution, seed ^ 0x5bd1e995u),
      rng_(seed ^ 0x9E3779B9u) {}

std::vector<AvailabilityCell> AmtSimulator::RunAvailabilityStudy(
    TaskType type) {
  std::vector<AvailabilityCell> cells;
  for (const StageSpec& stage : {SeqIndCro(), SimColCro()}) {
    for (int w = 0; w < kNumWindows; ++w) {
      const auto window = static_cast<DeploymentWindow>(w);
      std::vector<double> fractions;
      for (int r = 0; r < options_.availability_repetitions; ++r) {
        fractions.push_back(pool_.ObserveAvailability(window, type, &rng_));
      }
      AvailabilityCell cell;
      cell.window = window;
      cell.stage = stage;
      cell.mean = stats::Mean(fractions).value_or(0.0);
      cell.std_error = stats::StdError(fractions).value_or(0.0);
      cells.push_back(cell);
    }
  }
  return cells;
}

std::vector<core::Observation> AmtSimulator::CollectModelObservations(
    TaskType type, const StageSpec& stage) {
  const Hit hit = MakeHit("model-fit", type, SampleTasks(type));
  return executor_.CollectObservations(hit, stage,
                                       options_.observation_repetitions);
}

Result<core::Catalog> AmtSimulator::BuildCatalog(TaskType type) {
  core::Catalog catalog;
  for (const StageSpec& stage : core::AllStageSpecs()) {
    auto observations = CollectModelObservations(type, stage);
    auto fitted = core::FitProfile(observations);
    if (!fitted.ok()) return fitted.status();
    catalog.strategies.emplace_back(core::StageName(stage), stage);
    catalog.profiles.push_back(fitted->profile);
  }
  return catalog;
}

Result<core::StratRec> AmtSimulator::BuildStratRec(TaskType type) {
  auto catalog = BuildCatalog(type);
  if (!catalog.ok()) return catalog.status();
  return core::StratRec::Create(std::move(*catalog));
}

Result<MirroredStudyResult> AmtSimulator::RunMirroredStudy(
    TaskType type, int num_tasks, const core::ParamVector& thresholds) {
  auto stratrec = BuildStratRec(type);
  if (!stratrec.ok()) return stratrec.status();

  const Hit hit = MakeHit("mirror", type, SampleTasks(type));
  const std::vector<StageSpec> catalog = core::AllStageSpecs();

  MirroredStudyResult result;
  for (int t = 0; t < num_tasks; ++t) {
    const auto window =
        static_cast<DeploymentWindow>(t % kNumWindows);
    const double availability =
        pool_.ObserveAvailability(window, type, &rng_);

    // --- Guided arm: ask StratRec which strategy to deploy with. ---
    core::DeploymentRequest request;
    request.id = "mirror-" + std::to_string(t);
    request.thresholds = thresholds;
    request.k = 1;
    auto report =
        stratrec->ProcessBatchAtAvailability({request}, availability);
    if (!report.ok()) return report.status();

    StageSpec guided_stage = SeqIndCro();
    const auto& outcome = report->aggregator.batch.outcomes[0];
    if (outcome.satisfied && !outcome.strategies.empty()) {
      guided_stage = catalog[outcome.strategies.front()];
    } else if (!report->alternatives.empty() &&
               !report->alternatives[0].result.strategies.empty()) {
      guided_stage = catalog[report->alternatives[0].result.strategies.front()];
    }
    const DeploymentOutcome guided = executor_.ExecuteAtAvailability(
        hit, guided_stage, availability, /*guided=*/true);

    // --- Unguided arm: workers self-organize on the shared document, which
    // the paper observed devolves into simultaneous-collaborative editing
    // with edit wars. ---
    const DeploymentOutcome unguided = executor_.ExecuteAtAvailability(
        hit, SimColCro(), availability, /*guided=*/false);

    result.quality_with.push_back(guided.observed.quality);
    result.quality_without.push_back(unguided.observed.quality);
    result.cost_with.push_back(guided.observed.cost);
    result.cost_without.push_back(unguided.observed.cost);
    result.latency_with.push_back(guided.observed.latency);
    result.latency_without.push_back(unguided.observed.latency);
    result.edits_with.push_back(static_cast<double>(guided.num_edits) /
                                std::max<size_t>(1, hit.tasks.size()));
    result.edits_without.push_back(static_cast<double>(unguided.num_edits) /
                                   std::max<size_t>(1, hit.tasks.size()));
  }
  return result;
}

}  // namespace stratrec::platform
