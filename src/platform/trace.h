// Presence traces: the historical arrival/departure data from which worker
// availability is estimated (paper Section 2.1: "this pdf is computed from
// historical data on workers' arrival and departure on a platform").
//
// A trace is a set of presence intervals within one deployment window. The
// analysis — concurrency profile, peak concurrency, worker-hours — runs an
// event sweep over interval endpoints and feeds both the availability
// estimation pipeline and capacity sanity checks in the studies.
#ifndef STRATREC_PLATFORM_TRACE_H_
#define STRATREC_PLATFORM_TRACE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/platform/worker_pool.h"

namespace stratrec::platform {

/// One worker's contiguous online interval within a window.
struct PresenceInterval {
  int64_t worker_id = 0;
  double start_hours = 0.0;
  double end_hours = 0.0;
};

/// An analyzed presence trace for one deployment window.
class PresenceTrace {
 public:
  /// Validates intervals (0 <= start <= end <= window_hours) and builds the
  /// sweep structures. `window_hours` must be positive.
  static Result<PresenceTrace> Create(std::vector<PresenceInterval> intervals,
                                      double window_hours);

  /// Builds a trace from the pool simulator's presence records.
  static Result<PresenceTrace> FromPresenceRecords(
      const std::vector<PresenceRecord>& records, double window_hours);

  size_t num_intervals() const { return intervals_.size(); }
  double window_hours() const { return window_hours_; }

  /// Number of workers online at time t (boundary inclusive at start,
  /// exclusive at end).
  int ConcurrencyAt(double t) const;

  /// Maximum simultaneous workers over the window.
  int PeakConcurrency() const;

  /// Total person-hours across all intervals.
  double WorkerHours() const;

  /// WorkerHours() / window length: the expected concurrency.
  double AverageConcurrency() const;

  /// Step function of concurrency: (time, level) changepoints, starting at
  /// time 0 with level 0 implied; sorted by time.
  std::vector<std::pair<double, int>> ConcurrencyProfile() const;

  /// Distinct participating workers divided by `pool_size` — the paper's
  /// x'/x availability fraction. Fails when pool_size is 0.
  Result<double> AvailabilityFraction(size_t pool_size) const;

 private:
  PresenceTrace(std::vector<PresenceInterval> intervals, double window_hours)
      : intervals_(std::move(intervals)), window_hours_(window_hours) {}

  std::vector<PresenceInterval> intervals_;
  double window_hours_ = 0.0;
};

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_TRACE_H_
