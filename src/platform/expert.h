// Domain-expert quality scoring (paper Section 5.1: completed tasks and
// qualification tests are judged by domain experts as a percentage; results
// are aggregated after 72 hours).
#ifndef STRATREC_PLATFORM_EXPERT_H_
#define STRATREC_PLATFORM_EXPERT_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace stratrec::platform {

/// A panel of noisy experts scoring artifacts against their latent quality.
class ExpertPanel {
 public:
  /// `num_experts` >= 1; `score_noise_std` is each expert's judgement noise.
  ExpertPanel(int num_experts, double score_noise_std, uint64_t seed);

  /// One expert's score of an artifact with latent quality `true_quality`,
  /// clamped to [0, 1].
  double ScoreOnce(double true_quality);

  /// Panel score: mean over all experts.
  double Score(double true_quality);

  /// Scores a batch of artifacts and returns the mean panel score.
  Result<double> AggregateScore(const std::vector<double>& true_qualities);

  int num_experts() const { return num_experts_; }

 private:
  int num_experts_;
  double score_noise_std_;
  Rng rng_;
};

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_EXPERT_H_
