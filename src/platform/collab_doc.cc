#include "src/platform/collab_doc.h"

#include <algorithm>
#include <cmath>

#include "src/common/float_compare.h"

namespace stratrec::platform {

CollabDocument::CollabDocument(size_t num_segments)
    : quality_(num_segments, 0.0),
      written_(num_segments, false),
      last_editor_(num_segments, -1) {}

double CollabDocument::SegmentQuality(size_t segment) const {
  return segment < quality_.size() ? quality_[segment] : 0.0;
}

bool CollabDocument::SegmentWritten(size_t segment) const {
  return segment < written_.size() && written_[segment];
}

double CollabDocument::MeanQuality() const {
  if (quality_.empty()) return 0.0;
  double total = 0.0;
  for (double q : quality_) total += q;
  return total / static_cast<double>(quality_.size());
}

Status CollabDocument::Apply(const EditOperation& op) {
  if (op.segment >= quality_.size()) {
    return Status::OutOfRange("segment index out of range");
  }
  if (op.kind == EditOperation::Kind::kCreate && written_[op.segment]) {
    return Status::FailedPrecondition("create on non-empty segment");
  }
  if (op.kind != EditOperation::Kind::kCreate && !written_[op.segment]) {
    return Status::FailedPrecondition("refine/override on empty segment");
  }
  quality_[op.segment] = ClampUnit(op.resulting_quality);
  written_[op.segment] = true;
  last_editor_[op.segment] = op.worker_id;
  log_.push_back(op);
  return Status::OK();
}

int CollabDocument::CountOverrides() const {
  int overrides = 0;
  for (const EditOperation& op : log_) {
    if (op.kind == EditOperation::Kind::kOverride) ++overrides;
  }
  return overrides;
}

namespace {

// A worker's fresh contribution quality for a segment.
double FreshQuality(double skill, Rng* rng) {
  return ClampUnit(skill * rng->Uniform(0.85, 1.0));
}

// One worker's pass over the whole document at the given times. `sees
// latest` is false for concurrent editors who may override.
struct PlannedEdit {
  int64_t worker = 0;
  double skill = 0.0;
  double time = 0.0;
  size_t segment = 0;
};

Status ApplyPlannedEdits(std::vector<PlannedEdit> edits, bool concurrent,
                         bool guided, const SessionOptions& options,
                         CollabDocument* document, Rng* rng) {
  std::stable_sort(edits.begin(), edits.end(),
                   [](const PlannedEdit& a, const PlannedEdit& b) {
                     return a.time < b.time;
                   });
  // Last edit time per segment, to decide concurrency.
  std::vector<double> last_time(document->num_segments(), -1e9);
  for (const PlannedEdit& edit : edits) {
    EditOperation op;
    op.worker_id = edit.worker;
    op.timestamp_hours = edit.time;
    op.segment = edit.segment;
    if (!document->SegmentWritten(edit.segment)) {
      op.kind = EditOperation::Kind::kCreate;
      op.resulting_quality = FreshQuality(edit.skill, rng);
    } else {
      const bool close_in_time =
          edit.time - last_time[edit.segment] < options.conflict_window_hours;
      const double override_prob =
          guided ? options.guided_override_prob : options.unguided_override_prob;
      const bool overrides =
          concurrent && close_in_time && rng->Bernoulli(override_prob);
      const double current = document->SegmentQuality(edit.segment);
      if (overrides) {
        // The worker rewrites without having seen the latest content:
        // context is lost, so the result is a penalized fresh contribution.
        op.kind = EditOperation::Kind::kOverride;
        op.resulting_quality = ClampUnit(FreshQuality(edit.skill, rng) -
                                         options.override_penalty);
      } else {
        // Informed refinement: close part of the gap toward the worker's
        // skill; a weaker worker never damages content they can see.
        op.kind = EditOperation::Kind::kRefine;
        const double target = std::max(current, edit.skill);
        op.resulting_quality =
            current + options.refine_gain * (target - current);
      }
    }
    STRATREC_RETURN_NOT_OK(document->Apply(op));
    last_time[edit.segment] = edit.time;
  }
  return Status::OK();
}

}  // namespace

Result<SessionOutcome> RunSession(const core::StageSpec& stage,
                                  const std::vector<double>& worker_skills,
                                  bool guided, const SessionOptions& options,
                                  CollabDocument* document, Rng* rng) {
  if (document == nullptr || rng == nullptr) {
    return Status::InvalidArgument("document and rng must be non-null");
  }
  if (worker_skills.empty()) {
    return Status::InvalidArgument("session needs >= 1 worker");
  }
  if (document->num_segments() == 0) {
    return Status::InvalidArgument("document needs >= 1 segment");
  }

  const bool sequential = stage.structure == core::Structure::kSequential;
  const bool independent =
      stage.organization == core::Organization::kIndependent;
  const size_t segments = document->num_segments();

  if (independent) {
    // Each worker fills a private copy; the evaluation step keeps the best
    // copy (Figure 2c). No conflicts by construction.
    CollabDocument best(segments);
    double best_quality = -1.0;
    int total_edits = 0;
    for (size_t w = 0; w < worker_skills.size(); ++w) {
      CollabDocument copy(segments);
      std::vector<PlannedEdit> edits;
      const double start =
          sequential ? static_cast<double>(w) * options.session_hours
                     : rng->Uniform(0.0, options.session_hours);
      for (size_t seg = 0; seg < segments; ++seg) {
        edits.push_back(PlannedEdit{static_cast<int64_t>(w), worker_skills[w],
                                    start + 0.01 * static_cast<double>(seg),
                                    seg});
      }
      STRATREC_RETURN_NOT_OK(ApplyPlannedEdits(std::move(edits),
                                               /*concurrent=*/false, guided,
                                               options, &copy, rng));
      total_edits += static_cast<int>(copy.log().size());
      if (copy.MeanQuality() > best_quality) {
        best_quality = copy.MeanQuality();
        best = std::move(copy);
      }
    }
    *document = std::move(best);
    SessionOutcome outcome;
    outcome.quality = document->MeanQuality();
    outcome.num_edits = total_edits;
    outcome.num_overrides = 0;
    return outcome;
  }

  // Collaborative: one shared document.
  std::vector<PlannedEdit> edits;
  for (size_t w = 0; w < worker_skills.size(); ++w) {
    // Sequential workers take non-overlapping turns; simultaneous workers
    // all arrive within the same session window.
    const double start =
        sequential ? static_cast<double>(w) * options.session_hours
                   : rng->Uniform(0.0, options.session_hours * 0.5);
    for (size_t seg = 0; seg < segments; ++seg) {
      const double jitter =
          rng->Uniform(0.0, options.session_hours * 0.4);
      edits.push_back(PlannedEdit{static_cast<int64_t>(w), worker_skills[w],
                                  start + jitter, seg});
    }
  }
  STRATREC_RETURN_NOT_OK(ApplyPlannedEdits(std::move(edits),
                                           /*concurrent=*/!sequential, guided,
                                           options, document, rng));
  SessionOutcome outcome;
  outcome.quality = document->MeanQuality();
  outcome.num_edits = static_cast<int>(document->log().size());
  outcome.num_overrides = document->CountOverrides();
  return outcome;
}

}  // namespace stratrec::platform
