#include "src/platform/trace.h"

#include <algorithm>
#include <set>

namespace stratrec::platform {

Result<PresenceTrace> PresenceTrace::Create(
    std::vector<PresenceInterval> intervals, double window_hours) {
  if (window_hours <= 0.0) {
    return Status::InvalidArgument("window length must be positive");
  }
  for (const PresenceInterval& interval : intervals) {
    if (interval.start_hours < 0.0 || interval.end_hours > window_hours ||
        interval.start_hours > interval.end_hours) {
      return Status::InvalidArgument("interval outside window or inverted");
    }
  }
  return PresenceTrace(std::move(intervals), window_hours);
}

Result<PresenceTrace> PresenceTrace::FromPresenceRecords(
    const std::vector<PresenceRecord>& records, double window_hours) {
  std::vector<PresenceInterval> intervals;
  intervals.reserve(records.size());
  for (const PresenceRecord& record : records) {
    intervals.push_back(PresenceInterval{record.worker_id,
                                         record.arrival_hours,
                                         record.departure_hours});
  }
  return Create(std::move(intervals), window_hours);
}

int PresenceTrace::ConcurrencyAt(double t) const {
  int online = 0;
  for (const PresenceInterval& interval : intervals_) {
    if (interval.start_hours <= t && t < interval.end_hours) ++online;
  }
  return online;
}

std::vector<std::pair<double, int>> PresenceTrace::ConcurrencyProfile() const {
  // Event sweep over endpoints: +1 at start, -1 at end.
  std::vector<std::pair<double, int>> events;
  events.reserve(2 * intervals_.size());
  for (const PresenceInterval& interval : intervals_) {
    events.emplace_back(interval.start_hours, +1);
    events.emplace_back(interval.end_hours, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // departures before arrivals at t
            });
  std::vector<std::pair<double, int>> profile;
  int level = 0;
  for (size_t i = 0; i < events.size();) {
    const double t = events[i].first;
    while (i < events.size() && events[i].first == t) {
      level += events[i].second;
      ++i;
    }
    if (profile.empty() || profile.back().second != level) {
      profile.emplace_back(t, level);
    }
  }
  return profile;
}

int PresenceTrace::PeakConcurrency() const {
  int peak = 0;
  for (const auto& [time, level] : ConcurrencyProfile()) {
    peak = std::max(peak, level);
  }
  return peak;
}

double PresenceTrace::WorkerHours() const {
  double total = 0.0;
  for (const PresenceInterval& interval : intervals_) {
    total += interval.end_hours - interval.start_hours;
  }
  return total;
}

double PresenceTrace::AverageConcurrency() const {
  return WorkerHours() / window_hours_;
}

Result<double> PresenceTrace::AvailabilityFraction(size_t pool_size) const {
  if (pool_size == 0) {
    return Status::InvalidArgument("pool size must be positive");
  }
  std::set<int64_t> distinct;
  for (const PresenceInterval& interval : intervals_) {
    distinct.insert(interval.worker_id);
  }
  return static_cast<double>(distinct.size()) /
         static_cast<double>(pool_size);
}

}  // namespace stratrec::platform
