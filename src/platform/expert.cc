#include "src/platform/expert.h"

#include "src/common/float_compare.h"

namespace stratrec::platform {

ExpertPanel::ExpertPanel(int num_experts, double score_noise_std, uint64_t seed)
    : num_experts_(num_experts < 1 ? 1 : num_experts),
      score_noise_std_(score_noise_std),
      rng_(seed) {}

double ExpertPanel::ScoreOnce(double true_quality) {
  return ClampUnit(true_quality + rng_.Normal(0.0, score_noise_std_));
}

double ExpertPanel::Score(double true_quality) {
  double total = 0.0;
  for (int e = 0; e < num_experts_; ++e) total += ScoreOnce(true_quality);
  return total / static_cast<double>(num_experts_);
}

Result<double> ExpertPanel::AggregateScore(
    const std::vector<double>& true_qualities) {
  if (true_qualities.empty()) {
    return Status::InvalidArgument("no artifacts to score");
  }
  double total = 0.0;
  for (double q : true_qualities) total += Score(q);
  return total / static_cast<double>(true_qualities.size());
}

}  // namespace stratrec::platform
