#include "src/platform/ground_truth.h"

namespace stratrec::platform {
namespace {

using core::LinearModel;
using core::Organization;
using core::StageSpec;
using core::StrategyProfile;
using core::Structure;
using core::WorkStyle;

StrategyProfile Table6Profile(TaskType type, bool seq_ind) {
  StrategyProfile profile;
  if (type == TaskType::kSentenceTranslation) {
    if (seq_ind) {
      profile.quality = LinearModel{0.09, 0.85};
      profile.cost = LinearModel{1.00, 0.00};
      profile.latency = LinearModel{-0.98, 1.40};
    } else {
      profile.quality = LinearModel{0.09, 0.82};
      profile.cost = LinearModel{0.82, 0.17};
      profile.latency = LinearModel{-0.63, 1.01};
    }
  } else {
    if (seq_ind) {
      profile.quality = LinearModel{0.10, 0.80};
      profile.cost = LinearModel{1.00, 0.00};
      profile.latency = LinearModel{-1.56, 2.04};
    } else {
      profile.quality = LinearModel{0.19, 0.70};
      profile.cost = LinearModel{1.00, 0.00};
      profile.latency = LinearModel{-1.38, 1.81};
    }
  }
  return profile;
}

}  // namespace

StrategyProfile TrueProfile(TaskType type, const StageSpec& stage) {
  const bool is_seq_ind_cro = stage.structure == Structure::kSequential &&
                              stage.organization == Organization::kIndependent &&
                              stage.style == WorkStyle::kCrowdOnly;
  const bool is_sim_col_cro = stage.structure == Structure::kSimultaneous &&
                              stage.organization == Organization::kCollaborative &&
                              stage.style == WorkStyle::kCrowdOnly;
  if (is_seq_ind_cro) return Table6Profile(type, /*seq_ind=*/true);
  if (is_sim_col_cro) return Table6Profile(type, /*seq_ind=*/false);

  // Extrapolate from the nearest measured base: sequential-ish stages start
  // from the SEQ-IND-CRO surface, simultaneous-collaborative ones from
  // SIM-COL-CRO.
  StrategyProfile profile =
      Table6Profile(type, stage.structure == Structure::kSequential ||
                              stage.organization == Organization::kIndependent);

  if (stage.structure == Structure::kSimultaneous) {
    // Parallel solicitation cuts latency: shallower decay, lower intercept.
    profile.latency.alpha *= 0.7;
    profile.latency.beta *= 0.78;
  }
  if (stage.organization == Organization::kIndependent &&
      stage.structure == Structure::kSimultaneous) {
    // Independent parallel work needs a final evaluation step to pick the
    // best contribution (Figure 2c): small cost and quality premium.
    profile.cost.beta += 0.04;
    profile.quality.beta += 0.02;
  }
  if (stage.style == WorkStyle::kHybrid) {
    // Machine output provides a quality floor at low availability and
    // reduces paid work (Figure 2d).
    profile.quality.beta += 0.06;
    profile.quality.alpha *= 0.7;
    profile.cost.alpha *= 0.85;
    profile.latency.beta *= 0.92;
  }
  return profile;
}

}  // namespace stratrec::platform
