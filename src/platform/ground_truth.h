// Ground-truth response surfaces of the simulated platform.
//
// The paper's Table 6 reports fitted linear coefficients (alpha, beta)
// relating each deployment parameter to worker availability, per (task type,
// strategy). The simulator embeds those exact coefficients as ground truth
// for the two strategies the paper deployed (SEQ-IND-CRO, SIM-COL-CRO) and
// principled extrapolations for the remaining six stage specs, so the same
// estimation pipeline (deploy -> observe -> fit -> CI check) can run offline.
#ifndef STRATREC_PLATFORM_GROUND_TRUTH_H_
#define STRATREC_PLATFORM_GROUND_TRUTH_H_

#include "src/core/linear_model.h"
#include "src/core/strategy.h"
#include "src/platform/task.h"

namespace stratrec::platform {

/// The true (alpha, beta) surfaces for a (task type, stage) pair.
///
/// For the paper's deployed combinations this returns Table 6's
/// coefficients verbatim:
///   translation SEQ-IND-CRO: q(0.09, 0.85) c(1.00, 0.00) l(-0.98, 1.40)
///   translation SIM-COL-CRO: q(0.09, 0.82) c(0.82, 0.17) l(-0.63, 1.01)
///   creation    SEQ-IND-CRO: q(0.10, 0.80) c(1.00, 0.00) l(-1.56, 2.04)
///   creation    SIM-COL-CRO: q(0.19, 0.70) c(1.00, 0.00) l(-1.38, 1.81)
/// Other stages extrapolate: hybrid style adds a machine-translation floor
/// (higher quality intercept, cheaper), simultaneous structure lowers
/// latency, independent organization with simultaneous structure pays for
/// per-worker evaluation (slightly higher cost).
core::StrategyProfile TrueProfile(TaskType type, const core::StageSpec& stage);

/// Observation noise applied on top of the surfaces (std dev, per
/// parameter). Table 6's fits came from noisy AMT measurements.
struct NoiseModel {
  double quality_std = 0.03;
  double cost_std = 0.02;
  double latency_std = 0.04;
};

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_GROUND_TRUTH_H_
