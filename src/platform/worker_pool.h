// The worker pool: arrival/departure behaviour across deployment windows
// and the availability traces StratRec estimates its PMFs from.
//
// The paper's Figure 11 finds availability varies across three deployment
// windows — weekend (Fri-Mon), early week (Mon-Thu), mid week (Thu-Sun) —
// with the early-week window the busiest. The pool embeds window-dependent
// participation intensities as ground truth; repeated simulated deployments
// recover them empirically.
#ifndef STRATREC_PLATFORM_WORKER_POOL_H_
#define STRATREC_PLATFORM_WORKER_POOL_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/availability.h"
#include "src/platform/worker.h"

namespace stratrec::platform {

/// The three deployment windows of the paper's study.
enum class DeploymentWindow {
  kWeekend = 0,    ///< Friday 12am - Monday 12am
  kEarlyWeek = 1,  ///< Monday - Thursday
  kMidWeek = 2,    ///< Thursday - Sunday
};

inline constexpr int kNumWindows = 3;

/// "weekend" / "early-week" / "mid-week".
const char* WindowName(DeploymentWindow window);

/// Pool construction knobs.
struct WorkerPoolOptions {
  int num_workers = 1000;
  /// Ground-truth mean participation fraction per window (Figure 11's
  /// shape: early week > mid week > weekend).
  double window_intensity[kNumWindows] = {0.62, 0.86, 0.72};
  /// Day-to-day noise of the participation fraction.
  double intensity_noise = 0.05;
};

/// One simulated presence record: a worker online during a window.
struct PresenceRecord {
  int64_t worker_id = 0;
  double arrival_hours = 0.0;    ///< offset into the window
  double departure_hours = 0.0;  ///< offset into the window
};

/// A population of workers with window-dependent presence behaviour.
class WorkerPool {
 public:
  WorkerPool(const WorkerPoolOptions& options, uint64_t seed);

  const std::vector<WorkerProfile>& workers() const { return workers_; }

  /// Ground-truth expected participation fraction for a window.
  double TrueIntensity(DeploymentWindow window) const {
    return options_.window_intensity[static_cast<int>(window)];
  }

  /// Simulates one deployment: which (filtered, qualified) workers show up
  /// during `window` for `type`. Presence is Bernoulli per worker with the
  /// window intensity plus noise; arrival times are uniform in the window.
  std::vector<PresenceRecord> SimulateWindow(DeploymentWindow window,
                                             TaskType type, Rng* rng) const;

  /// Availability fraction of one simulated deployment: the paper's x'/x —
  /// participants over the suitable worker count.
  double ObserveAvailability(DeploymentWindow window, TaskType type,
                             Rng* rng) const;

  /// Number of workers suitable (filter + skills) for `type`.
  size_t SuitableWorkerCount(TaskType type) const;

  /// Runs `deployments` simulated deployments and estimates the
  /// availability distribution for (window, type) — the PMF StratRec's
  /// Aggregator consumes.
  Result<core::AvailabilityModel> EstimateAvailability(DeploymentWindow window,
                                                       TaskType type,
                                                       int deployments,
                                                       Rng* rng) const;

 private:
  WorkerPoolOptions options_;
  std::vector<WorkerProfile> workers_;
  /// Suitability is deterministic per pool; cached per task type.
  std::vector<size_t> suitable_[kNumTaskTypes];
};

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_WORKER_POOL_H_
