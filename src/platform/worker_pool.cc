#include "src/platform/worker_pool.h"

#include <algorithm>

#include "src/common/float_compare.h"

namespace stratrec::platform {
namespace {

constexpr double kWindowHours = 72.0;

}  // namespace

const char* WindowName(DeploymentWindow window) {
  switch (window) {
    case DeploymentWindow::kWeekend:
      return "weekend";
    case DeploymentWindow::kEarlyWeek:
      return "early-week";
    case DeploymentWindow::kMidWeek:
      return "mid-week";
  }
  return "?";
}

WorkerPool::WorkerPool(const WorkerPoolOptions& options, uint64_t seed)
    : options_(options) {
  Rng rng(seed);
  workers_.reserve(static_cast<size_t>(options.num_workers));
  for (int i = 0; i < options.num_workers; ++i) {
    workers_.push_back(SampleWorker(i, &rng));
  }
  // Suitability = recruitment filter + a minimal skill floor. Deterministic
  // so that the denominator of the availability fraction is stable.
  for (int t = 0; t < kNumTaskTypes; ++t) {
    const auto type = static_cast<TaskType>(t);
    const RecruitmentFilter filter = FilterForTaskType(type);
    for (size_t w = 0; w < workers_.size(); ++w) {
      if (PassesFilter(workers_[w], filter) &&
          workers_[w].SkillFor(type) >= 0.5) {
        suitable_[t].push_back(w);
      }
    }
  }
}

size_t WorkerPool::SuitableWorkerCount(TaskType type) const {
  return suitable_[static_cast<int>(type)].size();
}

std::vector<PresenceRecord> WorkerPool::SimulateWindow(DeploymentWindow window,
                                                       TaskType type,
                                                       Rng* rng) const {
  const double intensity =
      ClampUnit(TrueIntensity(window) +
                rng->Normal(0.0, options_.intensity_noise));
  std::vector<PresenceRecord> present;
  for (size_t index : suitable_[static_cast<int>(type)]) {
    if (!rng->Bernoulli(intensity)) continue;
    PresenceRecord record;
    record.worker_id = workers_[index].id;
    record.arrival_hours = rng->Uniform(0.0, kWindowHours * 0.9);
    record.departure_hours =
        std::min(kWindowHours,
                 record.arrival_hours + rng->Exponential(1.0 / 4.0));
    present.push_back(record);
  }
  return present;
}

double WorkerPool::ObserveAvailability(DeploymentWindow window, TaskType type,
                                       Rng* rng) const {
  const size_t suitable = SuitableWorkerCount(type);
  if (suitable == 0) return 0.0;
  const auto present = SimulateWindow(window, type, rng);
  return static_cast<double>(present.size()) / static_cast<double>(suitable);
}

Result<core::AvailabilityModel> WorkerPool::EstimateAvailability(
    DeploymentWindow window, TaskType type, int deployments, Rng* rng) const {
  if (deployments < 1) {
    return Status::InvalidArgument("need >= 1 deployment to estimate");
  }
  std::vector<double> fractions;
  fractions.reserve(static_cast<size_t>(deployments));
  for (int i = 0; i < deployments; ++i) {
    fractions.push_back(ObserveAvailability(window, type, rng));
  }
  return core::AvailabilityModel::FromSamples(fractions);
}

}  // namespace stratrec::platform
