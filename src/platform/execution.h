// Deployment execution: the simulated counterpart of actually running a HIT
// on AMT with a given strategy (paper Section 5.1 experiment design).
//
// Given a realized worker availability, the executor produces observed
// (quality, cost, latency) from the ground-truth linear surfaces plus
// measurement noise, the collaborative-editing dynamics (edit wars for
// unguided simultaneous-collaborative work), and expert scoring.
#ifndef STRATREC_PLATFORM_EXECUTION_H_
#define STRATREC_PLATFORM_EXECUTION_H_

#include <vector>

#include "src/common/rng.h"
#include "src/core/linear_model.h"
#include "src/core/strategy.h"
#include "src/platform/edit_model.h"
#include "src/platform/ground_truth.h"
#include "src/platform/task.h"
#include "src/platform/worker_pool.h"

namespace stratrec::platform {

/// Everything one simulated deployment produced.
struct DeploymentOutcome {
  /// The realized availability fraction the deployment ran at.
  double availability = 0.0;
  /// Observed deployment parameters (normalized; quality is the expert
  /// panel's aggregate score).
  core::ParamVector observed;
  /// Editing dynamics, summed over the HIT's tasks.
  int num_edits = 0;
  int num_conflicts = 0;
};

/// Executor configuration.
struct ExecutionOptions {
  NoiseModel noise;
  EditModelOptions edit_model;
  int experts = 2;
  double expert_noise_std = 0.04;
};

/// Simulates HIT executions against a worker pool.
class ExecutionSimulator {
 public:
  ExecutionSimulator(const WorkerPool* pool, const ExecutionOptions& options,
                     uint64_t seed);

  /// Runs one deployment of `hit` with single-stage strategy `stage` during
  /// `window`. `guided` states whether workers follow the recommended
  /// structure/organization (true for StratRec-advised deployments).
  DeploymentOutcome Execute(const Hit& hit, const core::StageSpec& stage,
                            DeploymentWindow window, bool guided);

  /// Runs one deployment at a *fixed* availability (used by the model
  /// fitting experiments where availability is the independent variable).
  DeploymentOutcome ExecuteAtAvailability(const Hit& hit,
                                          const core::StageSpec& stage,
                                          double availability, bool guided);

  /// Runs `repetitions` deployments across all three windows and returns
  /// (availability, outcome) observations for model fitting (the Figure 12 /
  /// Table 6 pipeline).
  std::vector<core::Observation> CollectObservations(
      const Hit& hit, const core::StageSpec& stage, int repetitions);

 private:
  const WorkerPool* pool_;
  ExecutionOptions options_;
  Rng rng_;
};

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_EXECUTION_H_
