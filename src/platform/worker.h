// Crowd workers: profiles, skills, and recruitment filters (paper
// Section 5.1: HIT approval rate > 90%, geographic filters, qualification
// tests evaluated by domain experts with an 80% passing bar).
#ifndef STRATREC_PLATFORM_WORKER_H_
#define STRATREC_PLATFORM_WORKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/platform/task.h"

namespace stratrec::platform {

/// Where a worker is based (the translation HITs recruit US/India only).
enum class Region { kUs = 0, kIndia = 1, kOther = 2 };

/// A crowd worker's profile.
struct WorkerProfile {
  int64_t id = 0;
  /// Latent ability in [0, 1]; drives task quality and qualification tests.
  double skill = 0.5;
  /// Fraction of previously approved HITs in [0, 1].
  double hit_approval_rate = 0.95;
  Region region = Region::kUs;
  bool bachelors_degree = false;
  /// Per-task-type aptitude multipliers in [0.5, 1].
  double type_aptitude[kNumTaskTypes] = {1.0, 1.0};

  /// Effective skill on a task type.
  double SkillFor(TaskType type) const {
    return skill * type_aptitude[static_cast<int>(type)];
  }
};

/// The recruitment filters of the paper's experiments.
struct RecruitmentFilter {
  double min_hit_approval_rate = 0.90;
  /// Allowed regions; empty means any.
  std::vector<Region> regions;
  bool require_bachelors = false;
};

/// True when the worker passes the filter.
bool PassesFilter(const WorkerProfile& worker, const RecruitmentFilter& filter);

/// The paper's filter for a task type: translation recruits US/India,
/// creation recruits US workers with a Bachelor's degree.
RecruitmentFilter FilterForTaskType(TaskType type);

/// Samples a random worker profile.
WorkerProfile SampleWorker(int64_t id, Rng* rng);

/// Qualification test (Section 5.1.1, Step 1): the worker's demonstrated
/// score is skill plus bounded noise; pass requires >= `passing_score`
/// (paper: 0.8).
bool PassesQualification(const WorkerProfile& worker, TaskType type, Rng* rng,
                         double passing_score = 0.8);

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_WORKER_H_
