// AmtSimulator: the offline stand-in for the paper's Amazon Mechanical Turk
// studies (Section 5.1). It wires the worker pool, execution simulator,
// qualification pipeline and expert scoring into the three experiment
// designs the paper runs:
//   1. the availability study (Figure 11),
//   2. the parameter-vs-availability study (Figure 12, Table 6),
//   3. the mirrored with/without-StratRec study (Figure 13).
#ifndef STRATREC_PLATFORM_AMT_H_
#define STRATREC_PLATFORM_AMT_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/core/stratrec.h"
#include "src/platform/execution.h"

namespace stratrec::platform {

/// Configuration of the simulated studies (defaults follow the paper).
struct AmtStudyOptions {
  WorkerPoolOptions pool;
  ExecutionOptions execution;
  /// Deployments per (window, strategy) cell in the availability study.
  int availability_repetitions = 4;
  /// Deployments per strategy when collecting model-fitting observations.
  int observation_repetitions = 6;
};

/// Mean availability (plus standard error) for one (window, strategy) cell
/// of the Figure 11 study.
struct AvailabilityCell {
  DeploymentWindow window = DeploymentWindow::kWeekend;
  core::StageSpec stage;
  double mean = 0.0;
  double std_error = 0.0;
};

/// Paired samples of the Figure 13 mirrored study (values denormalized to
/// the paper's units by the caller if desired; here normalized [0,1]).
struct MirroredStudyResult {
  std::vector<double> quality_with, quality_without;
  std::vector<double> cost_with, cost_without;
  std::vector<double> latency_with, latency_without;
  std::vector<double> edits_with, edits_without;
};

/// The simulated platform + studies.
class AmtSimulator {
 public:
  AmtSimulator(const AmtStudyOptions& options, uint64_t seed);

  const WorkerPool& pool() const { return pool_; }

  /// Figure 11: availability per deployment window for the two strategies
  /// the paper deployed (SEQ-IND-CRO, SIM-COL-CRO).
  std::vector<AvailabilityCell> RunAvailabilityStudy(TaskType type);

  /// Figure 12 / Table 6 input: (availability, quality/cost/latency)
  /// observations for one (task type, stage).
  std::vector<core::Observation> CollectModelObservations(
      TaskType type, const core::StageSpec& stage);

  /// Fits the full 8-stage strategy catalog from simulated historical
  /// deployments. The api-layer Service (and BuildStratRec below) are
  /// constructed from this.
  Result<core::Catalog> BuildCatalog(TaskType type);

  /// Fits the catalog and assembles a StratRec instance over it.
  Result<core::StratRec> BuildStratRec(TaskType type);

  /// Figure 13: `num_tasks` mirrored deployments — one following StratRec's
  /// recommendation (guided), one left to the workers (unguided, which
  /// historically devolves into simultaneous-collaborative editing).
  /// `thresholds` are the per-deployment parameters (paper: quality 70%,
  /// cost $14 of $14, latency 72h of 72h).
  Result<MirroredStudyResult> RunMirroredStudy(TaskType type, int num_tasks,
                                               const core::ParamVector& thresholds);

 private:
  AmtStudyOptions options_;
  WorkerPool pool_;
  ExecutionSimulator executor_;
  Rng rng_;
};

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_AMT_H_
