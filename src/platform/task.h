// Collaborative task types and HITs (paper Section 5.1).
//
// The paper evaluates two text-editing task types on Amazon Mechanical Turk:
// sentence translation (English nursery rhymes to Hindi) and text creation
// (short essays on given topics). A HIT bundles three tasks and is asked to
// be completed by a fixed number of workers.
#ifndef STRATREC_PLATFORM_TASK_H_
#define STRATREC_PLATFORM_TASK_H_

#include <string>
#include <vector>

namespace stratrec::platform {

/// The collaborative task types of the real-data experiments.
enum class TaskType {
  kSentenceTranslation = 0,
  kTextCreation = 1,
};

inline constexpr int kNumTaskTypes = 2;

/// "translation" / "creation".
const char* TaskTypeName(TaskType type);

/// One unit of work, e.g. one rhyme to translate or one topic to write on.
struct Task {
  std::string id;
  TaskType type = TaskType::kSentenceTranslation;
  /// The artifact to work on (rhyme text, essay topic, ...).
  std::string payload;
};

/// A Human Intelligence Task: the deployable unit (paper: 3 tasks per HIT,
/// 10 workers x $2, 2 hours allotted, 72-hour deployment).
struct Hit {
  std::string id;
  TaskType type = TaskType::kSentenceTranslation;
  std::vector<Task> tasks;
  int max_workers = 10;
  double pay_per_worker_usd = 2.0;
  double allotted_hours = 2.0;
  double deployment_hours = 72.0;
};

/// The nursery rhymes / essay topics the paper lists, used by the examples
/// to build realistic HITs.
std::vector<Task> SampleTasks(TaskType type);

/// Builds a HIT with the paper's defaults over `tasks`.
Hit MakeHit(std::string id, TaskType type, std::vector<Task> tasks);

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_TASK_H_
