// Operation-level collaborative-document simulation.
//
// The paper's Figure 13 analysis comes from inspecting the Google Docs in
// which workers edited: unguided deployments showed almost twice as many
// edits (6.25 vs 3.45 per task) because workers "repeatedly overrode each
// other's contributions, giving rise to an edit war". This module models the
// document itself — segments, per-segment ownership and latent quality, and
// an edit log of create/refine/override operations — so the edit-war effect
// emerges from operation semantics instead of being sampled from calibrated
// rates (the coarse-grained EditModel remains for the calibrated studies).
#ifndef STRATREC_PLATFORM_COLLAB_DOC_H_
#define STRATREC_PLATFORM_COLLAB_DOC_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/strategy.h"

namespace stratrec::platform {

/// One edit applied to a shared document.
struct EditOperation {
  enum class Kind {
    kCreate,    ///< first content for an empty segment
    kRefine,    ///< improve existing content the worker has seen
    kOverride,  ///< replace content the worker has NOT seen (conflict)
  };
  int64_t worker_id = 0;
  double timestamp_hours = 0.0;
  size_t segment = 0;
  Kind kind = Kind::kCreate;
  /// Latent segment quality after this operation.
  double resulting_quality = 0.0;
};

/// A shared document of `num_segments` segments (sentences to translate,
/// paragraphs to write, ...). Quality is latent per segment; the expert
/// panel scores it at evaluation time.
class CollabDocument {
 public:
  explicit CollabDocument(size_t num_segments);

  size_t num_segments() const { return quality_.size(); }

  /// Latent quality of a segment (0 when still empty).
  double SegmentQuality(size_t segment) const;

  /// True when the segment has content.
  bool SegmentWritten(size_t segment) const;

  /// Mean latent quality across all segments (empty segments count as 0).
  double MeanQuality() const;

  /// Applies one operation (validated: segment in range, kind consistent
  /// with the segment's state).
  Status Apply(const EditOperation& op);

  /// Full ordered edit log.
  const std::vector<EditOperation>& log() const { return log_; }

  /// Number of override operations in the log.
  int CountOverrides() const;

 private:
  std::vector<double> quality_;
  std::vector<bool> written_;
  std::vector<int64_t> last_editor_;
  std::vector<EditOperation> log_;
};

/// Knobs of a collaborative session.
struct SessionOptions {
  /// Fraction of the gap to the editing worker's skill closed by a refine.
  double refine_gain = 0.4;
  /// Quality damage of an override relative to a fresh create: the
  /// overriding worker discards context (the edit-war mechanism).
  double override_penalty = 0.20;
  /// Probability that a concurrent editor has not seen the latest content
  /// and overrides it, when the deployment is unguided.
  double unguided_override_prob = 0.45;
  /// Same, under a StratRec-recommended structure.
  double guided_override_prob = 0.10;
  /// Two edits to the same segment closer than this are concurrent.
  double conflict_window_hours = 0.5;
  /// Session length (the paper allots 2 hours per HIT).
  double session_hours = 2.0;
};

/// Result of one simulated session.
struct SessionOutcome {
  double quality = 0.0;   ///< final mean latent quality
  int num_edits = 0;      ///< total operations
  int num_overrides = 0;  ///< conflicting operations
};

/// Simulates workers with the given skills editing a document under the
/// stage's Structure/Organization semantics:
///   - sequential: workers take turns and always see the latest content
///     (refines only; no conflicts);
///   - simultaneous + collaborative: edits interleave in time; concurrent
///     edits to a segment may override each other (likelier unguided);
///   - independent organization: each worker fills their own copy and the
///     best copy is kept (Figure 2c's evaluation step) — no conflicts.
/// `document` receives the winning document's log. Requires >= 1 worker and
/// a document with >= 1 segment.
Result<SessionOutcome> RunSession(const core::StageSpec& stage,
                                  const std::vector<double>& worker_skills,
                                  bool guided, const SessionOptions& options,
                                  CollabDocument* document, Rng* rng);

}  // namespace stratrec::platform

#endif  // STRATREC_PLATFORM_COLLAB_DOC_H_
