#include "src/common/journal.h"

#include <utility>

#include "src/common/json.h"

namespace stratrec {

namespace {

std::string HeaderLine() {
  json::Value header = json::Value::Object();
  header.Add("format", std::string(kJournalFormatName));
  header.Add("version", kJournalFormatVersion);
  return json::Dump(header);
}

}  // namespace

Result<std::shared_ptr<JournalWriter>> JournalWriter::Open(std::string path,
                                                           Options options) {
  if (path.empty()) {
    return Status::InvalidArgument("journal path is empty");
  }
  if (options.compact_after_segments > 0) {
    if (options.max_segment_bytes == 0) {
      return Status::InvalidArgument(
          "journal compaction requires segment rotation (max_segment_bytes "
          "> 0)");
    }
    if (options.retain_segments >= options.compact_after_segments) {
      return Status::InvalidArgument(
          "journal retain_segments must be < compact_after_segments");
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create journal file '" + path + "'");
  }
  const std::string header = HeaderLine();
  // Not make_shared: the constructor is private.
  std::shared_ptr<JournalWriter> writer(new JournalWriter(
      std::move(path), file, std::move(options), header.size() + 1));
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
      std::fputc('\n', file) == EOF || std::fflush(file) != 0) {
    return Status::Internal("cannot write journal header to '" +
                            writer->path() + "'");
  }
  return writer;
}

Result<std::shared_ptr<JournalWriter>> JournalWriter::Open(
    std::string path, bool flush_every_record, size_t max_segment_bytes) {
  Options options;
  options.flush_every_record = flush_every_record;
  options.max_segment_bytes = max_segment_bytes;
  return Open(std::move(path), std::move(options));
}

Status JournalWriter::RollSegmentLocked() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string next = path_ + "." + std::to_string(++segment_index_);
  std::FILE* file = std::fopen(next.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create journal segment '" + next + "'");
  }
  const std::string header = HeaderLine();
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
      std::fputc('\n', file) == EOF || std::fflush(file) != 0) {
    std::fclose(file);
    return Status::Internal("cannot write journal header to '" + next + "'");
  }
  file_ = file;
  segment_bytes_ = header.size() + 1;
  segment_records_ = 0;
  return Status::OK();
}

JournalWriter::~JournalWriter() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

Status JournalWriter::Append(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal writer is closed");
  }
  // Roll before a record that would overrun the segment bound — but only
  // when the current segment already holds a record, so an oversized record
  // lands in a segment of its own instead of rolling forever.
  if (options_.max_segment_bytes > 0 && segment_records_ > 0 &&
      segment_bytes_ + line.size() + 1 > options_.max_segment_bytes) {
    STRATREC_RETURN_NOT_OK(RollSegmentLocked());
    // A roll is the only point where the closed-segment count grows, so it
    // is the only point a compaction can become due.
    if (options_.compact_after_segments > 0 && options_.compact &&
        segment_index_ > options_.compact_after_segments) {
      STRATREC_RETURN_NOT_OK(CompactLocked());
    }
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF) {
    return Status::Internal("journal append to '" + path_ + "' failed");
  }
  if (options_.flush_every_record && std::fflush(file_) != 0) {
    return Status::Internal("journal flush of '" + path_ + "' failed");
  }
  segment_bytes_ += line.size() + 1;
  ++segment_records_;
  ++records_;
  return Status::OK();
}

Status JournalWriter::CompactLocked() {
  // Closed segments right after a roll: the base plus `.1` .. `.(n-1)` where
  // `.n` is the segment just opened — segment_index_ of them. Fold the base
  // through `.m`, leaving the retain_segments newest closed ones (and the
  // open segment) untouched.
  const size_t m = segment_index_ - 1 - options_.retain_segments;
  std::vector<std::string> cold;
  {
    auto base = JournalReader::ReadRecords(path_);
    if (!base.ok()) return base.status();
    cold = std::move(*base);
  }
  for (size_t i = 1; i <= m; ++i) {
    auto more = JournalReader::ReadRecords(path_ + "." + std::to_string(i));
    if (!more.ok()) return more.status();
    cold.insert(cold.end(), std::make_move_iterator(more->begin()),
                std::make_move_iterator(more->end()));
  }
  const std::vector<std::string> folded = options_.compact(cold);

  // Write the folded base to a temp file and rename it into place, so a
  // crash mid-compaction leaves either the old chain or the new base —
  // never a torn one.
  const std::string tmp = path_ + ".compact.tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("cannot create compaction file '" + tmp + "'");
  }
  std::string content = HeaderLine();
  content.push_back('\n');
  for (const std::string& line : folded) {
    content.append(line);
    content.push_back('\n');
  }
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), out) == content.size() &&
      std::fflush(out) == 0;
  std::fclose(out);
  if (!wrote) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot write compaction file '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot install compacted journal base '" +
                            path_ + "'");
  }
  for (size_t i = 1; i <= m; ++i) {
    std::remove((path_ + "." + std::to_string(i)).c_str());
  }
  // Renumber the survivors (ascending, so a rename never lands on a name
  // still in use): `.(m+1)` .. `.(segment_index_)` become `.1` ..
  // `.(segment_index_-m)`. The open segment is renamed by path only — the
  // FILE* stays valid.
  for (size_t j = m + 1; j <= segment_index_; ++j) {
    const std::string from = path_ + "." + std::to_string(j);
    const std::string to = path_ + "." + std::to_string(j - m);
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal("cannot renumber journal segment '" + from +
                              "'");
    }
  }
  segment_index_ -= m;
  ++compactions_;
  return Status::OK();
}

size_t JournalWriter::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

size_t JournalWriter::compactions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compactions_;
}

Result<std::vector<std::string>> JournalReader::ReadRecords(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("journal file '" + path + "' does not exist");
  }

  std::string content;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::Internal("error reading journal file '" + path + "'");
  }

  // Split into complete ('\n'-terminated) lines; a crash-truncated tail
  // (no terminator) is dropped.
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = content.find('\n'); i != std::string::npos;
       start = i + 1, i = content.find('\n', start)) {
    if (i > start) lines.emplace_back(content, start, i - start);
  }

  if (lines.empty()) {
    return Status::InvalidArgument("journal file '" + path +
                                   "' has no header line");
  }
  auto header = json::Parse(lines.front());
  if (!header.ok() || !header->is_object()) {
    return Status::InvalidArgument("journal file '" + path +
                                   "' has a malformed header line");
  }
  const json::Value* format = header->Find("format");
  if (format == nullptr || !format->is_string() ||
      format->AsString() != kJournalFormatName) {
    return Status::InvalidArgument("'" + path + "' is not a " +
                                   std::string(kJournalFormatName) + " file");
  }
  const json::Value* version = header->Find("version");
  if (version == nullptr || !version->is_number() ||
      version->AsNumber() < kJournalMinReadVersion ||
      version->AsNumber() > kJournalFormatVersion) {
    return Status::InvalidArgument(
        "journal file '" + path + "' has unsupported format version " +
        (version != nullptr && version->is_number()
             ? json::FormatNumber(version->AsNumber())
             : "?") +
        " (this build reads versions " +
        std::to_string(kJournalMinReadVersion) + ".." +
        std::to_string(kJournalFormatVersion) + ")");
  }
  lines.erase(lines.begin());
  return lines;
}

Result<std::vector<std::string>> JournalReader::ReadAllSegments(
    const std::string& path) {
  auto records = ReadRecords(path);
  if (!records.ok()) return records;
  for (size_t n = 1;; ++n) {
    const std::string segment = path + "." + std::to_string(n);
    auto more = ReadRecords(segment);
    if (!more.ok()) {
      // The first missing segment ends the chain; anything else (a torn or
      // foreign file sitting at a chain name) is a real error.
      if (more.status().code() == StatusCode::kNotFound) break;
      return more.status();
    }
    records->insert(records->end(), std::make_move_iterator(more->begin()),
                    std::make_move_iterator(more->end()));
  }
  return records;
}

}  // namespace stratrec
