#include "src/common/journal.h"

#include <utility>

#include "src/common/json.h"

namespace stratrec {

namespace {

std::string HeaderLine() {
  json::Value header = json::Value::Object();
  header.Add("format", std::string(kJournalFormatName));
  header.Add("version", kJournalFormatVersion);
  return json::Dump(header);
}

}  // namespace

Result<std::shared_ptr<JournalWriter>> JournalWriter::Open(
    std::string path, bool flush_every_record, size_t max_segment_bytes) {
  if (path.empty()) {
    return Status::InvalidArgument("journal path is empty");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create journal file '" + path + "'");
  }
  const std::string header = HeaderLine();
  // Not make_shared: the constructor is private.
  std::shared_ptr<JournalWriter> writer(
      new JournalWriter(std::move(path), file, flush_every_record,
                        max_segment_bytes, header.size() + 1));
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
      std::fputc('\n', file) == EOF || std::fflush(file) != 0) {
    return Status::Internal("cannot write journal header to '" +
                            writer->path() + "'");
  }
  return writer;
}

Status JournalWriter::RollSegmentLocked() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string next = path_ + "." + std::to_string(++segment_index_);
  std::FILE* file = std::fopen(next.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create journal segment '" + next + "'");
  }
  const std::string header = HeaderLine();
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
      std::fputc('\n', file) == EOF || std::fflush(file) != 0) {
    std::fclose(file);
    return Status::Internal("cannot write journal header to '" + next + "'");
  }
  file_ = file;
  segment_bytes_ = header.size() + 1;
  segment_records_ = 0;
  return Status::OK();
}

JournalWriter::~JournalWriter() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

Status JournalWriter::Append(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal writer is closed");
  }
  // Roll before a record that would overrun the segment bound — but only
  // when the current segment already holds a record, so an oversized record
  // lands in a segment of its own instead of rolling forever.
  if (max_segment_bytes_ > 0 && segment_records_ > 0 &&
      segment_bytes_ + line.size() + 1 > max_segment_bytes_) {
    STRATREC_RETURN_NOT_OK(RollSegmentLocked());
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF) {
    return Status::Internal("journal append to '" + path_ + "' failed");
  }
  if (flush_ && std::fflush(file_) != 0) {
    return Status::Internal("journal flush of '" + path_ + "' failed");
  }
  segment_bytes_ += line.size() + 1;
  ++segment_records_;
  ++records_;
  return Status::OK();
}

size_t JournalWriter::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

Result<std::vector<std::string>> JournalReader::ReadRecords(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("journal file '" + path + "' does not exist");
  }

  std::string content;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::Internal("error reading journal file '" + path + "'");
  }

  // Split into complete ('\n'-terminated) lines; a crash-truncated tail
  // (no terminator) is dropped.
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = content.find('\n'); i != std::string::npos;
       start = i + 1, i = content.find('\n', start)) {
    if (i > start) lines.emplace_back(content, start, i - start);
  }

  if (lines.empty()) {
    return Status::InvalidArgument("journal file '" + path +
                                   "' has no header line");
  }
  auto header = json::Parse(lines.front());
  if (!header.ok() || !header->is_object()) {
    return Status::InvalidArgument("journal file '" + path +
                                   "' has a malformed header line");
  }
  const json::Value* format = header->Find("format");
  if (format == nullptr || !format->is_string() ||
      format->AsString() != kJournalFormatName) {
    return Status::InvalidArgument("'" + path + "' is not a " +
                                   std::string(kJournalFormatName) + " file");
  }
  const json::Value* version = header->Find("version");
  if (version == nullptr || !version->is_number() ||
      version->AsNumber() != kJournalFormatVersion) {
    return Status::InvalidArgument(
        "journal file '" + path + "' has unsupported format version " +
        (version != nullptr && version->is_number()
             ? json::FormatNumber(version->AsNumber())
             : "?") +
        " (this build reads version " +
        std::to_string(kJournalFormatVersion) + ")");
  }
  lines.erase(lines.begin());
  return lines;
}

Result<std::vector<std::string>> JournalReader::ReadAllSegments(
    const std::string& path) {
  auto records = ReadRecords(path);
  if (!records.ok()) return records;
  for (size_t n = 1;; ++n) {
    const std::string segment = path + "." + std::to_string(n);
    auto more = ReadRecords(segment);
    if (!more.ok()) {
      // The first missing segment ends the chain; anything else (a torn or
      // foreign file sitting at a chain name) is a real error.
      if (more.status().code() == StatusCode::kNotFound) break;
      return more.status();
    }
    records->insert(records->end(), std::make_move_iterator(more->begin()),
                    std::make_move_iterator(more->end()));
  }
  return records;
}

}  // namespace stratrec
