#include "src/common/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

namespace stratrec {

namespace {

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

/// Which executor's worker (if any) the current thread is. Worker threads
/// belong to exactly one pool for their whole life, so a plain thread_local
/// pair is enough; external threads keep the null default. A worker of pool
/// A calling into pool B takes B's external paths, which is correct: it
/// owns no deque there.
thread_local const Executor* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

/// Shared bookkeeping of one ParallelFor call. Chunks are claimed through
/// one atomic cursor, so helpers and the caller never run the same range;
/// the caller blocks on `done` until the last chunk reports in.
struct ParallelForState {
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> aborted{false};
  std::mutex mutex;
  std::condition_variable done;
  size_t finished_chunks = 0;
  std::exception_ptr error;

  /// Claims and runs chunks until none remain, then reports how many this
  /// thread finished. A throwing chunk aborts the remaining ones (they are
  /// claimed but skipped, so the caller's wait still completes) and the
  /// first exception is rethrown from ParallelFor on the calling thread —
  /// never from a pool worker, and never while `body` could dangle.
  void RunChunks() {
    size_t ran = 0;
    for (size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
         chunk < num_chunks;
         chunk = next_chunk.fetch_add(1, std::memory_order_relaxed)) {
      if (!aborted.load(std::memory_order_relaxed)) {
        const size_t begin = chunk * grain;
        const size_t end = std::min(n, begin + grain);
        try {
          (*body)(begin, end);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (!error) error = std::current_exception();
          }
          aborted.store(true, std::memory_order_relaxed);
        }
      }
      ++ran;
    }
    if (ran == 0) return;
    std::lock_guard<std::mutex> lock(mutex);
    finished_chunks += ran;
    if (finished_chunks == num_chunks) done.notify_all();
  }
};

}  // namespace

Executor::Executor(size_t threads) {
  const size_t count = ResolveThreadCount(threads);
  slots_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

Executor::~Executor() {
  // Destroying the pool from one of its own workers means a task released
  // the last reference to the owning object (e.g. a ticket callback dropped
  // the final Service handle). join() on self would throw from a destructor;
  // fail loudly with the actual contract violation instead.
  if (tls_pool == this) {
    std::fprintf(stderr,
                 "stratrec::Executor destroyed from one of its own workers "
                 "(a pool task must not release the last reference to the "
                 "object owning the pool)\n");
    std::abort();
  }
  {
    // After this point Submit() runs inline; everything already queued has
    // bumped pending_, so no worker exits before the queues are dry.
    std::lock_guard<std::mutex> lock(injection_mutex_);
    shutdown_ = true;
  }
  stopping_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers exit only once every queue is empty, so nothing is left behind.
}

void Executor::Submit(std::function<void()> task) {
  if (tls_pool == this) {
    // A pool task spawning follow-up work: keep it on this worker's deque
    // (LIFO for the owner, stealable by everyone else).
    PushToSlot(tls_worker_index, std::move(task));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    if (!shutdown_) {
      injection_.push_back(std::move(task));
      task = nullptr;
      pending_.fetch_add(1, std::memory_order_seq_cst);
    }
  }
  if (task) {
    // Shutdown has begun: run inline so the work is never dropped.
    task();
    return;
  }
  NotifySleepers();
}

void Executor::PushToSlot(size_t index, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(slots_[index]->mutex);
    slots_[index]->deque.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_seq_cst);
  NotifySleepers();
}

void Executor::NotifySleepers() {
  if (idle_.load(std::memory_order_seq_cst) == 0) return;
  {
    // Empty critical section on purpose: it orders this notify against a
    // sleeper that advertised itself but has not reached wait() yet.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  wake_.notify_one();
}

std::function<void()> Executor::TryAcquire(size_t index) {
  WorkerSlot& own = *slots_[index];
  {
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      std::function<void()> task = std::move(own.deque.back());
      own.deque.pop_back();  // LIFO: newest first, still hot in cache
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      own.local_hits.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  // Steal before touching the injection queue: sub-work of in-flight jobs
  // outranks tickets that have not started yet.
  const size_t count = slots_.size();
  for (size_t offset = 1; offset < count; ++offset) {
    WorkerSlot& victim = *slots_[(index + offset) % count];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      std::function<void()> task = std::move(victim.deque.front());
      victim.deque.pop_front();  // FIFO: the oldest, largest-remaining task
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      own.steals.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    if (!injection_.empty()) {
      std::function<void()> task = std::move(injection_.front());
      injection_.pop_front();
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      return task;
    }
  }
  return nullptr;
}

void Executor::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    if (std::function<void()> task = TryAcquire(index)) {
      active_workers_.fetch_add(1, std::memory_order_relaxed);
      task();
      active_workers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (stopping_.load(std::memory_order_seq_cst) &&
        pending_.load(std::memory_order_seq_cst) == 0) {
      return;  // shutdown with every queue drained
    }
    // Sleep protocol (see header): advertise, re-check, then wait.
    idle_.fetch_add(1, std::memory_order_seq_cst);
    if (pending_.load(std::memory_order_seq_cst) == 0 &&
        !stopping_.load(std::memory_order_seq_cst)) {
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      wake_.wait(lock, [this]() {
        return pending_.load(std::memory_order_relaxed) > 0 ||
               stopping_.load(std::memory_order_relaxed);
      });
    }
    idle_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

size_t Executor::queued() const {
  size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    total += injection_.size();
  }
  for (const std::unique_ptr<WorkerSlot>& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    total += slot->deque.size();
  }
  return total;
}

uint64_t Executor::StealCount() const {
  uint64_t total = 0;
  for (const std::unique_ptr<WorkerSlot>& slot : slots_) {
    total += slot->steals.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Executor::LocalHitCount() const {
  uint64_t total = 0;
  for (const std::unique_ptr<WorkerSlot>& slot : slots_) {
    total += slot->local_hits.load(std::memory_order_relaxed);
  }
  return total;
}

void Executor::ParallelFor(size_t n, size_t grain,
                           const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) {
    body(0, n);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->body = &body;

  // One helper per worker beyond what the caller will cover; a helper that
  // arrives after every chunk is claimed exits immediately, so over-asking
  // is harmless. Helpers ride the worker deques, never the injection queue:
  // a worker caller keeps them on its own deque (thieves rebalance), an
  // external caller deals them round-robin across the slots — either way
  // fan-out latency does not depend on how many tickets are pending.
  const size_t helpers = std::min(workers_.size(), num_chunks - 1);
  const bool on_own_worker = tls_pool == this;
  for (size_t i = 0; i < helpers; ++i) {
    const size_t slot =
        on_own_worker
            ? tls_worker_index
            : external_slot_hint_.fetch_add(1, std::memory_order_relaxed) %
                  slots_.size();
    PushToSlot(slot, [state]() { state->RunChunks(); });
  }
  state->RunChunks();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&state]() {
    return state->finished_chunks == state->num_chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace stratrec
