#include "src/common/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>

namespace stratrec {

namespace {

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

/// Shared bookkeeping of one ParallelFor call. Chunks are claimed through
/// one atomic cursor, so helpers and the caller never run the same range;
/// the caller blocks on `done` until the last chunk reports in.
struct ParallelForState {
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> aborted{false};
  std::mutex mutex;
  std::condition_variable done;
  size_t finished_chunks = 0;
  std::exception_ptr error;

  /// Claims and runs chunks until none remain, then reports how many this
  /// thread finished. A throwing chunk aborts the remaining ones (they are
  /// claimed but skipped, so the caller's wait still completes) and the
  /// first exception is rethrown from ParallelFor on the calling thread —
  /// never from a pool worker, and never while `body` could dangle.
  void RunChunks() {
    size_t ran = 0;
    for (size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
         chunk < num_chunks;
         chunk = next_chunk.fetch_add(1, std::memory_order_relaxed)) {
      if (!aborted.load(std::memory_order_relaxed)) {
        const size_t begin = chunk * grain;
        const size_t end = std::min(n, begin + grain);
        try {
          (*body)(begin, end);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (!error) error = std::current_exception();
          }
          aborted.store(true, std::memory_order_relaxed);
        }
      }
      ++ran;
    }
    if (ran == 0) return;
    std::lock_guard<std::mutex> lock(mutex);
    finished_chunks += ran;
    if (finished_chunks == num_chunks) done.notify_all();
  }
};

}  // namespace

Executor::Executor(size_t threads) {
  const size_t count = ResolveThreadCount(threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

Executor::~Executor() {
  // Destroying the pool from one of its own workers means a task released
  // the last reference to the owning object (e.g. a ticket callback dropped
  // the final Service handle). join() on self would throw from a destructor;
  // fail loudly with the actual contract violation instead.
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& worker : workers_) {
    if (worker.get_id() == self) {
      std::fprintf(stderr,
                   "stratrec::Executor destroyed from one of its own workers "
                   "(a pool task must not release the last reference to the "
                   "object owning the pool)\n");
      std::abort();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers exit only once the queue is empty, so nothing is left behind.
}

void Executor::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!shutdown_) {
      queue_.push_back(std::move(task));
      task = nullptr;
    }
  }
  if (task) {
    // Shutdown has begun: run inline so the work is never dropped.
    task();
    return;
  }
  wake_.notify_one();
}

size_t Executor::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    active_workers_.fetch_add(1, std::memory_order_relaxed);
    task();
    active_workers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Executor::ParallelFor(size_t n, size_t grain,
                           const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) {
    body(0, n);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->body = &body;

  // One helper per worker beyond what the caller will cover; a helper that
  // arrives after every chunk is claimed exits immediately, so over-asking
  // is harmless.
  const size_t helpers = std::min(workers_.size(), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state]() { state->RunChunks(); });
  }
  state->RunChunks();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&state]() {
    return state->finished_chunks == state->num_chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace stratrec
