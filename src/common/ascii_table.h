// Fixed-width ASCII table rendering for bench/example output.
//
// Every bench binary reproduces a paper table or figure as a plain-text
// table; this helper keeps their formatting uniform.
#ifndef STRATREC_COMMON_ASCII_TABLE_H_
#define STRATREC_COMMON_ASCII_TABLE_H_

#include <string>
#include <vector>

namespace stratrec {

/// Accumulates rows of string cells and renders them with aligned columns.
class AsciiTable {
 public:
  /// Creates a table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are kept and
  /// widen the table.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` digits.
  void AddNumericRow(const std::string& label, const std::vector<double>& values,
                     int precision = 4);

  /// Renders the table with a header rule, e.g.
  ///   k     | satisfied
  ///   ------+----------
  ///   10    | 0.8310
  std::string ToString() const;

  /// Renders directly to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string FormatDouble(double value, int precision = 4);

}  // namespace stratrec

#endif  // STRATREC_COMMON_ASCII_TABLE_H_
