// Tolerant floating-point comparisons used by the optimization code.
//
// The deployment-parameter space is normalized to [0, 1]; an absolute epsilon
// is therefore appropriate (values never differ by many orders of magnitude).
#ifndef STRATREC_COMMON_FLOAT_COMPARE_H_
#define STRATREC_COMMON_FLOAT_COMPARE_H_

#include <cmath>

namespace stratrec {

/// Default absolute tolerance for comparisons in normalized parameter space.
inline constexpr double kEps = 1e-9;

/// a approximately equal to b.
inline bool ApproxEq(double a, double b, double eps = kEps) {
  return std::fabs(a - b) <= eps;
}

/// a <= b up to tolerance.
inline bool ApproxLe(double a, double b, double eps = kEps) {
  return a <= b + eps;
}

/// a >= b up to tolerance.
inline bool ApproxGe(double a, double b, double eps = kEps) {
  return a + eps >= b;
}

/// Clamps v into [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Clamps v into the unit interval.
inline double ClampUnit(double v) { return Clamp(v, 0.0, 1.0); }

}  // namespace stratrec

#endif  // STRATREC_COMMON_FLOAT_COMPARE_H_
