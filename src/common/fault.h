// Deterministic fault injection for the serving and simulation tiers.
//
// A FaultPlan is a seeded schedule of injected faults over named *sites* —
// fixed code locations (a replica dispatch in the shard router, the
// response path of the HTTP server, the batch-drop point of the simulator's
// brownout scenario) that consult the plan every time execution passes
// them. The decision for the n-th visit of a site is a pure function of
// (seed, site name, n): the same seed always produces the same
// injected-fault schedule, independent of thread interleaving — which
// visit *index* a concurrent request lands on may race, but the set of
// injected indices per site never does. That is the property the chaos
// bench pins (bench/chaos_serving.cc) and stamps into its workload block
// as the schedule digest.
//
// Sites are registered by name in the FaultConfig; visiting an unregistered
// site is a no-op (no counter, no injection), so instrumented code paths
// cost one atomic load when no plan is installed and nothing is ever
// injected unless a test or bench explicitly asks for it.
//
// Two usage modes:
//   * instance   — the simulator owns a run-local plan seeded from the run
//                  (deterministic replays, no global state),
//   * process-global — InstallGlobalFaultPlan/ClearGlobalFaultPlan gate the
//                  sites compiled into HttpServer and ShardRouter; the
//                  chaos bench installs a plan per sweep cell and clears it
//                  between cells.
#ifndef STRATREC_COMMON_FAULT_H_
#define STRATREC_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stratrec::fault {

/// What one site injects and how often.
struct SiteSpec {
  /// Fraction of visits injected, in [0, 1]. 1.0 injects every visit (the
  /// "dead replica" shape); 0 disables the site without unregistering it.
  double rate = 0.0;
  /// For delay-style sites: how long the injected visit stalls. Drop/fail
  /// sites ignore it.
  double delay_ms = 0.0;

  bool operator==(const SiteSpec&) const = default;
};

/// The full plan: one seed plus the registered sites.
struct FaultConfig {
  uint64_t seed = 0;
  std::vector<std::pair<std::string, SiteSpec>> sites;

  bool operator==(const FaultConfig&) const = default;
};

/// Outcome of one site visit.
struct FaultDecision {
  bool inject = false;
  double delay_ms = 0.0;  ///< the site's delay knob, when injecting
  uint64_t visit = 0;     ///< 0-based visit index that produced the decision
};

/// A seeded fault schedule. Visit() is thread-safe and lock-free; the
/// decision for (site, visit n) is deterministic in the seed.
class FaultPlan {
 public:
  FaultPlan() = default;  ///< empty plan: every Visit is a no-op
  explicit FaultPlan(FaultConfig config);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// True when at least one site is registered (rate 0 sites count: they
  /// still track visits).
  bool enabled() const { return !sites_.empty(); }
  const FaultConfig& config() const { return config_; }

  /// Consults the plan at `site`. Registered sites advance their visit
  /// counter and decide by hashing (seed, site, visit index); unregistered
  /// sites return {inject = false} without any side effect.
  FaultDecision Visit(std::string_view site);

  /// Whether `site` is registered (useful for most-specific-site dispatch:
  /// "router.shard.0.replica.0" before the generic "router.replica").
  bool HasSite(std::string_view site) const;

  /// Lifetime counters per site; 0 for unregistered names.
  uint64_t Visits(std::string_view site) const;
  uint64_t Injected(std::string_view site) const;
  /// Totals across every registered site.
  uint64_t TotalInjected() const;

  /// Order-independent digest of the injected-fault schedule so far: the
  /// XOR-fold of one hash per injected (site, visit index) pair. Two runs
  /// with the same seed and the same per-site visit counts produce the same
  /// digest no matter how threads interleaved — the determinism pin of
  /// tests/fault_test.cc and the chaos bench's workload stamp.
  uint64_t ScheduleDigest() const;

 private:
  struct Site {
    std::string name;
    SiteSpec spec;
    uint64_t name_hash = 0;
    std::atomic<uint64_t> visits{0};
    std::atomic<uint64_t> injected{0};
    std::atomic<uint64_t> digest{0};  ///< XOR of injected-visit hashes
  };

  const Site* Find(std::string_view site) const;
  Site* Find(std::string_view site);

  FaultConfig config_;
  std::vector<std::unique_ptr<Site>> sites_;
};

/// Installs `config` as the process-global plan consulted by the serving
/// tier's compiled-in sites (HttpServer's drop/delay points, ShardRouter's
/// replica dispatch). Replaces any previous plan. The returned pointer stays
/// valid until the next Install/Clear — callers that need counters should
/// keep it.
std::shared_ptr<FaultPlan> InstallGlobalFaultPlan(FaultConfig config);
/// Removes the global plan; every site becomes a no-op again.
void ClearGlobalFaultPlan();
/// The installed plan, or nullptr. Sites use this; the nullptr fast path is
/// one relaxed atomic load.
std::shared_ptr<FaultPlan> GlobalFaultPlan();

/// Site names compiled into the stack (see the wiring in src/net and
/// src/router). Registered or not per plan; listed here so benches, tests,
/// and docs spell them identically.
inline constexpr std::string_view kSiteHttpDrop = "http.server.drop";
inline constexpr std::string_view kSiteHttpDelay = "http.server.delay";
inline constexpr std::string_view kSiteRouterReplica = "router.replica";
inline constexpr std::string_view kSiteSimBatchDrop = "sim.batch.drop";
/// Per-replica kill switch: "router.shard.<s>.replica.<r>" — the single-
/// shard-failure shape of the chaos bench.
std::string ReplicaSiteName(size_t shard, size_t replica);

}  // namespace stratrec::fault

#endif  // STRATREC_COMMON_FAULT_H_
