// stratrec::Executor — the fixed worker pool behind the asynchronous
// Service API and the parallel batch pipeline.
//
// One executor owns `threads()` worker threads scheduled by work stealing:
//
//   * every worker owns a deque it pushes and pops locally (LIFO, so the
//     task it just spawned — hot in cache — runs first),
//   * a worker whose deque is empty steals from a victim's deque (FIFO, so
//     it takes the oldest — and therefore largest-remaining — task),
//   * external submissions land in a separate injection queue (FIFO), which
//     workers drain only when neither their own deque nor any victim has
//     work.
//
// The split matters under load: ParallelFor fan-out tasks ride the worker
// deques, so sub-work of an in-flight job never serializes behind the
// unrelated tickets waiting in the injection queue — the starvation the old
// single FIFO+mutex design had. Submissions made *from* a pool worker (a
// task spawning follow-up work) also go to that worker's own deque.
//
// Two entry points:
//
//   Submit()       enqueue one fire-and-forget task (the async Service
//                  tickets ride on this),
//   ParallelFor()  partition [0, n) into grain-sized chunks and run them on
//                  the pool *and* the calling thread.
//
// ParallelFor's caller always participates in chunk execution: chunks are
// claimed from one shared cursor, so the caller drains work exactly like a
// thief and a task that is itself running on a pool worker can fan out
// sub-work without risking deadlock — even on a single-threaded pool the
// caller runs every chunk itself. This is what lets WorkforceMatrix::
// Compute and RunSweep partition across the same pool that runs their
// enclosing ticket.
//
// Observability: QueueDepth() reports injection + per-worker deque totals
// (one consistent number, the same the Service journals in ServiceStats);
// ActiveWorkers() counts workers inside a task; StealCount() /
// LocalHitCount() are lifetime counters of how tasks reached their thread —
// a high steal share means the pool is rebalancing, a high local share
// means fan-out is staying cache-local.
//
// Destruction drains: the destructor stops accepting new work, runs every
// task still queued, and joins the workers — so a pending Ticket is always
// completed, never silently dropped. Submit() after shutdown has begun runs
// the task inline on the calling thread for the same reason. An executor
// must not be destroyed from one of its own workers (a task must not drop
// the last reference to the object owning the pool).
#ifndef STRATREC_COMMON_EXECUTOR_H_
#define STRATREC_COMMON_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stratrec {

class Executor {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit Executor(size_t threads = 0);

  /// Drains every queue (running every still-pending task) and joins.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues one task; never blocks. From an external thread the task
  /// joins the FIFO injection queue; from a pool worker of this executor it
  /// is pushed onto that worker's own deque (LIFO), where idle workers can
  /// steal it. `task` must be non-null.
  void Submit(std::function<void()> task);

  /// Runs body(begin, end) over chunked sub-ranges of [0, n), each at most
  /// `grain` wide (grain 0 is treated as 1). Blocks until every chunk has
  /// finished. The calling thread executes chunks too, so this is safe to
  /// call from inside a pool task. Helper tasks ride the worker deques —
  /// never the injection queue — so fan-out latency is bounded by the
  /// in-flight work, not by how many unrelated tickets are pending. `body`
  /// must tolerate concurrent invocation on disjoint ranges.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  size_t threads() const { return workers_.size(); }

  /// Tasks waiting right now (excludes running ones): the injection queue
  /// plus every per-worker deque, summed in one pass so the number the
  /// Service journals is consistent with what the pool will actually run.
  size_t queued() const;

  /// Observability gauges and counters (instantaneous / monotonic, racy by
  /// nature — fine for monitoring, not for synchronization). QueueDepth is
  /// `queued()` under its service-facing name; ActiveWorkers counts pool
  /// workers currently inside a task (helpers running ParallelFor chunks
  /// count, the participating caller thread does not). StealCount is the
  /// lifetime number of tasks a worker took from another worker's deque;
  /// LocalHitCount the lifetime number popped from the owner's own deque.
  /// Together they say whether the pool is saturated and how work is
  /// reaching the threads.
  size_t QueueDepth() const { return queued(); }
  size_t ActiveWorkers() const {
    return active_workers_.load(std::memory_order_relaxed);
  }
  uint64_t StealCount() const;
  uint64_t LocalHitCount() const;

 private:
  /// One worker's slice of the scheduler, cache-line separated so a
  /// worker's local pushes/pops never bounce another worker's line.
  struct alignas(64) WorkerSlot {
    mutable std::mutex mutex;  ///< guards `deque`
    std::deque<std::function<void()>> deque;
    std::atomic<uint64_t> steals{0};      ///< tasks this worker stole
    std::atomic<uint64_t> local_hits{0};  ///< tasks popped from own deque
  };

  void WorkerLoop(size_t index);
  /// local pop (LIFO) → steal (FIFO, scanning victims from index+1) →
  /// injection (FIFO). Empty function when nothing is runnable.
  std::function<void()> TryAcquire(size_t index);
  /// Pushes onto slot `index`'s deque and wakes a sleeper if any.
  void PushToSlot(size_t index, std::function<void()> task);
  void NotifySleepers();

  std::vector<std::unique_ptr<WorkerSlot>> slots_;

  mutable std::mutex injection_mutex_;  ///< guards `injection_`, `shutdown_`
  std::deque<std::function<void()>> injection_;
  bool shutdown_ = false;

  /// Sleep/wake protocol: `pending_` counts tasks in any queue, `idle_`
  /// advertises sleepers. A pusher bumps pending_ then — only if a sleeper
  /// is advertised — taps sleep_mutex_ and notifies; a would-be sleeper
  /// advertises itself, re-checks pending_, and only then waits. Both sides
  /// use seq_cst, so one of them always sees the other (no lost wakeup)
  /// while the uncontended fast path never touches the global mutex.
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> idle_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<size_t> active_workers_{0};
  std::atomic<size_t> external_slot_hint_{0};  ///< round-robin helper target
  std::vector<std::thread> workers_;
};

}  // namespace stratrec

#endif  // STRATREC_COMMON_EXECUTOR_H_
