// stratrec::Executor — the fixed worker pool behind the asynchronous
// Service API and the parallel batch pipeline.
//
// One executor owns `threads()` worker threads draining a FIFO work queue.
// Two entry points:
//
//   Submit()       enqueue one fire-and-forget task (the async Service
//                  tickets ride on this),
//   ParallelFor()  partition [0, n) into grain-sized chunks and run them on
//                  the pool *and* the calling thread.
//
// ParallelFor's caller always participates in chunk execution: a task that
// is itself running on a pool worker can fan out sub-work without risking
// deadlock — even on a single-threaded pool the caller drains every chunk
// itself. This is what lets WorkforceMatrix::Compute and RunSweep partition
// across the same pool that runs their enclosing ticket.
//
// Destruction drains: the destructor stops accepting new work, runs every
// task still queued, and joins the workers — so a pending Ticket is always
// completed, never silently dropped. Submit() after shutdown has begun runs
// the task inline on the calling thread for the same reason. An executor
// must not be destroyed from one of its own workers (a task must not drop
// the last reference to the object owning the pool).
#ifndef STRATREC_COMMON_EXECUTOR_H_
#define STRATREC_COMMON_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stratrec {

class Executor {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit Executor(size_t threads = 0);

  /// Drains the queue (running every still-pending task) and joins.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues one task. Never blocks; tasks run in FIFO order across the
  /// pool. `task` must be non-null.
  void Submit(std::function<void()> task);

  /// Runs body(begin, end) over chunked sub-ranges of [0, n), each at most
  /// `grain` wide (grain 0 is treated as 1). Blocks until every chunk has
  /// finished. The calling thread executes chunks too, so this is safe to
  /// call from inside a pool task. `body` must tolerate concurrent
  /// invocation on disjoint ranges.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  size_t threads() const { return workers_.size(); }

  /// Tasks waiting in the queue right now (excludes running ones).
  size_t queued() const;

  /// Observability gauges (instantaneous, racy by nature — fine for
  /// monitoring, not for synchronization). QueueDepth is `queued()` under
  /// its service-facing name; ActiveWorkers counts pool workers currently
  /// inside a task (helpers running ParallelFor chunks count, the
  /// participating caller thread does not). Together they say whether the
  /// pool is saturated (active == threads, depth growing) or idle — the
  /// data the work-stealing roadmap item needs.
  size_t QueueDepth() const { return queued(); }
  size_t ActiveWorkers() const {
    return active_workers_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::atomic<size_t> active_workers_{0};
  std::vector<std::thread> workers_;
};

}  // namespace stratrec

#endif  // STRATREC_COMMON_EXECUTOR_H_
