// Minimal JSON value / writer / reader for the wire codec and journal.
//
// This is deliberately not a general-purpose JSON library: it implements
// exactly what the record/replay subsystem needs and what a gRPC/HTTP
// front end can reuse —
//
//   * an insertion-ordered object representation, so encode -> dump is
//     deterministic (stable field order) and a re-encoded value is
//     byte-identical to the original encoding,
//   * shortest-round-trip double formatting (the decoded double is always
//     bit-identical to the encoded one; the parameter space is normalized,
//     finite [0, 1] data — a non-finite double dumps as `null` so the
//     document stays valid JSON, and the parser rejects non-finite number
//     tokens, so the loss surfaces as a clean field-level decode error),
//   * a strict recursive-descent parser returning Status errors instead of
//     throwing.
//
// Dump() emits compact single-line JSON, which is what makes the journal a
// line-delimited format: one Dump() per record, '\n'-separated.
#ifndef STRATREC_COMMON_JSON_H_
#define STRATREC_COMMON_JSON_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace stratrec::json {

/// One JSON value: null, bool, finite number, string, array, or an
/// insertion-ordered object.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Object members keep insertion (and parse) order.
  using Member = std::pair<std::string, Value>;

  Value() : type_(Type::kNull) {}
  Value(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Value(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Value(int value)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Value(size_t value)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Value(std::string value)  // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  Value(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT

  static Value Array() { return Value(Type::kArray); }
  static Value Object() { return Value(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; must only be called on the matching type.
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }

  /// Array building.
  Value& Append(Value value) {
    items_.push_back(std::move(value));
    return items_.back();
  }
  size_t size() const { return items_.size(); }

  /// Object building: appends (no duplicate check — encoders control keys).
  Value& Add(std::string key, Value value) {
    members_.emplace_back(std::move(key), std::move(value));
    return members_.back().second;
  }

  /// Object lookup: first member named `key`, or nullptr.
  const Value* Find(std::string_view key) const;

  bool operator==(const Value& other) const;

 private:
  explicit Value(Type type) : type_(type) {}

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Compact single-line serialization ({"a":1,"b":[true,"x"]}). Object
/// members print in insertion order; doubles use the shortest decimal form
/// that parses back bit-identically.
std::string Dump(const Value& value);

/// Formats one double the way Dump() does (shortest exact round-trip;
/// "null" for non-finite values).
std::string FormatNumber(double value);

/// Strict parse of one JSON document (trailing non-whitespace is an error).
/// Fails with kInvalidArgument, citing the byte offset. Numbers must be
/// finite; duplicate object keys keep both members (Find returns the first).
Result<Value> Parse(std::string_view text);

}  // namespace stratrec::json

#endif  // STRATREC_COMMON_JSON_H_
