// Minimal CSV writer so benches can dump machine-readable series next to
// their ASCII tables (one file per figure panel).
#ifndef STRATREC_COMMON_CSV_H_
#define STRATREC_COMMON_CSV_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace stratrec {

/// Buffers rows and writes an RFC-4180-ish CSV file (quotes cells containing
/// commas, quotes, or newlines).
class CsvWriter {
 public:
  /// Creates a writer with the given header row.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row of raw string cells.
  void AddRow(std::vector<std::string> cells);

  /// Appends a row of numeric cells.
  void AddNumericRow(const std::vector<double>& values, int precision = 6);

  /// Serializes the full document.
  std::string ToString() const;

  /// Writes the document to `path`. Fails with kInternal on I/O error.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stratrec

#endif  // STRATREC_COMMON_CSV_H_
