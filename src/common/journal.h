// Append-only line journal: the persistence substrate of record/replay.
//
// A journal file is line-delimited text. The first line is a format-version
// header ({"format":"stratrec-journal","version":1}); every following line
// is one self-describing record — the api-layer wire codec (src/api/codec.h)
// decides what a record contains, this layer only guarantees atomic,
// ordered, durable-ish appends:
//
//   * Append() is thread-safe; the internal mutex covers only the write of
//     an already-encoded line, so encoding happens outside any lock and the
//     Service hot path never serializes on anything wider than the fwrite,
//   * records are written whole lines at a time, so a reader never sees a
//     torn record (at worst a truncated tail after a crash, which
//     JournalReader tolerates when asked to),
//   * with flush-every-record (the default), a record is on its way to the
//     OS before Append returns — a *completed* pair is in the trace by the
//     time its ticket is retrievable. (A cancelled ticket's record is
//     appended when a worker eventually dequeues the withdrawn task — at
//     the latest during the Service drain on destruction — so Cancel()
//     returning is not yet a durability point.)
#ifndef STRATREC_COMMON_JOURNAL_H_
#define STRATREC_COMMON_JOURNAL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace stratrec {

/// Format name carried by the header line of every journal file.
inline constexpr std::string_view kJournalFormatName = "stratrec-journal";
/// Version written by this build; readers reject other versions.
/// v2: the config record gained the ServiceConfig::cache block and stats
/// records the cache_hits/cache_misses/index_build_nanos counters.
/// v3: segment rotation (the journal block gained max_segment_bytes) and
/// stats records the rejected_requests/retry_after_hints admission counters.
/// v4: stream sessions journal stream-open/stream-event record kinds, stats
/// records the stream_reschedules/snapshot_delta_updates/snapshot_rebuilds
/// counters, and segment chains may be compacted (cold segments folded into
/// the base — see JournalWriter::Options::compact_after_segments).
/// v5: stats records carry the kernel_dispatch level ("avx2"/"scalar") of
/// the SoA SIMD kernels.
/// v6: stats records may carry a "sim_time" virtual-time stamp — the
/// platform simulator (src/sim/) checkpoints service saturation against its
/// discrete-event clock via Service::RecordStatsSnapshot(sim_time).
/// v7: stats records carry the fault-tolerance counters
/// (deadline_exceeded/retries/failovers/hedges_won) and batch/sweep/
/// stream-open requests may carry a relative deadline_ms budget. Both are
/// optional on decode, so v6 traces still replay — the reader accepts
/// kJournalMinReadVersion..kJournalFormatVersion.
inline constexpr int kJournalFormatVersion = 7;
/// Oldest version this build still reads (v6 records are a strict subset of
/// v7: every added field decodes optionally).
inline constexpr int kJournalMinReadVersion = 6;

/// Thread-safe writer. Create via Open; the file is truncated and the
/// header line written immediately, so even an empty trace is well-formed.
class JournalWriter {
 public:
  /// Rewrites the records of the cold segments being folded by a compaction
  /// into the (usually much shorter) list that replaces them. This layer is
  /// codec-agnostic — the api layer supplies wire::CompactRecords, which
  /// keeps the records replay still needs (last config/catalog/stats, every
  /// stream-open) and drops the rest.
  using Compactor =
      std::function<std::vector<std::string>(const std::vector<std::string>&)>;

  struct Options {
    /// fflush() after every record (see JournalConfig::flush_every_record).
    bool flush_every_record = true;
    /// Segment rotation bound in bytes; 0 keeps one unbounded file. Once
    /// appending a record would push the current segment past this, the
    /// writer closes it and rolls to `<path>.1`, `<path>.2`, ... — each
    /// segment starting with its own header line, so every file in the
    /// chain is independently a well-formed journal. A segment always holds
    /// at least one record (a record larger than the bound gets a segment
    /// to itself rather than rolling forever), and a record never splits
    /// across segments.
    size_t max_segment_bytes = 0;
    /// When > 0 (requires rotation and a `compact` callback): after a roll
    /// leaves more than this many closed segments, the cold ones — all but
    /// the `retain_segments` newest closed segments — are read back, folded
    /// through `compact` into a fresh base segment (written to a temp file
    /// and renamed into place, so a crash never loses the chain), and the
    /// surviving segments are renumbered to close the gap. Readers see a
    /// shorter chain with identical semantics for the retained records.
    size_t compact_after_segments = 0;
    /// Newest closed segments a compaction leaves untouched.
    size_t retain_segments = 1;
    /// The record-folding policy; compaction is skipped when unset.
    Compactor compact;
  };

  /// Fails with kInternal when the file cannot be created.
  static Result<std::shared_ptr<JournalWriter>> Open(std::string path,
                                                     Options options);

  /// Legacy convenience overload (no compaction).
  static Result<std::shared_ptr<JournalWriter>> Open(
      std::string path, bool flush_every_record = true,
      size_t max_segment_bytes = 0);

  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one record (the trailing '\n' is added here). `line` must not
  /// itself contain '\n' — records are single lines by construction
  /// (json::Dump output). Fails with kInternal on I/O errors.
  Status Append(std::string_view line);

  const std::string& path() const { return path_; }

  /// Records appended so far (excludes the header line).
  size_t records_written() const;

  /// Segment chains folded by the compaction policy so far.
  size_t compactions() const;

 private:
  JournalWriter(std::string path, std::FILE* file, Options options,
                size_t header_bytes)
      : path_(std::move(path)),
        options_(std::move(options)),
        file_(file),
        segment_bytes_(header_bytes) {}

  /// Closes the current segment and opens `<path>.<next>` with a fresh
  /// header. Called under `mutex_`.
  Status RollSegmentLocked();

  /// Folds the cold closed segments (base through `<path>.m`) through the
  /// compactor into a fresh base, deletes the folded files, and renumbers
  /// the survivors. Called under `mutex_` right after a successful roll.
  Status CompactLocked();

  const std::string path_;
  const Options options_;
  mutable std::mutex mutex_;  ///< guards the mutable state below
  std::FILE* file_ = nullptr;
  size_t segment_bytes_ = 0;    ///< bytes written to the current segment
  size_t segment_records_ = 0;  ///< records in the current segment
  size_t segment_index_ = 0;    ///< 0 = the base path, n = "<path>.n"
  size_t records_ = 0;
  size_t compactions_ = 0;
};

/// Reads a journal back: validates the header line, returns the record
/// lines in file order. Blank lines are skipped.
class JournalReader {
 public:
  /// Fails with kNotFound when the file does not exist, kInvalidArgument on
  /// a missing/foreign/newer-version header. A final line without a
  /// terminating '\n' (a crash-truncated tail) is dropped with no error —
  /// every returned record is complete.
  static Result<std::vector<std::string>> ReadRecords(const std::string& path);

  /// Reads a whole segment chain — `path`, then `<path>.1`, `<path>.2`, ...
  /// until the first missing segment — and returns the concatenated records
  /// in write order. Each segment's header is validated like ReadRecords.
  /// A single-file journal (no rotation) reads identically to ReadRecords.
  static Result<std::vector<std::string>> ReadAllSegments(
      const std::string& path);
};

}  // namespace stratrec

#endif  // STRATREC_COMMON_JOURNAL_H_
