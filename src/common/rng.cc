#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace stratrec {
namespace {

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 bounded away from 0 so log() is finite.
  double u1 = Uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::TruncatedNormal(double mean, double stddev, double lo, double hi) {
  assert(lo <= hi);
  if (stddev <= 0.0) return std::fmin(std::fmax(mean, lo), hi);
  for (int attempt = 0; attempt < 256; ++attempt) {
    const double v = Normal(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  // Pathological truncation window; fall back to clamping.
  return std::fmin(std::fmax(mean, lo), hi);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double threshold = std::exp(-lambda);
    int count = 0;
    double product = Uniform();
    while (product > threshold) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large lambda.
  const double v = Normal(lambda, std::sqrt(lambda));
  return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = Uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace stratrec
