#include "src/common/fault.h"

#include <mutex>

namespace stratrec::fault {
namespace {

// Same derivation idiom as sim::RngStreams: FNV-1a over the site name,
// SplitMix64 to whiten. Keeping the functions local (not shared with
// src/sim) so the two layers can't drift each other's schedules.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// The decision hash for (seed, site, visit). Also the digest contribution
// when the visit injects, so the digest is a pure function of the schedule.
uint64_t VisitHash(uint64_t seed, uint64_t name_hash, uint64_t visit) {
  return SplitMix64(seed ^ SplitMix64(name_hash + visit));
}

// Uniform-in-[0,1) from the top 53 bits, mirroring RngStreams::NextDouble.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::mutex g_plan_mutex;
std::shared_ptr<FaultPlan> g_plan;  // guarded by g_plan_mutex

}  // namespace

FaultPlan::FaultPlan(FaultConfig config) : config_(std::move(config)) {
  sites_.reserve(config_.sites.size());
  for (const auto& [name, spec] : config_.sites) {
    auto site = std::make_unique<Site>();
    site->name = name;
    site->spec = spec;
    site->name_hash = Fnv1a(name);
    sites_.push_back(std::move(site));
  }
}

const FaultPlan::Site* FaultPlan::Find(std::string_view site) const {
  for (const auto& s : sites_) {
    if (s->name == site) return s.get();
  }
  return nullptr;
}

FaultPlan::Site* FaultPlan::Find(std::string_view site) {
  return const_cast<Site*>(std::as_const(*this).Find(site));
}

FaultDecision FaultPlan::Visit(std::string_view site) {
  Site* s = Find(site);
  if (s == nullptr) return {};
  FaultDecision decision;
  decision.visit = s->visits.fetch_add(1, std::memory_order_relaxed);
  const uint64_t h = VisitHash(config_.seed, s->name_hash, decision.visit);
  if (ToUnit(h) < s->spec.rate) {
    decision.inject = true;
    decision.delay_ms = s->spec.delay_ms;
    s->injected.fetch_add(1, std::memory_order_relaxed);
    s->digest.fetch_xor(h, std::memory_order_relaxed);
  }
  return decision;
}

bool FaultPlan::HasSite(std::string_view site) const {
  return Find(site) != nullptr;
}

uint64_t FaultPlan::Visits(std::string_view site) const {
  const Site* s = Find(site);
  return s == nullptr ? 0 : s->visits.load(std::memory_order_relaxed);
}

uint64_t FaultPlan::Injected(std::string_view site) const {
  const Site* s = Find(site);
  return s == nullptr ? 0 : s->injected.load(std::memory_order_relaxed);
}

uint64_t FaultPlan::TotalInjected() const {
  uint64_t total = 0;
  for (const auto& s : sites_) {
    total += s->injected.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FaultPlan::ScheduleDigest() const {
  // XOR across sites of each site's XOR-of-injected-visit-hashes, salted
  // with the site name so identical schedules at different sites differ.
  uint64_t digest = 0;
  for (const auto& s : sites_) {
    const uint64_t d = s->digest.load(std::memory_order_relaxed);
    if (d != 0) digest ^= SplitMix64(d ^ s->name_hash);
  }
  return digest;
}

std::shared_ptr<FaultPlan> InstallGlobalFaultPlan(FaultConfig config) {
  auto plan = std::make_shared<FaultPlan>(std::move(config));
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  g_plan = plan;
  return plan;
}

void ClearGlobalFaultPlan() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  g_plan.reset();
}

std::shared_ptr<FaultPlan> GlobalFaultPlan() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  return g_plan;
}

std::string ReplicaSiteName(size_t shard, size_t replica) {
  return "router.shard." + std::to_string(shard) + ".replica." +
         std::to_string(replica);
}

}  // namespace stratrec::fault
