// Lightweight Status / Result error handling, in the spirit of the RocksDB /
// Arrow idiom: fallible public APIs return Status or Result<T> rather than
// throwing exceptions.
#ifndef STRATREC_COMMON_STATUS_H_
#define STRATREC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace stratrec {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInfeasible,
  kCancelled,
  kInternal,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name ("InvalidArgument", ...) for `code`.
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// `Status::OK()` is cheap (no allocation). Error statuses carry a message
/// describing the failure. Statuses are value types and freely copyable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// The canonical OK singleton-by-value.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// A well-formed problem instance that provably has no solution
  /// (e.g. k > |S| in ADPaR).
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  /// Work withdrawn before it ran (e.g. Ticket::Cancel on a queued job).
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Work abandoned because its caller-supplied deadline expired before it
  /// could finish (maps to HTTP 504 in the serving tier).
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Statuses compare by code and message (the wire codec round-trips both,
  /// so a decoded journal outcome equals the recorded one).
  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// absl::StatusOr<T> / arrow::Result<T>.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `status.ok()` is forbidden.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_{Status::OK()};
};

/// Propagates an error Status from an expression, RocksDB-style.
#define STRATREC_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::stratrec::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace stratrec

#endif  // STRATREC_COMMON_STATUS_H_
