#include "src/common/status.h"

namespace stratrec {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace stratrec
