// Deterministic, seedable random number generation used across the library.
//
// All stochastic components (workload generators, the platform simulator,
// property tests) draw from Rng so that every experiment is reproducible from
// a single 64-bit seed.
#ifndef STRATREC_COMMON_RNG_H_
#define STRATREC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stratrec {

/// xoshiro256** PRNG (Blackman & Vigna) with convenience samplers.
///
/// Not cryptographically secure; chosen for speed, tiny state, and exact
/// cross-platform reproducibility (unlike std::normal_distribution, whose
/// output is implementation-defined).
class Rng {
 public:
  /// Seeds the generator; two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (deterministic across platforms).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Normal(mean, stddev) rejected-resampled into [lo, hi].
  double TruncatedNormal(double mean, double stddev, double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given rate (Knuth for small lambda,
  /// normal approximation above 30).
  int Poisson(double lambda);

  /// Exponential inter-arrival time with the given rate (> 0).
  double Exponential(double rate);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator (for per-task streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace stratrec

#endif  // STRATREC_COMMON_RNG_H_
