#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace stratrec {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[stratrec %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace stratrec
