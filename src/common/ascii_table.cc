#include "src/common/ascii_table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace stratrec {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void AsciiTable::AddNumericRow(const std::string& label,
                               const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string AsciiTable::ToString() const {
  size_t num_cols = headers_.size();
  for (const auto& row : rows_) num_cols = std::max(num_cols, row.size());

  std::vector<size_t> widths(num_cols, 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = std::max(widths[c], headers_[c].size());
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream* out) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      (*out) << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < num_cols) (*out) << " | ";
    }
    (*out) << '\n';
  };

  std::ostringstream out;
  render_row(headers_, &out);
  for (size_t c = 0; c < num_cols; ++c) {
    out << std::string(widths[c], '-');
    if (c + 1 < num_cols) out << "-+-";
  }
  out << '\n';
  for (const auto& row : rows_) render_row(row, &out);
  return out.str();
}

void AsciiTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace stratrec
