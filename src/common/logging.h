// Minimal leveled logging. Defaults to kWarning so library code is silent in
// tests and benches unless something is wrong.
#ifndef STRATREC_COMMON_LOGGING_H_
#define STRATREC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace stratrec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Emits one line to stderr if `level` passes the global threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector used by the STRATREC_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace stratrec

/// Usage: STRATREC_LOG(kInfo) << "satisfied " << n << " requests";
#define STRATREC_LOG(level) \
  ::stratrec::internal::LogLine(::stratrec::LogLevel::level)

#endif  // STRATREC_COMMON_LOGGING_H_
