#include "src/common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace stratrec::json {

const Value* Value::Find(std::string_view key) const {
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return items_ == other.items_;
    case Type::kObject:
      return members_ == other.members_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Dump
// ---------------------------------------------------------------------------

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpTo(const Value& value, std::string* out) {
  switch (value.type()) {
    case Value::Type::kNull:
      *out += "null";
      break;
    case Value::Type::kBool:
      *out += value.AsBool() ? "true" : "false";
      break;
    case Value::Type::kNumber:
      *out += FormatNumber(value.AsNumber());
      break;
    case Value::Type::kString:
      AppendEscaped(value.AsString(), out);
      break;
    case Value::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& item : value.items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(item, out);
      }
      out->push_back(']');
      break;
    }
    case Value::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const Value::Member& member : value.members()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(member.first, out);
        out->push_back(':');
        DumpTo(member.second, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string FormatNumber(double value) {
  // JSON has no NaN/Inf literal; emitting the C token would corrupt every
  // journal line around it. Serialize as null — the lossy encoding is
  // surfaced at decode time (a field that must be a number fails cleanly)
  // instead of poisoning the whole file.
  if (!std::isfinite(value)) return "null";
  // std::to_chars emits the shortest decimal form that parses back
  // bit-identically, in one call (this runs on the journal encode path for
  // every double of every record).
  char buffer[40];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

std::string Dump(const Value& value) {
  std::string out;
  DumpTo(value, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    SkipWhitespace();
    Value value;
    STRATREC_RETURN_NOT_OK(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        STRATREC_RETURN_NOT_OK(Expect("null"));
        *out = Value();
        return Status::OK();
      case 't':
        STRATREC_RETURN_NOT_OK(Expect("true"));
        *out = Value(true);
        return Status::OK();
      case 'f':
        STRATREC_RETURN_NOT_OK(Expect("false"));
        *out = Value(false);
        return Status::OK();
      case '"': {
        std::string text;
        STRATREC_RETURN_NOT_OK(ParseString(&text));
        *out = Value(std::move(text));
        return Status::OK();
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      Value item;
      STRATREC_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      out->Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      STRATREC_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      Value value;
      STRATREC_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Add(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Error("dangling escape");
      const char escape = text_[pos_ + 1];
      pos_ += 2;
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          STRATREC_RETURN_NOT_OK(ParseHex4(&code));
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = code;
    return Status::OK();
  }

  /// Encodes one BMP code point (surrogate pairs are not recombined — the
  /// codec only emits escapes for control characters, all below U+0080).
  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    if (!std::isfinite(value)) {
      pos_ = start;
      return Error("non-finite number '" + token + "'");
    }
    *out = Value(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace stratrec::json
