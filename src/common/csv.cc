#include "src/common/csv.h"

#include <cstdio>
#include <sstream>

#include "src/common/ascii_table.h"

namespace stratrec {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

void AppendCell(const std::string& cell, std::ostringstream* out) {
  if (!NeedsQuoting(cell)) {
    (*out) << cell;
    return;
  }
  (*out) << '"';
  for (char ch : cell) {
    if (ch == '"') (*out) << '"';
    (*out) << ch;
  }
  (*out) << '"';
}

void AppendRow(const std::vector<std::string>& row, std::ostringstream* out) {
  for (size_t c = 0; c < row.size(); ++c) {
    if (c > 0) (*out) << ',';
    AppendCell(row[c], out);
  }
  (*out) << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void CsvWriter::AddNumericRow(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::ostringstream out;
  AppendRow(header_, &out);
  for (const auto& row : rows_) AppendRow(row, &out);
  return out.str();
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const std::string doc = ToString();
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

}  // namespace stratrec
