#include "src/geometry/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace stratrec::geo {

// An entry is either a (point, id) pair in a leaf or a child pointer in an
// internal node; `box` is the point box or the child's MBB respectively.
struct RTree::Entry {
  Rect3 box = Rect3::Empty();
  int64_t id = -1;
  std::unique_ptr<Node> child;
};

struct RTree::Node {
  bool is_leaf = true;
  Node* parent = nullptr;
  std::vector<Entry> entries;

  Rect3 Mbb() const {
    Rect3 box = Rect3::Empty();
    for (const Entry& e : entries) box.ExtendRect(e.box);
    return box;
  }

  size_t SubtreeCount() const {
    if (is_leaf) return entries.size();
    size_t total = 0;
    for (const Entry& e : entries) total += e.child->SubtreeCount();
    return total;
  }
};

RTree::RTree(size_t max_entries)
    : root_(std::make_unique<Node>()),
      max_entries_(std::max<size_t>(max_entries, 4)),
      min_entries_(std::max<size_t>(max_entries, 4) / 2) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

void RTree::Insert(const Point3& point, int64_t id) {
  Entry entry;
  entry.box = Rect3::FromPoint(point);
  entry.id = id;
  InsertEntry(std::move(entry), /*target_level=*/-1);
  ++size_;
}

RTree::Node* RTree::ChooseSubtree(Node* node, const Rect3& box,
                                  int target_level) const {
  int level = 0;
  while (!node->is_leaf) {
    if (target_level >= 0 && level == target_level) break;
    Node* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (Entry& e : node->entries) {
      const double enlargement = e.box.Enlargement(box);
      const double volume = e.box.Volume();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && volume < best_volume)) {
        best = e.child.get();
        best_enlargement = enlargement;
        best_volume = volume;
      }
    }
    assert(best != nullptr);
    node = best;
    ++level;
  }
  return node;
}

void RTree::InsertEntry(Entry entry, int target_level) {
  Node* leaf = ChooseSubtree(root_.get(), entry.box, target_level);
  if (entry.child != nullptr) entry.child->parent = leaf;
  leaf->entries.push_back(std::move(entry));
  if (leaf->entries.size() > max_entries_) {
    SplitNode(leaf);
  } else {
    AdjustUpward(leaf);
  }
}

void RTree::SplitNode(Node* node) {
  // Guttman quadratic split: pick the pair of seeds wasting the most volume,
  // then assign remaining entries by preference (max enlargement delta).
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();

  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = Union(entries[i].box, entries[j].box).Volume() -
                           entries[i].box.Volume() - entries[j].box.Volume();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;

  Rect3 box_a = entries[seed_a].box;
  Rect3 box_b = entries[seed_b].box;
  std::vector<Entry> group_a, group_b;
  group_a.push_back(std::move(entries[seed_a]));
  group_b.push_back(std::move(entries[seed_b]));

  std::vector<Entry> rest;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(std::move(entries[i]));
  }

  for (size_t processed = 0; processed < rest.size(); ++processed) {
    Entry& e = rest[processed];
    // Force-assign to an undersized group when it must absorb the remainder
    // to reach min_entries_.
    const size_t remaining = rest.size() - processed;
    if (group_a.size() + remaining == min_entries_) {
      box_a.ExtendRect(e.box);
      group_a.push_back(std::move(e));
      continue;
    }
    if (group_b.size() + remaining == min_entries_) {
      box_b.ExtendRect(e.box);
      group_b.push_back(std::move(e));
      continue;
    }
    const double grow_a = box_a.Enlargement(e.box);
    const double grow_b = box_b.Enlargement(e.box);
    const bool pick_a =
        grow_a < grow_b ||
        (grow_a == grow_b && (box_a.Volume() < box_b.Volume() ||
                              (box_a.Volume() == box_b.Volume() &&
                               group_a.size() <= group_b.size())));
    if (pick_a) {
      box_a.ExtendRect(e.box);
      group_a.push_back(std::move(e));
    } else {
      box_b.ExtendRect(e.box);
      group_b.push_back(std::move(e));
    }
  }

  node->entries = std::move(group_a);
  sibling->entries = std::move(group_b);
  if (!node->is_leaf) {
    for (Entry& e : node->entries) e.child->parent = node;
    for (Entry& e : sibling->entries) e.child->parent = sibling.get();
  }

  if (node->parent == nullptr) {
    // Grow the tree: the old root and its sibling become children of a new
    // root node.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;

    Entry left;
    left.box = node->Mbb();
    left.child = std::move(root_);
    left.child->parent = new_root.get();

    Entry right;
    right.box = sibling->Mbb();
    sibling->parent = new_root.get();
    right.child = std::move(sibling);

    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  Entry sibling_entry;
  sibling_entry.box = sibling->Mbb();
  sibling->parent = parent;
  sibling_entry.child = std::move(sibling);
  parent->entries.push_back(std::move(sibling_entry));
  AdjustUpward(node);
  if (parent->entries.size() > max_entries_) {
    SplitNode(parent);
  } else {
    AdjustUpward(parent);
  }
}

void RTree::AdjustUpward(Node* node) {
  Node* child = node;
  Node* parent = node->parent;
  while (parent != nullptr) {
    for (Entry& e : parent->entries) {
      if (e.child.get() == child) {
        e.box = child->Mbb();
        break;
      }
    }
    child = parent;
    parent = parent->parent;
  }
}

std::vector<int64_t> RTree::Query(const Rect3& box) const {
  std::vector<int64_t> out;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!box.Intersects(e.box)) continue;
      if (node->is_leaf) {
        out.push_back(e.id);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  return out;
}

size_t RTree::Count(const Rect3& box) const {
  size_t total = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!box.Intersects(e.box)) continue;
      if (node->is_leaf) {
        ++total;
      } else if (box.ContainsRect(e.box)) {
        total += e.child->SubtreeCount();
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  return total;
}

void RTree::VisitNodes(
    const std::function<void(const NodeSummary&)>& visit) const {
  struct Frame {
    const Node* node;
    int depth;
  };
  std::vector<Frame> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    NodeSummary summary;
    summary.mbb = frame.node->Mbb();
    summary.count = frame.node->SubtreeCount();
    summary.depth = frame.depth;
    summary.is_leaf = frame.node->is_leaf;
    visit(summary);
    if (!frame.node->is_leaf) {
      for (const Entry& e : frame.node->entries) {
        stack.push_back({e.child.get(), frame.depth + 1});
      }
    }
  }
}

int RTree::Height() const {
  if (size_ == 0) return 0;
  int height = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++height;
    node = node->entries.front().child.get();
  }
  return height;
}

}  // namespace stratrec::geo
