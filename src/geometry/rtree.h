// R-tree over 3-D points with quadratic split (Guttman), the spatial index
// behind ADPaR's Baseline3 (paper Section 5.2.1, citing Beckmann et al.'s
// R*-tree). Supports insertion, box queries, and traversal of node bounding
// boxes with subtree cardinalities — Baseline3 scans node MBBs looking for
// one that contains exactly k strategies.
#ifndef STRATREC_GEOMETRY_RTREE_H_
#define STRATREC_GEOMETRY_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/geometry/rect.h"

namespace stratrec::geo {

/// A bounding box exposed during traversal, together with how many points
/// its subtree holds and its depth (root = 0).
struct NodeSummary {
  Rect3 mbb;
  size_t count = 0;
  int depth = 0;
  bool is_leaf = false;
};

/// Dynamic R-tree index mapping 3-D points to integer ids.
class RTree {
 public:
  /// `max_entries` per node (min is max/2); defaults follow common practice.
  explicit RTree(size_t max_entries = 8);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// Inserts a point with an opaque id (ids need not be unique).
  void Insert(const Point3& point, int64_t id);

  /// Number of stored points.
  size_t size() const { return size_; }

  /// Ids of all points inside `box` (boundary inclusive), in arbitrary order.
  std::vector<int64_t> Query(const Rect3& box) const;

  /// Number of points inside `box` without materializing ids.
  size_t Count(const Rect3& box) const;

  /// Invokes `visit` for every node (internal and leaf) in pre-order.
  void VisitNodes(const std::function<void(const NodeSummary&)>& visit) const;

  /// Height of the tree (0 for empty, 1 for a single leaf root).
  int Height() const;

 private:
  struct Node;
  struct Entry;

  void InsertEntry(Entry entry, int target_level);
  Node* ChooseSubtree(Node* node, const Rect3& box, int target_level) const;
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);

  std::unique_ptr<Node> root_;
  size_t max_entries_;
  size_t min_entries_;
  size_t size_ = 0;
};

}  // namespace stratrec::geo

#endif  // STRATREC_GEOMETRY_RTREE_H_
