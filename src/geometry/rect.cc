#include "src/geometry/rect.h"

#include <algorithm>

namespace stratrec::geo {

Rect3& Rect3::Extend(const Point3& p) {
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  lo.z = std::min(lo.z, p.z);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
  hi.z = std::max(hi.z, p.z);
  return *this;
}

Rect3& Rect3::ExtendRect(const Rect3& other) {
  if (other.IsEmpty()) return *this;
  Extend(other.lo);
  Extend(other.hi);
  return *this;
}

double Rect3::Volume() const {
  if (IsEmpty()) return 0.0;
  return (hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z);
}

double Rect3::Margin() const {
  if (IsEmpty()) return 0.0;
  return (hi.x - lo.x) + (hi.y - lo.y) + (hi.z - lo.z);
}

double Rect3::Enlargement(const Rect3& other) const {
  Rect3 combined = *this;
  combined.ExtendRect(other);
  return combined.Volume() - Volume();
}

Rect3 Union(const Rect3& a, const Rect3& b) {
  Rect3 out = a;
  out.ExtendRect(b);
  return out;
}

}  // namespace stratrec::geo
