// 3-D points. ADPaR views each strategy as a point in (cost, inverted
// quality, latency) space where all coordinates are "smaller is better"
// (paper Section 4.1).
#ifndef STRATREC_GEOMETRY_POINT_H_
#define STRATREC_GEOMETRY_POINT_H_

#include <array>
#include <cmath>

namespace stratrec::geo {

/// A point in 3-dimensional Euclidean space.
struct Point3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  double operator[](int axis) const {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }
  double& operator[](int axis) { return axis == 0 ? x : (axis == 1 ? y : z); }

  bool operator==(const Point3& other) const {
    return x == other.x && y == other.y && z == other.z;
  }

  /// Component-wise <=: this point is dominated by (inside the box of) `b`
  /// when every coordinate is at most the corresponding one of `b`.
  bool DominatedBy(const Point3& b) const {
    return x <= b.x && y <= b.y && z <= b.z;
  }

  /// Euclidean distance to `b`.
  double DistanceTo(const Point3& b) const {
    const double dx = x - b.x, dy = y - b.y, dz = z - b.z;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  }

  /// Squared Euclidean distance to `b` (avoids the sqrt for comparisons).
  double SquaredDistanceTo(const Point3& b) const {
    const double dx = x - b.x, dy = y - b.y, dz = z - b.z;
    return dx * dx + dy * dy + dz * dz;
  }
};

inline constexpr int kNumAxes = 3;

}  // namespace stratrec::geo

#endif  // STRATREC_GEOMETRY_POINT_H_
