// Axis-parallel 3-D rectangles (boxes). A deployment request is an
// axis-parallel hyper-rectangle in the normalized parameter space
// (paper Section 4.1); R-tree nodes are minimum bounding boxes.
#ifndef STRATREC_GEOMETRY_RECT_H_
#define STRATREC_GEOMETRY_RECT_H_

#include <limits>

#include "src/geometry/point.h"

namespace stratrec::geo {

/// Closed axis-parallel box [lo, hi] in 3-D.
struct Rect3 {
  Point3 lo;
  Point3 hi;

  /// The "empty" box: inverted infinite bounds; Extend() of anything fixes it.
  static Rect3 Empty() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return Rect3{{inf, inf, inf}, {-inf, -inf, -inf}};
  }

  /// Degenerate box covering exactly one point.
  static Rect3 FromPoint(const Point3& p) { return Rect3{p, p}; }

  bool IsEmpty() const {
    return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z;
  }

  /// True when `p` lies inside (boundary inclusive).
  bool Contains(const Point3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  /// True when `other` is fully inside this box.
  bool ContainsRect(const Rect3& other) const {
    return Contains(other.lo) && Contains(other.hi);
  }

  /// True when the two boxes share at least one point.
  bool Intersects(const Rect3& other) const {
    if (IsEmpty() || other.IsEmpty()) return false;
    return lo.x <= other.hi.x && other.lo.x <= hi.x && lo.y <= other.hi.y &&
           other.lo.y <= hi.y && lo.z <= other.hi.z && other.lo.z <= hi.z;
  }

  /// Grows this box (in place) to cover `p`; returns *this.
  Rect3& Extend(const Point3& p);

  /// Grows this box (in place) to cover `other`; returns *this.
  Rect3& ExtendRect(const Rect3& other);

  /// Volume (0 for degenerate or empty boxes).
  double Volume() const;

  /// Sum of the three side lengths (the R*-tree "margin" heuristic).
  double Margin() const;

  /// Volume increase caused by extending this box to cover `other`.
  double Enlargement(const Rect3& other) const;

  /// The corner with all coordinates maximal ("top-right" in the paper's
  /// Baseline3: returned as the alternative deployment parameters).
  Point3 TopCorner() const { return hi; }
};

/// Smallest box covering both inputs.
Rect3 Union(const Rect3& a, const Rect3& b);

}  // namespace stratrec::geo

#endif  // STRATREC_GEOMETRY_RECT_H_
