// Bounded max-heap that tracks the k smallest values of a stream.
//
// This is the data structure behind both the workforce aggregation
// (Section 3.2: "use min-heaps to retrieve the k smallest numbers") and the
// ADPaR-Exact cost/latency sweep (the k-th smallest latency among admitted
// strategies defines the tight latency threshold).
#ifndef STRATREC_GEOMETRY_K_SMALLEST_H_
#define STRATREC_GEOMETRY_K_SMALLEST_H_

#include <cassert>
#include <cstddef>
#include <queue>
#include <vector>

namespace stratrec::geo {

/// Maintains the k smallest doubles pushed so far in O(log k) per push.
class KSmallestTracker {
 public:
  /// k must be >= 1.
  explicit KSmallestTracker(size_t k) : k_(k) { assert(k >= 1); }

  /// Offers a value; it is retained only if it ranks among the k smallest.
  void Push(double value) {
    if (heap_.size() < k_) {
      heap_.push(value);
      return;
    }
    if (value < heap_.top()) {
      heap_.pop();
      heap_.push(value);
    }
  }

  /// True when at least k values have been offered.
  bool Full() const { return heap_.size() == k_; }

  size_t size() const { return heap_.size(); }

  /// The k-th smallest value seen so far; requires Full().
  double KthSmallest() const {
    assert(Full());
    return heap_.top();
  }

  /// Current maximum among the retained values; requires size() >= 1.
  double LargestRetained() const {
    assert(!heap_.empty());
    return heap_.top();
  }

  /// Returns the retained values in ascending order (non-destructive).
  std::vector<double> SortedValues() const {
    std::priority_queue<double> copy = heap_;
    std::vector<double> out(copy.size());
    for (size_t i = copy.size(); i > 0; --i) {
      out[i - 1] = copy.top();
      copy.pop();
    }
    return out;
  }

 private:
  size_t k_;
  std::priority_queue<double> heap_;  // max-heap of the k smallest
};

}  // namespace stratrec::geo

#endif  // STRATREC_GEOMETRY_K_SMALLEST_H_
