// ShardRouter — one logical catalog partitioned across N in-process
// Service shards, behind the same envelope API as a single Service.
//
// The catalog is split into N contiguous strategy ranges (sizes differing
// by at most one); each range backs its own Service with its own worker
// pool, catalog index, and availability-snapshot cache. A batch or sweep is
// answered by scatter/gather:
//
//   scatter  every shard runs Service::ScanShardAsync at the router-resolved
//            (and quantized) availability W — per-request workforce-row
//            views, the shard's parameter block, and skyline-pruned ADPaR
//            skybands, all in shard-local order,
//   gather   the router k-way-merges the shard results back into global
//            order — rows by (requirement, global index), skybands by
//            (cost, global index) / (quality desc, global index) — runs the
//            selection half of the batch solve (core::SolveBatchAggregated)
//            or the merged-ordering ADPaR funnel
//            (core::AdparExactOverOrderings), and assembles the report.
//
// The merge rules are exactly the tie rules of the unsharded pipeline, and
// every floating-point fold visits values in the same order, so a router
// over {1, 2, 4} shards returns *byte-identical* reports to one unsharded
// Service for the same request trace (property-tested in
// tests/router_property_test.cc). Custom registry batch solvers (anything
// beyond batchstrat / baseline-g / brute-force) cannot be scattered — the
// router keeps one full catalog copy and runs them unsharded, still behind
// the same API.
//
// Admission control for the serving tier: TryAdmit() compares the summed
// executor queue-depth gauges (router + shards) against
// RouterConfig::max_queue_depth; the HTTP front end maps a refusal to
// 429 + Retry-After. The router never journals — point the shard template's
// journal at a path and it is deliberately stripped (N writers would
// clobber one file, and scans are a transport, not a workload record).
//
// Fault tolerance (PR 10): RouterConfig::replicas runs R identical copies
// of every shard's Service. Scatter picks a starting replica per request
// (seeded, deterministic), fails over to the next replica when an attempt
// errors, exceeds replica_timeout_ms, or is killed by the installed
// fault::FaultPlan ("router.shard.<s>.replica.<r>" sites), and optionally
// hedges a straggling first attempt after hedge_after_ms. Replicas hold
// identical state, so any replica's report is THE shard report and the
// byte-identity property is preserved under arbitrary failover (extended
// property test: replicas {1,2,3} x injected failures). Requests whose
// deadline_ms budget expires while queued complete with kDeadlineExceeded
// through the ticket cancel path instead of scattering.
#ifndef STRATREC_ROUTER_SHARD_ROUTER_H_
#define STRATREC_ROUTER_SHARD_ROUTER_H_

#include <memory>
#include <string>

#include "src/api/config.h"
#include "src/api/envelope.h"
#include "src/api/service.h"
#include "src/api/ticket.h"

namespace stratrec::router {

namespace internal {
struct RouterState;
}  // namespace internal

/// Configuration of one ShardRouter.
struct RouterConfig {
  /// Shard count; Create fails when it exceeds the catalog size (every
  /// shard needs at least one strategy).
  size_t shards = 2;
  /// Copies of each shard's Service. Replicas are built from the identical
  /// catalog slice and config, so any replica's scan report *is* the
  /// shard's report — failover and hedging cannot perturb byte-identity.
  /// Scatter picks a starting replica per request deterministically (seeded
  /// by `replica_seed` and a router-local sequence number) and fails over
  /// to the next replica on error, injected fault, or timeout. 1 (the
  /// default) reproduces the unreplicated router exactly.
  size_t replicas = 1;
  /// Seed of the deterministic replica picks; two routers with the same
  /// seed route the same request sequence to the same replicas.
  uint64_t replica_seed = 0;
  /// Per-attempt timeout in ms on one replica's scan before failing over to
  /// the next replica (the abandoned scan still completes on its shard pool;
  /// its result is dropped). 0 = wait forever, so a dead-slow replica can
  /// only be routed around via fault injection or hedging.
  double replica_timeout_ms = 0.0;
  /// Hedging: when > 0 (and replicas > 1), a first attempt still pending
  /// after this many ms gets a duplicate scan on the next replica, and the
  /// shard takes whichever finishes first (stats().hedges_won counts hedge
  /// wins). 0 disables hedging.
  double hedge_after_ms = 0.0;
  /// Template for the shard services *and* the router's own request
  /// handling: `batch` defaults, the default `availability` spec, and the
  /// cache quantum apply on the router (resolution happens exactly once,
  /// like the unsharded path); `execution` and `cache` size every shard.
  /// The journal block is stripped from shards — see the file comment.
  api::ServiceConfig service;
  /// Worker threads of the router's gather pool (the pool tickets run on
  /// and the ADPaR fan-out partitions across); 0 = hardware concurrency.
  size_t router_threads = 0;
  /// Admission ceiling: TryAdmit() refuses when the summed queue-depth
  /// gauges (router + shards) reach this. 0 = admit everything.
  size_t max_queue_depth = 0;
};

/// The sharded counterpart of api::Service. Value-semantic handle over
/// shared state; copies address the same router, every method is
/// thread-safe.
class ShardRouter {
 public:
  /// Validates the config, partitions the catalog, and spins up the shard
  /// services plus the router pool.
  static Result<ShardRouter> Create(core::Catalog catalog,
                                    RouterConfig config = {});

  /// Batch mode: scatter/gather over the shards, same envelope and ticket
  /// semantics as Service::SubmitBatchAsync, byte-identical reports.
  api::Ticket<api::BatchReport> SubmitBatchAsync(
      api::BatchRequest request) const;
  /// Sweep mode: every target x every named adpar backend at one W over the
  /// merged catalog view.
  api::Ticket<api::SweepReport> RunSweepAsync(api::SweepRequest request) const;

  /// Synchronous wrappers, mirroring Service.
  Result<api::BatchReport> SubmitBatch(api::BatchRequest request) const;
  Result<api::SweepReport> RunSweep(api::SweepRequest request) const;

  /// Named availability models resolve on the router (shards never resolve
  /// — they receive W verbatim), so registration is router-local.
  Status RegisterAvailabilityModel(std::string name,
                                   core::AvailabilityModel model) const;

  /// Admission probe for the serving tier: true admits one request; false
  /// means the summed queue gauges reached `max_queue_depth` (the refusal
  /// is counted in stats().rejected_requests).
  bool TryAdmit() const;
  /// Counts one Retry-After back-off hint handed to a rejected client
  /// (stats().retry_after_hints); the HTTP layer calls this when it
  /// attaches the header.
  void NoteRetryAfterHint() const;

  size_t shards() const;
  /// Replicas per shard (RouterConfig::replicas after validation).
  size_t replicas() const;
  const RouterConfig& config() const;
  /// Router-level counters (batches/sweeps/requests_processed/cancelled,
  /// the admission pair, and the fault-tolerance counters
  /// deadline_exceeded/failovers/hedges_won) plus the shard gauges,
  /// cache/steal counters, and stream/snapshot counters summed across every
  /// shard replica and the router pool.
  api::ServiceStats stats() const;

 private:
  explicit ShardRouter(std::shared_ptr<internal::RouterState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::RouterState> state_;
};

}  // namespace stratrec::router

namespace stratrec {
using router::RouterConfig;
using router::ShardRouter;
}  // namespace stratrec

#endif  // STRATREC_ROUTER_SHARD_ROUTER_H_
