#include "src/router/shard_router.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/api/registry.h"
#include "src/common/executor.h"
#include "src/common/fault.h"
#include "src/core/adpar.h"
#include "src/core/kernels/kernels.h"

namespace stratrec::router {

namespace internal {

/// Shared state behind every ShardRouter handle. The gather pool is
/// declared last on purpose: its destructor drains still-queued tickets
/// while the shard services (which those tickets scatter onto) are alive.
struct RouterState {
  RouterConfig config;
  /// Full profile list, for registry batch solvers the router cannot
  /// scatter (anything beyond the three built-in algorithms).
  std::vector<core::StrategyProfile> full_profiles;
  /// offsets[s] = global index of shard s's first strategy; offsets[N] =
  /// catalog size. Shard-local index j on shard s is global offsets[s] + j.
  std::vector<size_t> offsets;
  /// shards[s][r] = replica r of shard s. Replicas of one shard are built
  /// from the identical catalog slice and config; any replica's scan report
  /// is the shard's report.
  std::vector<std::vector<api::Service>> shards;

  std::atomic<uint64_t> next_id{1};
  mutable std::shared_mutex models_mutex;  ///< guards `models`
  std::unordered_map<std::string, core::AvailabilityModel> models;

  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> sweeps{0};
  std::atomic<uint64_t> requests_processed{0};
  std::atomic<uint64_t> cancelled{0};
  std::atomic<uint64_t> rejected_requests{0};
  std::atomic<uint64_t> retry_after_hints{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> failovers{0};
  std::atomic<uint64_t> hedges_won{0};
  /// Scatter sequence number feeding the deterministic replica picks.
  std::atomic<uint64_t> scatter_seq{0};

  Executor executor;

  RouterState(RouterConfig config_in,
              std::vector<core::StrategyProfile> full_profiles_in,
              std::vector<size_t> offsets_in,
              std::vector<std::vector<api::Service>> shards_in)
      : config(std::move(config_in)),
        full_profiles(std::move(full_profiles_in)),
        offsets(std::move(offsets_in)),
        shards(std::move(shards_in)),
        executor(config.router_threads) {}

  std::string NextId(const char* prefix) {
    const uint64_t id = next_id.fetch_add(1, std::memory_order_relaxed);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%s-%06llu", prefix,
                  static_cast<unsigned long long>(id));
    return buffer;
  }

  /// Mirrors ServiceState::Resolve: resolution happens once, on the router.
  Result<double> Resolve(const api::AvailabilitySpec& spec) const {
    std::shared_lock<std::shared_mutex> lock(models_mutex);
    double fallback = 0.5;
    if (config.service.availability.kind !=
            api::AvailabilitySpec::Kind::kDefault &&
        spec.kind == api::AvailabilitySpec::Kind::kDefault) {
      auto configured =
          api::ResolveAvailability(config.service.availability, models, 0.5);
      if (!configured.ok()) return configured.status();
      fallback = *configured;
    }
    return api::ResolveAvailability(spec, models, fallback);
  }
};

namespace {

/// Same grid snap the Service applies (service.cc); duplicated because the
/// router quantizes before scattering, so every shard sees the exact W the
/// unsharded pipeline would have run at.
double QuantizeAvailability(double w, double quantum) {
  if (quantum <= 0.0) return w;
  const double snapped = std::round(w / quantum) * quantum;
  return snapped < 0.0 ? 0.0 : (snapped > 1.0 ? 1.0 : snapped);
}

/// Exception guard of the gather job bodies (same contract as the Service
/// worker wrapper: a throwing registry solver must not take down the pool).
template <typename Fn>
auto GuardJob(Fn&& body) -> decltype(body()) {
  try {
    return body();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("job threw: ") + e.what());
  } catch (...) {
    return Status::Internal("job threw a non-std exception");
  }
}

/// Whether a request's relative deadline_ms budget ran out between
/// submission and the moment a worker claimed its ticket (twin of the
/// Service-side check in service.cc). 0 = no deadline.
bool DeadlineExpired(double deadline_ms,
                     std::chrono::steady_clock::time_point submitted) {
  if (deadline_ms <= 0.0) return false;
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - submitted)
                                .count();
  return elapsed_ms > deadline_ms;
}

Status ExpiredStatus(const std::string& id) {
  return Status::DeadlineExceeded("ticket " + id +
                                  " deadline expired before execution");
}

/// The three algorithms whose solve can run over merged row aggregates.
/// Registry names beyond these (e.g. "weighted", user registrations) take
/// the unsharded fallback over the router's full profile copy.
std::optional<core::BatchAlgorithm> BuiltinAlgorithm(const std::string& name) {
  if (name == "batchstrat") return core::BatchAlgorithm::kBatchStrat;
  if (name == "baseline-g") return core::BatchAlgorithm::kBaselineG;
  if (name == "brute-force") return core::BatchAlgorithm::kBruteForce;
  return std::nullopt;
}

/// SplitMix64 whitening for the deterministic replica picks (local copy —
/// the fault layer and sim keep their own so the schedules cannot couple).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The starting replica of shard `s` for scatter number `sequence`: a pure
/// function of (replica_seed, sequence, shard), so two routers with the
/// same seed spread the same request sequence identically.
size_t PickReplica(const RouterState* state, uint64_t sequence, size_t s) {
  const size_t n = state->config.replicas;
  if (n <= 1) return 0;
  return static_cast<size_t>(
      SplitMix64(state->config.replica_seed ^ SplitMix64(sequence) ^
                 (0x517cc1b727220a95ull * (s + 1))) %
      n);
}

/// Whether the installed fault plan kills this dispatch. The per-replica
/// site ("router.shard.<s>.replica.<r>") wins over the generic
/// "router.replica" site when both are registered.
bool ReplicaKilled(size_t s, size_t r) {
  auto plan = fault::GlobalFaultPlan();
  if (plan == nullptr) return false;
  const std::string site = fault::ReplicaSiteName(s, r);
  if (plan->HasSite(site)) return plan->Visit(site).inject;
  if (plan->HasSite(fault::kSiteRouterReplica)) {
    return plan->Visit(fault::kSiteRouterReplica).inject;
  }
  return false;
}

/// Deterministic outcome of an injected replica failure. The "[injected]"
/// tag is the classifier the chaos bench uses to separate scheduled faults
/// from real ones (a non-injected 5xx fails the bench).
Status InjectedFailure(size_t s, size_t r) {
  return Status::Internal("[injected] shard " + std::to_string(s) +
                          " replica " + std::to_string(r) + " failed");
}

using ScanTicket = api::Ticket<api::ShardScanReport>;

/// Resolves one shard's report from `primary` (nullopt when the dispatch
/// was killed), failing over through the remaining replicas on error,
/// injected fault, or replica_timeout_ms, and hedging the first live
/// attempt after hedge_after_ms. Runs on a router pool worker; abandoned
/// attempts still complete on their shard pools and are dropped.
Result<api::ShardScanReport> GatherShard(RouterState* state, size_t s,
                                         size_t first_replica,
                                         std::optional<ScanTicket> primary,
                                         const api::ShardScanRequest& scan) {
  using Clock = std::chrono::steady_clock;
  using Ms = std::chrono::duration<double, std::milli>;
  const std::vector<api::Service>& replicas = state->shards[s];
  const size_t n = replicas.size();
  const double timeout_ms = state->config.replica_timeout_ms;
  const double hedge_ms = state->config.hedge_after_ms;

  Status last = Status::Internal("shard " + std::to_string(s) +
                                 ": every replica attempt failed");
  for (size_t attempt = 0; attempt < n; ++attempt) {
    const size_t r = (first_replica + attempt) % n;
    if (attempt > 0) state->failovers.fetch_add(1, std::memory_order_relaxed);
    std::optional<ScanTicket> ticket;
    if (attempt == 0) {
      ticket = std::move(primary);
    } else if (!ReplicaKilled(s, r)) {
      ticket = replicas[r].ScanShardAsync(scan);
    }
    if (!ticket.has_value()) {
      last = InjectedFailure(s, r);
      continue;
    }

    std::optional<Result<api::ShardScanReport>> outcome;
    if (attempt == 0 && hedge_ms > 0.0 && n > 1) {
      // Hedge a straggling first attempt: give the primary hedge_ms, then
      // race a duplicate on the next replica and take the first finisher.
      outcome = ticket->WaitFor(Ms(hedge_ms));
      if (!outcome.has_value()) {
        const size_t hr = (r + 1) % n;
        std::optional<ScanTicket> hedge;
        if (!ReplicaKilled(s, hr)) hedge = replicas[hr].ScanShardAsync(scan);
        const Clock::time_point hedged_at = Clock::now();
        while (!outcome.has_value()) {
          outcome = ticket->WaitFor(Ms(0.5));
          if (outcome.has_value()) break;
          if (hedge.has_value()) {
            outcome = hedge->WaitFor(Ms(0.5));
            if (outcome.has_value()) {
              state->hedges_won.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
          if (timeout_ms > 0.0 &&
              Ms(Clock::now() - hedged_at).count() > timeout_ms) {
            break;  // both the primary and its hedge are stuck: fail over
          }
        }
      }
    } else if (timeout_ms > 0.0) {
      outcome = ticket->WaitFor(Ms(timeout_ms));
    } else {
      outcome = ticket->Wait();
    }

    if (!outcome.has_value()) {
      last = Status::Internal("shard " + std::to_string(s) + " replica " +
                              std::to_string(r) + " timed out");
      continue;
    }
    if (outcome->ok()) return std::move(*outcome);
    last = outcome->status();
  }
  return last;
}

/// Fans one scan out to every shard (one starting replica each, picked
/// deterministically) and collects the reports in shard order, failing over
/// per shard as needed. Runs on a router pool worker; shard pools never
/// wait on router jobs, so blocking here cannot deadlock.
Result<std::vector<api::ShardScanReport>> Scatter(
    RouterState* state, const api::ShardScanRequest& scan) {
  const size_t n_shards = state->shards.size();
  const uint64_t sequence =
      state->scatter_seq.fetch_add(1, std::memory_order_relaxed);
  // Dispatch phase: one primary attempt per shard, so all shards work
  // concurrently before any gather blocks.
  std::vector<size_t> first(n_shards, 0);
  std::vector<std::optional<ScanTicket>> primaries(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    first[s] = PickReplica(state, sequence, s);
    if (!ReplicaKilled(s, first[s])) {
      primaries[s] = state->shards[s][first[s]].ScanShardAsync(scan);
    }
  }
  std::vector<api::ShardScanReport> reports;
  reports.reserve(n_shards);
  Status failed = Status::OK();
  for (size_t s = 0; s < n_shards; ++s) {
    // Gather every shard even after a failure, draining the fan-out.
    auto report =
        GatherShard(state, s, first[s], std::move(primaries[s]), scan);
    if (!report.ok()) {
      if (failed.ok()) failed = report.status();
      continue;
    }
    reports.push_back(std::move(*report));
  }
  if (!failed.ok()) return failed;
  return reports;
}

/// Merges one request's per-shard row views into the unsharded
/// AggregatedRequest: eligible iff the summed feasible counts reach k, the
/// k-best list k-way-merged by (requirement, global index), and the
/// requirement folded over exactly that order — bit-identical to
/// WorkforceMatrix::KBestStrategies + AggregateRequirement on the whole
/// catalog, because the global k-best is contained in the union of
/// per-shard k-bests and every shard list is already in merge order.
core::AggregatedRequest MergeRow(const std::vector<api::ShardScanReport>& scans,
                                 const std::vector<size_t>& offsets, size_t i,
                                 int k, core::AggregationMode mode) {
  core::AggregatedRequest row;
  if (k < 1) return row;  // rejected by ValidateRequest before any read
  size_t feasible = 0;
  for (const api::ShardScanReport& scan : scans) {
    feasible += scan.rows[i].feasible_count;
  }
  if (feasible < static_cast<size_t>(k)) return row;
  row.eligible = true;
  row.strategies.reserve(static_cast<size_t>(k));
  std::vector<size_t> cursor(scans.size(), 0);
  double last = 0.0;
  for (int taken = 0; taken < k; ++taken) {
    size_t best = scans.size();
    for (size_t s = 0; s < scans.size(); ++s) {
      const api::ShardRequestScan& r = scans[s].rows[i];
      if (cursor[s] >= r.strategies.size()) continue;
      if (best == scans.size()) {
        best = s;
        continue;
      }
      const api::ShardRequestScan& b = scans[best].rows[i];
      const double wa = r.requirements[cursor[s]];
      const double wb = b.requirements[cursor[best]];
      const size_t ga = offsets[s] + r.strategies[cursor[s]];
      const size_t gb = offsets[best] + b.strategies[cursor[best]];
      if (wa < wb || (wa == wb && ga < gb)) best = s;
    }
    // `best` is always valid: the union of per-shard top-k lists holds at
    // least min(k, total feasible) entries.
    const api::ShardRequestScan& r = scans[best].rows[i];
    const double requirement = r.requirements[cursor[best]];
    row.strategies.push_back(offsets[best] + r.strategies[cursor[best]]);
    if (mode == core::AggregationMode::kSum) row.requirement += requirement;
    last = requirement;
    ++cursor[best];
  }
  if (mode == core::AggregationMode::kMax) row.requirement = last;
  return row;
}

/// Concatenates the per-shard parameter blocks in shard order — the global
/// index-aligned block, bit-identical to the unsharded snapshot's.
std::vector<core::ParamVector> MergeParams(
    const std::vector<api::ShardScanReport>& scans) {
  size_t total = 0;
  for (const api::ShardScanReport& scan : scans) total += scan.params.size();
  std::vector<core::ParamVector> params;
  params.reserve(total);
  for (const api::ShardScanReport& scan : scans) {
    params.insert(params.end(), scan.params.begin(), scan.params.end());
  }
  return params;
}

/// K-way merge of per-shard skyband orderings into one global ordering with
/// the single-shard tie rules: ascending (cost, global index) or descending
/// quality with ascending-index ties. Every surviving strategy has >= k
/// dominators confined to its own shard, hence >= k global dominators — the
/// same soundness condition AvailabilitySnapshot::PrunedFor relies on — so
/// AdparExactOverOrderings returns the identical result over the merge.
std::vector<size_t> MergeOrdering(const std::vector<api::ShardScanReport>& scans,
                                  const std::vector<size_t>& offsets,
                                  size_t band, bool by_cost,
                                  const std::vector<core::ParamVector>& params) {
  std::vector<size_t> cursor(scans.size(), 0);
  size_t total = 0;
  for (const api::ShardScanReport& scan : scans) {
    total += by_cost ? scan.skybands[band].by_cost.size()
                     : scan.skybands[band].by_quality_desc.size();
  }
  std::vector<size_t> merged;
  merged.reserve(total);
  while (merged.size() < total) {
    size_t best = scans.size();
    size_t best_global = 0;
    for (size_t s = 0; s < scans.size(); ++s) {
      const api::ShardSkyband& skyband = scans[s].skybands[band];
      const std::vector<size_t>& order =
          by_cost ? skyband.by_cost : skyband.by_quality_desc;
      if (cursor[s] >= order.size()) continue;
      const size_t global = offsets[s] + order[cursor[s]];
      if (best == scans.size()) {
        best = s;
        best_global = global;
        continue;
      }
      bool wins;
      if (by_cost) {
        const double ca = params[global].cost;
        const double cb = params[best_global].cost;
        wins = ca < cb || (ca == cb && global < best_global);
      } else {
        const double qa = params[global].quality;
        const double qb = params[best_global].quality;
        wins = qa > qb || (qa == qb && global < best_global);
      }
      if (wins) {
        best = s;
        best_global = global;
      }
    }
    merged.push_back(best_global);
    ++cursor[best];
  }
  return merged;
}

/// Distinct cardinalities (ascending) among `indices`' requests; only valid
/// (k >= 1) cardinalities qualify for a skyband.
std::vector<int> DistinctKs(const std::vector<core::DeploymentRequest>& requests,
                            const std::vector<size_t>& indices) {
  std::vector<int> ks;
  for (size_t index : indices) {
    if (requests[index].k >= 1) ks.push_back(requests[index].k);
  }
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  return ks;
}

/// Merged per-k orderings, indexed by the position of k in the scan's
/// skyband_ks list.
struct MergedSkyband {
  int k = 0;
  std::vector<size_t> by_cost;
  std::vector<size_t> by_quality_desc;
};

std::vector<MergedSkyband> MergeSkybands(
    const std::vector<api::ShardScanReport>& scans,
    const std::vector<size_t>& offsets, const std::vector<int>& ks,
    const std::vector<core::ParamVector>& params) {
  std::vector<MergedSkyband> bands;
  bands.reserve(ks.size());
  for (size_t b = 0; b < ks.size(); ++b) {
    MergedSkyband band;
    band.k = ks[b];
    band.by_cost = MergeOrdering(scans, offsets, b, /*by_cost=*/true, params);
    band.by_quality_desc =
        MergeOrdering(scans, offsets, b, /*by_cost=*/false, params);
    bands.push_back(std::move(band));
  }
  return bands;
}

const MergedSkyband* FindSkyband(const std::vector<MergedSkyband>& bands,
                                 int k) {
  for (const MergedSkyband& band : bands) {
    if (band.k == k) return &band;
  }
  return nullptr;
}

/// The routed batch pipeline: the gather counterpart of
/// internal::ExecuteBatch in service.cc — same resolution order, same
/// failure taxonomy, byte-identical reports.
Result<api::BatchReport> ExecuteRoutedBatch(RouterState* state,
                                            const api::BatchRequest& request,
                                            const std::string& id) {
  const api::BatchDefaults& defaults = state->config.service.batch;
  const std::string algorithm = request.algorithm.value_or(defaults.algorithm);
  auto solver = api::AlgorithmRegistry::Global().FindBatch(algorithm);
  if (!solver.ok()) return solver.status();
  auto availability = state->Resolve(request.availability);
  if (!availability.ok()) return availability.status();
  const double w = QuantizeAvailability(
      *availability, state->config.service.cache.availability_quantum);

  core::BatchOptions options;
  options.objective = request.objective.value_or(defaults.objective);
  options.aggregation = request.aggregation.value_or(defaults.aggregation);
  options.policy = request.policy.value_or(defaults.policy);
  options.executor = &state->executor;
  options.parallel_grain = state->config.service.execution.parallel_grain;

  const bool alternatives =
      request.recommend_alternatives.value_or(defaults.recommend_alternatives);
  core::AdparSolverFn adpar_fn;
  std::string adpar_name;
  if (alternatives) {
    // Resolved before any scatter, so a typo'd name fails fast without
    // touching a shard — the ordering the unsharded path guarantees.
    adpar_name = request.adpar_solver.value_or(defaults.adpar_solver);
    auto adpar = api::AlgorithmRegistry::Global().FindAdpar(adpar_name);
    if (!adpar.ok()) return adpar.status();
    if (adpar_name != "exact") adpar_fn = std::move(*adpar);
  }
  if (w < 0.0 || w > 1.0) {
    // Aggregator::RunAtAvailability's check, hoisted before the scatter.
    return Status::InvalidArgument("availability must lie in [0, 1]");
  }

  // Batch solve: built-in algorithms scatter row scans and run the shared
  // selection funnel over the merged aggregates; anything else (a custom
  // registry solver) runs unsharded over the full profile copy.
  core::BatchResult batch;
  const std::optional<core::BatchAlgorithm> builtin =
      BuiltinAlgorithm(algorithm);
  if (builtin.has_value()) {
    std::vector<core::AggregatedRequest> aggregated(request.requests.size());
    if (!request.requests.empty()) {
      api::ShardScanRequest scan;
      scan.requests = request.requests;
      scan.availability = w;
      scan.policy = options.policy;
      scan.want_params = false;
      auto scans = Scatter(state, scan);
      if (!scans.ok()) return scans.status();
      for (size_t i = 0; i < request.requests.size(); ++i) {
        aggregated[i] = MergeRow(*scans, state->offsets, i,
                                 request.requests[i].k, options.aggregation);
      }
    }
    auto solved = core::SolveBatchAggregated(request.requests, aggregated, w,
                                             options, *builtin);
    if (!solved.ok()) return solved.status();
    batch = std::move(*solved);
  } else {
    auto solved = (*solver)(request.requests, state->full_profiles, w, options);
    if (!solved.ok()) return solved.status();
    batch = std::move(*solved);
  }

  api::BatchReport report;
  report.request_id = id;
  report.algorithm = algorithm;
  report.availability = w;
  report.result.aggregator.availability = w;

  if (alternatives) {
    // The alternatives leg reads per-W parameters (and, for the built-in
    // exact solver, skybands for every unsatisfied cardinality); one more
    // scatter fetches both. Like the unsharded path, the parameter block is
    // materialized even when nothing ended up unsatisfied.
    api::ShardScanRequest scan;
    scan.availability = w;
    std::vector<int> ks;
    if (adpar_name == "exact") {
      ks = DistinctKs(request.requests, batch.unsatisfied);
      scan.skyband_ks = ks;
    }
    auto scans = Scatter(state, scan);
    if (!scans.ok()) return scans.status();
    std::vector<core::ParamVector> params = MergeParams(*scans);
    const std::vector<MergedSkyband> bands =
        MergeSkybands(*scans, state->offsets, ks, params);

    const std::vector<size_t>& unsatisfied = batch.unsatisfied;
    std::vector<Result<core::AdparResult>> solved(
        unsatisfied.size(),
        Result<core::AdparResult>(Status::Internal("unset")));
    state->executor.ParallelFor(
        unsatisfied.size(), /*grain=*/1, [&](size_t begin, size_t end) {
          for (size_t u = begin; u < end; ++u) {
            const core::DeploymentRequest& target =
                request.requests[unsatisfied[u]];
            if (adpar_fn) {
              solved[u] = adpar_fn(params, target.thresholds, target.k);
            } else {
              const MergedSkyband* band = FindSkyband(bands, target.k);
              // Unsatisfied requests passed ValidateRequest, so a band
              // exists for every one of them.
              solved[u] = core::AdparExactOverOrderings(
                  params, band->by_cost, band->by_quality_desc,
                  target.thresholds, target.k);
            }
          }
        });
    for (size_t u = 0; u < unsatisfied.size(); ++u) {
      if (solved[u].ok()) {
        report.result.alternatives.push_back(core::AlternativeRecommendation{
            unsatisfied[u], std::move(*solved[u])});
      } else {
        report.result.adpar_failures.push_back(unsatisfied[u]);
      }
    }
    report.result.aggregator.strategy_params = std::move(params);
  }
  report.result.aggregator.batch = std::move(batch);

  state->batches.fetch_add(1, std::memory_order_relaxed);
  state->requests_processed.fetch_add(request.requests.size(),
                                      std::memory_order_relaxed);
  return report;
}

/// The routed sweep: internal::ExecuteSweep over the merged catalog view.
Result<api::SweepReport> ExecuteRoutedSweep(RouterState* state,
                                            const api::SweepRequest& request,
                                            const std::string& id) {
  auto availability = state->Resolve(request.availability);
  if (!availability.ok()) return availability.status();
  const double w = QuantizeAvailability(
      *availability, state->config.service.cache.availability_quantum);

  std::vector<std::string> solvers = request.solvers;
  if (solvers.empty()) {
    solvers.push_back(state->config.service.batch.adpar_solver);
  }
  // Validate every name before the scatter (same fail-fast contract as the
  // unsharded sweep); a null slot marks the built-in exact solver, served
  // from the merged skybands below.
  std::vector<core::AdparSolverFn> solver_fns;
  solver_fns.reserve(solvers.size());
  bool any_exact = false;
  for (const std::string& name : solvers) {
    if (name == "exact") {
      solver_fns.emplace_back();
      any_exact = true;
      continue;
    }
    auto solver = api::AlgorithmRegistry::Global().FindAdpar(name);
    if (!solver.ok()) return solver.status();
    solver_fns.push_back(std::move(*solver));
  }

  api::ShardScanRequest scan;
  scan.availability = w;
  std::vector<int> ks;
  if (any_exact) {
    std::vector<size_t> all(request.targets.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    ks = DistinctKs(request.targets, all);
    scan.skyband_ks = ks;
  }
  auto scans = Scatter(state, scan);
  if (!scans.ok()) return scans.status();

  api::SweepReport report;
  report.request_id = id;
  report.availability = w;
  report.strategy_params = MergeParams(*scans);
  const std::vector<MergedSkyband> bands =
      MergeSkybands(*scans, state->offsets, ks, report.strategy_params);

  report.outcomes.resize(request.targets.size() * solvers.size());
  state->executor.ParallelFor(
      report.outcomes.size(), /*grain=*/1, [&](size_t begin, size_t end) {
        for (size_t cell = begin; cell < end; ++cell) {
          const size_t i = cell / solvers.size();
          const size_t s = cell % solvers.size();
          const core::DeploymentRequest& target = request.targets[i];
          api::SweepOutcome& outcome = report.outcomes[cell];
          outcome.target_id =
              target.id.empty() ? "target-" + std::to_string(i) : target.id;
          outcome.solver = solvers[s];
          Result<core::AdparResult> solved = Status::Internal("unset");
          if (solver_fns[s]) {
            solved = solver_fns[s](report.strategy_params, target.thresholds,
                                   target.k);
          } else {
            // Invalid cardinalities carry no band; the funnel's own k < 1 /
            // |S| < k checks fire before the orderings are touched, so the
            // empty lists are never read.
            static const std::vector<size_t> kEmpty;
            const MergedSkyband* band = FindSkyband(bands, target.k);
            solved = core::AdparExactOverOrderings(
                report.strategy_params, band != nullptr ? band->by_cost : kEmpty,
                band != nullptr ? band->by_quality_desc : kEmpty,
                target.thresholds, target.k);
          }
          if (solved.ok()) {
            outcome.result = std::move(*solved);
          } else {
            outcome.status = solved.status();
          }
        }
      });
  state->sweeps.fetch_add(1, std::memory_order_relaxed);
  return report;
}

}  // namespace

}  // namespace internal

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

Result<ShardRouter> ShardRouter::Create(core::Catalog catalog,
                                        RouterConfig config) {
  if (config.shards < 1) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  if (config.replicas < 1) {
    return Status::InvalidArgument(
        "router needs at least one replica per shard");
  }
  if (catalog.strategies.size() != catalog.profiles.size()) {
    return Status::InvalidArgument(
        "strategy and profile lists must be index-aligned");
  }
  if (catalog.strategies.size() < config.shards) {
    return Status::InvalidArgument(
        "more shards than strategies (every shard needs at least one)");
  }
  STRATREC_RETURN_NOT_OK(api::ValidateConfig(config.service));

  // Contiguous ranges with sizes differing by at most one.
  const size_t total = catalog.strategies.size();
  const size_t base = total / config.shards;
  const size_t remainder = total % config.shards;
  std::vector<size_t> offsets(config.shards + 1, 0);
  for (size_t s = 0; s < config.shards; ++s) {
    offsets[s + 1] = offsets[s] + base + (s < remainder ? 1 : 0);
  }

  api::ServiceConfig shard_config = config.service;
  shard_config.journal = api::JournalConfig{};  // see the header comment
  std::vector<std::vector<api::Service>> shards;
  shards.reserve(config.shards);
  for (size_t s = 0; s < config.shards; ++s) {
    std::vector<api::Service> replicas;
    replicas.reserve(config.replicas);
    for (size_t r = 0; r < config.replicas; ++r) {
      core::Catalog slice;
      slice.strategies.assign(catalog.strategies.begin() + offsets[s],
                              catalog.strategies.begin() + offsets[s + 1]);
      slice.profiles.assign(catalog.profiles.begin() + offsets[s],
                            catalog.profiles.begin() + offsets[s + 1]);
      auto replica = api::Service::Create(std::move(slice), shard_config);
      if (!replica.ok()) return replica.status();
      replicas.push_back(std::move(*replica));
    }
    shards.push_back(std::move(replicas));
  }

  return ShardRouter(std::make_shared<internal::RouterState>(
      std::move(config), std::move(catalog.profiles), std::move(offsets),
      std::move(shards)));
}

api::Ticket<api::BatchReport> ShardRouter::SubmitBatchAsync(
    api::BatchRequest request) const {
  auto shared = std::make_shared<api::internal::TicketShared<api::BatchReport>>(
      request.request_id.empty() ? state_->NextId("batch")
                                 : request.request_id);
  internal::RouterState* state = state_.get();
  const auto submitted = std::chrono::steady_clock::now();
  state_->executor.Submit(
      [state, shared, submitted, request = std::move(request)]() mutable {
        if (!shared->BeginRun()) {
          state->cancelled.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Counter before Finish, so stats read after Wait() see it.
        if (internal::DeadlineExpired(request.deadline_ms, submitted)) {
          state->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
          shared->Finish(internal::ExpiredStatus(shared->id));
          return;
        }
        auto outcome = internal::GuardJob([&]() {
          return internal::ExecuteRoutedBatch(state, request, shared->id);
        });
        shared->Finish(std::move(outcome));
      });
  return api::internal::MakeTicket(std::move(shared));
}

api::Ticket<api::SweepReport> ShardRouter::RunSweepAsync(
    api::SweepRequest request) const {
  auto shared = std::make_shared<api::internal::TicketShared<api::SweepReport>>(
      request.request_id.empty() ? state_->NextId("sweep")
                                 : request.request_id);
  internal::RouterState* state = state_.get();
  const auto submitted = std::chrono::steady_clock::now();
  state_->executor.Submit(
      [state, shared, submitted, request = std::move(request)]() mutable {
        if (!shared->BeginRun()) {
          state->cancelled.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (internal::DeadlineExpired(request.deadline_ms, submitted)) {
          state->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
          shared->Finish(internal::ExpiredStatus(shared->id));
          return;
        }
        auto outcome = internal::GuardJob([&]() {
          return internal::ExecuteRoutedSweep(state, request, shared->id);
        });
        shared->Finish(std::move(outcome));
      });
  return api::internal::MakeTicket(std::move(shared));
}

Result<api::BatchReport> ShardRouter::SubmitBatch(
    api::BatchRequest request) const {
  return SubmitBatchAsync(std::move(request)).Wait();
}

Result<api::SweepReport> ShardRouter::RunSweep(api::SweepRequest request) const {
  return RunSweepAsync(std::move(request)).Wait();
}

Status ShardRouter::RegisterAvailabilityModel(
    std::string name, core::AvailabilityModel model) const {
  if (name.empty()) {
    return Status::InvalidArgument("availability model name is empty");
  }
  std::unique_lock<std::shared_mutex> lock(state_->models_mutex);
  if (!state_->models.emplace(std::move(name), std::move(model)).second) {
    return Status::FailedPrecondition(
        "availability model name is already registered");
  }
  return Status::OK();
}

bool ShardRouter::TryAdmit() const {
  if (state_->config.max_queue_depth == 0) return true;
  size_t depth = state_->executor.QueueDepth();
  for (const std::vector<api::Service>& replicas : state_->shards) {
    for (const api::Service& replica : replicas) {
      depth += replica.stats().queue_depth;
    }
  }
  if (depth < state_->config.max_queue_depth) return true;
  state_->rejected_requests.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ShardRouter::NoteRetryAfterHint() const {
  state_->retry_after_hints.fetch_add(1, std::memory_order_relaxed);
}

size_t ShardRouter::shards() const { return state_->shards.size(); }

size_t ShardRouter::replicas() const { return state_->config.replicas; }

const RouterConfig& ShardRouter::config() const { return state_->config; }

api::ServiceStats ShardRouter::stats() const {
  api::ServiceStats out;
  out.batches = state_->batches.load(std::memory_order_relaxed);
  out.sweeps = state_->sweeps.load(std::memory_order_relaxed);
  out.requests_processed =
      state_->requests_processed.load(std::memory_order_relaxed);
  out.cancelled = state_->cancelled.load(std::memory_order_relaxed);
  out.rejected_requests =
      state_->rejected_requests.load(std::memory_order_relaxed);
  out.retry_after_hints =
      state_->retry_after_hints.load(std::memory_order_relaxed);
  out.deadline_exceeded =
      state_->deadline_exceeded.load(std::memory_order_relaxed);
  out.failovers = state_->failovers.load(std::memory_order_relaxed);
  out.hedges_won = state_->hedges_won.load(std::memory_order_relaxed);
  out.queue_depth = state_->executor.QueueDepth();
  out.active_workers = state_->executor.ActiveWorkers();
  out.steals = static_cast<size_t>(state_->executor.StealCount());
  out.local_hits = static_cast<size_t>(state_->executor.LocalHitCount());
  for (const std::vector<api::Service>& replicas : state_->shards) {
    for (const api::Service& replica : replicas) {
      const api::ServiceStats s = replica.stats();
      out.streams_opened += s.streams_opened;
      out.stream_events += s.stream_events;
      out.stream_reschedules += s.stream_reschedules;
      out.snapshot_delta_updates += s.snapshot_delta_updates;
      out.snapshot_rebuilds += s.snapshot_rebuilds;
      out.deadline_exceeded += s.deadline_exceeded;
      out.queue_depth += s.queue_depth;
      out.active_workers += s.active_workers;
      out.steals += s.steals;
      out.local_hits += s.local_hits;
      out.cache_hits += s.cache_hits;
      out.cache_misses += s.cache_misses;
      out.index_build_nanos += s.index_build_nanos;
    }
  }
  // All shards run in-process, so the router reports the process-wide level.
  out.kernel_dispatch =
      core::kernels::DispatchLevelName(core::kernels::ActiveDispatchLevel());
  return out;
}

}  // namespace stratrec::router
