// The discrete-event substrate of the platform simulator: a virtual clock
// with an ordered event heap, per-actor deterministic PRNG streams, and a
// running digest of the schedule a run produced.
//
// Everything here is single-threaded by design — the simulator owns one
// event loop and fires events strictly in (time, schedule order), so a run
// is a pure function of its scenario and seed. Concurrency lives below, in
// the stratrec::Service the events drive; determinism of *that* layer is
// the record/replay property the repo already pins (bit-identical reports
// at any pool size), which is exactly what lets a simulated run double as
// a schedule-space robustness check: replay the journal any cell recorded
// and the bytes must come back, whatever the pool did.
#ifndef STRATREC_SIM_ENGINE_H_
#define STRATREC_SIM_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"

namespace stratrec::sim {

/// FNV-1a accumulator over the decisions a simulated run made. Two runs of
/// the same (scenario, seed) must produce equal digests at any worker-pool
/// size — the sim-side half of the determinism contract (the journal
/// fingerprint is the service-side half). Only *inputs* are mixed in
/// (what was submitted, dropped, cancelled, revoked, and when), never
/// service outcomes, so the digest stays pool-size-invariant even for
/// scenarios that race tickets on purpose.
class ScheduleDigest {
 public:
  void Mix(uint64_t value);
  void Mix(double value);  ///< mixes the exact bit pattern
  void Mix(std::string_view text);

  uint64_t value() const { return hash_; }

  /// 16-hex-digit rendering for reports and JSON.
  static std::string Hex(uint64_t digest);

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;  ///< FNV-1a offset basis
};

/// Derives a child seed from (root, name) — the same mixing RngStreams
/// uses, exposed for components that own their generator (e.g. the
/// simulator's per-tenant workload::Generator instances).
uint64_t DeriveSeed(uint64_t root, std::string_view name);

/// Named deterministic PRNG streams derived from one root seed. Each actor
/// ("arrivals", "drift", "tenant-2", ...) owns an independent xoshiro
/// stream seeded from splitmix64(root ^ FNV(name)), so
///   * the same (root, name) always yields the same stream,
///   * adding a new actor never perturbs the draws of existing ones, and
///   * the order streams are first requested in does not matter.
class RngStreams {
 public:
  explicit RngStreams(uint64_t root_seed) : root_(root_seed) {}

  /// The stream for `actor`, created on first use.
  Rng& For(std::string_view actor);

 private:
  uint64_t root_;
  std::map<std::string, Rng, std::less<>> streams_;
};

/// Min-heap event queue over a virtual clock. Events scheduled for equal
/// times fire in the order they were scheduled (a monotonic sequence number
/// breaks ties), so the loop is fully deterministic.
class EventQueue {
 public:
  using Fn = std::function<void()>;

  /// Schedules `fn` at absolute virtual time `time` (clamped up to now()):
  /// the past cannot be scheduled into.
  void Schedule(double time, Fn fn);

  /// Schedules `fn` at now() + delay (delay clamped up to 0).
  void ScheduleAfter(double delay, Fn fn);

  /// Fires the earliest event, advancing the clock to its time. Returns
  /// false on an empty heap.
  bool RunNext();

  /// Fires every event with time <= horizon (events may schedule further
  /// events; those fire too if they fall inside), then advances the clock
  /// to `horizon`. Returns the number of events fired.
  size_t RunUntil(double horizon);

  double now() const { return now_; }
  size_t fired() const { return fired_; }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    double time = 0.0;
    uint64_t seq = 0;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  uint64_t seq_ = 0;
  size_t fired_ = 0;
};

}  // namespace stratrec::sim

#endif  // STRATREC_SIM_ENGINE_H_
