#include "src/sim/scenario.h"

#include <algorithm>

namespace stratrec::sim {

namespace {

ScenarioConfig Poisson() {
  ScenarioConfig config;
  config.name = "poisson";
  config.summary = "steady Poisson batch arrivals at fixed availability";
  config.arrivals.kind = ArrivalProcess::Kind::kPoisson;
  config.arrivals.rate = 2.0;
  config.drift.kind = DriftProcess::Kind::kNone;
  return config;
}

ScenarioConfig Bursty() {
  ScenarioConfig config;
  config.name = "bursty";
  config.summary = "burst/drain batch arrival waves at fixed availability";
  config.arrivals.kind = ArrivalProcess::Kind::kBursty;
  config.arrivals.burst_lo = 8;
  config.arrivals.burst_hi = 18;
  config.arrivals.burst_period = 4;
  return config;
}

ScenarioConfig Diurnal() {
  ScenarioConfig config;
  config.name = "diurnal";
  config.summary =
      "Poisson arrivals under sinusoidal availability drift with "
      "virtual-time-stamped stats checkpoints";
  config.arrivals.rate = 2.0;
  config.drift.kind = DriftProcess::Kind::kDiurnal;
  config.drift.base = 0.55;
  config.drift.amplitude = 0.2;
  config.drift.period = 96.0;
  config.availability_quantum = 0.02;
  config.stats_snapshot_period = 24.0;
  return config;
}

ScenarioConfig Brownout() {
  ScenarioConfig config = Diurnal();
  config.name = "brownout";
  config.summary =
      "diurnal drift plus fault injection: dropped tickets and a mid-run "
      "shard slowdown window";
  config.stats_snapshot_period = 0.0;
  config.faults.drop_probability = 0.08;
  // The slowdown window is resolved against the horizon when the simulator
  // runs (a fraction would be friendlier, but keeping absolute virtual
  // times makes the config a complete description of the run).
  config.faults.slowdown_begin = config.ticks / 3.0;
  config.faults.slowdown_end = 2.0 * config.ticks / 3.0;
  config.faults.slowdown_factor = 3.0;
  return config;
}

ScenarioConfig Churn() {
  ScenarioConfig config;
  config.name = "churn";
  config.summary =
      "stream session under worker-pool join/leave churn scaling capacity";
  config.stream_mode = true;
  config.arrivals.rate = 3.0;
  config.drift.kind = DriftProcess::Kind::kRandomWalk;
  config.drift.base = 0.6;
  config.drift.step = 0.02;
  config.drift.lo = 0.35;
  config.drift.hi = 0.85;
  config.churn.enabled = true;
  config.churn.capacity = 200;
  config.churn.initial = 160;
  config.churn.join_rate = 5.0;
  config.churn.leave_rate = 5.0;
  config.availability_quantum = 0.02;
  return config;
}

ScenarioConfig RevocationStorm() {
  ScenarioConfig config;
  config.name = "revocation-storm";
  config.summary =
      "stream session with periodic mass revocations of the live set";
  config.stream_mode = true;
  config.arrivals.rate = 3.5;
  config.drift.kind = DriftProcess::Kind::kNone;
  config.drift.base = 0.5;
  config.storms.revocation_period = 10;
  config.storms.revocation_fraction = 0.6;
  return config;
}

ScenarioConfig CancelStorm() {
  ScenarioConfig config;
  config.name = "cancel-storm";
  config.summary =
      "async batch waves with a fraction of tickets cancelled while the "
      "pool races to claim them";
  config.arrivals.rate = 1.0;
  config.storms.cancellation_period = 8;
  config.storms.cancellation_wave = 12;
  config.storms.cancellation_fraction = 0.5;
  // Which tickets a Cancel() beats is scheduling-dependent by design; the
  // journal still replays byte-identically (cancelled pairs are skipped),
  // but its bytes are not pool-size-invariant.
  config.deterministic_journal = false;
  return config;
}

ScenarioConfig MultiTenant() {
  ScenarioConfig config;
  config.name = "multi-tenant";
  config.summary =
      "three tenant catalogs driven side by side from one arrival process";
  config.tenants = 3;
  config.strategies = 800;
  config.arrivals.rate = 3.0;
  return config;
}

}  // namespace

std::vector<ScenarioConfig> BuiltinScenarios() {
  return {Poisson(),  Bursty(),          Diurnal(),     Brownout(),
          Churn(),    RevocationStorm(), CancelStorm(), MultiTenant()};
}

Result<ScenarioConfig> FindScenario(const std::string& name) {
  for (ScenarioConfig& scenario : BuiltinScenarios()) {
    if (scenario.name == name) return std::move(scenario);
  }
  return Status::NotFound("unknown scenario '" + name + "'");
}

std::vector<std::string> ScenarioNames() {
  std::vector<std::string> names;
  for (const ScenarioConfig& scenario : BuiltinScenarios()) {
    names.push_back(scenario.name);
  }
  return names;
}

void ScaleScenario(ScenarioConfig* scenario, double ticks,
                   size_t strategies) {
  // Rescale the absolute-time fault window with the horizon.
  const double old_ticks = scenario->ticks;
  scenario->ticks = ticks;
  scenario->strategies = strategies;
  if (old_ticks > 0.0 && scenario->faults.slowdown_end > 0.0) {
    const double scale = ticks / old_ticks;
    scenario->faults.slowdown_begin *= scale;
    scenario->faults.slowdown_end *= scale;
  }
  // Keep the checkpoint cadence proportional (and >= 1 tick), so a scaled
  // run still writes stats snapshots before its horizon.
  if (old_ticks > 0.0 && scenario->stats_snapshot_period > 0.0) {
    scenario->stats_snapshot_period =
        std::max(1.0, scenario->stats_snapshot_period * ticks / old_ticks);
  }
  // Keep the diurnal period meaningful on short horizons: a smoke run
  // should still see the availability move through a full cycle.
  if (scenario->drift.kind == DriftProcess::Kind::kDiurnal &&
      scenario->drift.period > ticks) {
    scenario->drift.period = std::max(ticks / 1.25, 1.0);
  }
}

}  // namespace stratrec::sim
