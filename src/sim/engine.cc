#include "src/sim/engine.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace stratrec::sim {

namespace {

constexpr uint64_t kFnvPrime = 0x100000001B3ULL;
constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t FnvHash(std::string_view text) {
  uint64_t hash = kFnvOffset;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// splitmix64 finalizer: spreads a seed into full-entropy state so two
/// actors whose FNV hashes are close still get uncorrelated streams.
uint64_t SplitMix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void ScheduleDigest::Mix(uint64_t value) { hash_ = FnvMix(hash_, value); }

void ScheduleDigest::Mix(double value) {
  Mix(std::bit_cast<uint64_t>(value));
}

void ScheduleDigest::Mix(std::string_view text) {
  Mix(static_cast<uint64_t>(text.size()));
  for (const char c : text) {
    hash_ ^= static_cast<unsigned char>(c);
    hash_ *= kFnvPrime;
  }
}

std::string ScheduleDigest::Hex(uint64_t digest) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

uint64_t DeriveSeed(uint64_t root, std::string_view name) {
  return SplitMix(root ^ FnvHash(name));
}

Rng& RngStreams::For(std::string_view actor) {
  auto it = streams_.find(actor);
  if (it == streams_.end()) {
    it = streams_.emplace(std::string(actor), Rng(DeriveSeed(root_, actor)))
             .first;
  }
  return it->second;
}

void EventQueue::Schedule(double time, Fn fn) {
  heap_.push(Event{std::max(time, now_), seq_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(double delay, Fn fn) {
  Schedule(now_ + std::max(delay, 0.0), std::move(fn));
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the event is moved out via the pop-copy
  // idiom (Fn is copyable, events are small).
  Event event = heap_.top();
  heap_.pop();
  now_ = event.time;
  ++fired_;
  event.fn();
  return true;
}

size_t EventQueue::RunUntil(double horizon) {
  size_t count = 0;
  while (!heap_.empty() && heap_.top().time <= horizon) {
    RunNext();
    ++count;
  }
  now_ = std::max(now_, horizon);
  return count;
}

}  // namespace stratrec::sim
