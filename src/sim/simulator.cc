#include "src/sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/fault.h"
#include "src/common/journal.h"
#include "src/sim/engine.h"
#include "src/workload/generators.h"

namespace stratrec::sim {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Availability clamps: W = 0 starves every scheduler and W = 1 is a degenerate
// full-pool fiction, so processes move inside this band.
constexpr double kMinW = 0.05;
constexpr double kMaxW = 0.95;

// Virtual deployment durations in ticks, before slowdown windows.
constexpr double kServiceTimeLo = 0.5;
constexpr double kServiceTimeHi = 2.5;

std::string TenantTag(size_t tenant) { return "t" + std::to_string(tenant); }

/// One tenant: a Service (optionally wrapped in a stream session), its
/// request generator, and the stream-mode live set.
struct Tenant {
  Tenant(Service service_in, uint64_t request_seed)
      : service(std::move(service_in)), requests({}, request_seed) {}

  Service service;
  std::optional<StreamSession> session;
  workload::Generator requests;
  size_t request_counter = 0;
  /// Stream-mode requests admitted or queued and not yet completed/revoked.
  /// The vector gives storms a deterministic order to sample from; the set
  /// answers "still live?" when a completion event fires after a storm
  /// already revoked its request.
  std::vector<std::string> live;
  std::unordered_set<std::string> live_lookup;
  /// Admission kind at arrival, index-aligned with `live` (kQueued arrivals
  /// are withdrawn via Revocation at completion time — Completion is only
  /// valid for admitted requests).
  std::vector<bool> admitted;
};

/// Mutable availability-process state.
struct AvailabilityState {
  double walk = 0.0;       ///< random-walk W
  size_t occupied = 0;     ///< churn: seats currently occupied
  double current = 0.0;    ///< last effective W pushed to the services
};

double DriftW(const ScenarioConfig& scenario, const AvailabilityState& state,
              double now) {
  switch (scenario.drift.kind) {
    case DriftProcess::Kind::kNone:
      return scenario.drift.base;
    case DriftProcess::Kind::kDiurnal:
      return scenario.drift.base +
             scenario.drift.amplitude *
                 std::sin(kTwoPi * now / scenario.drift.period);
    case DriftProcess::Kind::kRandomWalk:
      return state.walk;
  }
  return scenario.drift.base;
}

double EffectiveW(const ScenarioConfig& scenario,
                  const AvailabilityState& state, double now) {
  double w = DriftW(scenario, state, now);
  if (scenario.churn.enabled && scenario.churn.capacity > 0) {
    w *= static_cast<double>(state.occupied) /
         static_cast<double>(scenario.churn.capacity);
  }
  if (scenario.availability_quantum > 0.0) {
    w = std::round(w / scenario.availability_quantum) *
        scenario.availability_quantum;
  }
  return std::clamp(w, kMinW, kMaxW);
}

double SlowdownFactor(const FaultInjection& faults, double now) {
  if (faults.slowdown_end > faults.slowdown_begin &&
      now >= faults.slowdown_begin && now < faults.slowdown_end) {
    return faults.slowdown_factor;
  }
  return 1.0;
}

LatencySummary Summarize(std::vector<double>* samples) {
  LatencySummary summary;
  summary.samples = samples->size();
  if (samples->empty()) return summary;
  std::sort(samples->begin(), samples->end());
  const auto at = [&](double quantile) {
    const auto index = static_cast<size_t>(std::llround(
        quantile * static_cast<double>(samples->size() - 1)));
    return (*samples)[index];
  };
  summary.p50 = at(0.50);
  summary.p95 = at(0.95);
  summary.p99 = at(0.99);
  summary.max = samples->back();
  return summary;
}

/// The whole mutable run: tick handlers are methods so the event lambdas
/// stay small and every piece of state has one owner.
class Run {
 public:
  Run(const ScenarioConfig& scenario, const RunOptions& options)
      : scenario_(scenario), options_(options), rng_(options.seed) {}

  Result<SimReport> Execute() {
    const auto wall_start = std::chrono::steady_clock::now();
    if (scenario_.tenants == 0) {
      return Status::InvalidArgument("scenario needs at least one tenant");
    }
    if (scenario_.ticks <= 0.0) {
      return Status::InvalidArgument("scenario horizon must be positive");
    }
    report_.scenario = scenario_.name;
    report_.seed = options_.seed;
    report_.worker_threads = options_.worker_threads;

    digest_.Mix("scenario");
    digest_.Mix(scenario_.name);
    digest_.Mix(options_.seed);
    digest_.Mix(static_cast<uint64_t>(scenario_.tenants));
    digest_.Mix(static_cast<uint64_t>(scenario_.strategies));
    digest_.Mix(scenario_.ticks);
    digest_.Mix(static_cast<uint64_t>(scenario_.stream_mode));

    // Brownout drops run through the shared fault layer: a run-local plan
    // (no global state) seeded from the run, one site, rate straight from
    // the scenario knob. Same seed, same drop schedule — and the same
    // machinery the serving tier's chaos bench exercises.
    if (scenario_.faults.drop_probability > 0.0) {
      fault::FaultConfig faults;
      faults.seed = DeriveSeed(options_.seed, "fault-plan");
      faults.sites.emplace_back(
          std::string(fault::kSiteSimBatchDrop),
          fault::SiteSpec{scenario_.faults.drop_probability, 0.0});
      fault_plan_ = std::make_unique<fault::FaultPlan>(std::move(faults));
    }

    availability_.walk = scenario_.drift.base;
    availability_.occupied =
        std::min(scenario_.churn.initial, scenario_.churn.capacity);
    availability_.current = EffectiveW(scenario_, availability_, 0.0);

    if (Status status = BuildTenants(); !status.ok()) return status;

    // The tick chain: tick i runs at virtual time i and schedules i + 1.
    // Completion events interleave at fractional times, strictly ordered by
    // (time, schedule order), so the whole run drains deterministically.
    std::function<void()> tick = [this, &tick]() {
      RunTick();
      ++tick_index_;
      if (static_cast<double>(tick_index_) < scenario_.ticks) {
        queue_.Schedule(static_cast<double>(tick_index_), tick);
      }
    };
    queue_.Schedule(0.0, tick);
    while (queue_.RunNext()) {
    }

    FinishReport();
    report_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return std::move(report_);
  }

 private:
  Status BuildTenants() {
    tenants_.reserve(scenario_.tenants);
    for (size_t t = 0; t < scenario_.tenants; ++t) {
      core::Catalog catalog;
      if (t == 0 && options_.catalog.has_value()) {
        catalog = *options_.catalog;
      } else {
        workload::Generator gen(
            {}, DeriveSeed(options_.seed, "catalog-" + TenantTag(t)));
        catalog = api::CatalogFromProfiles(
            gen.Profiles(static_cast<int>(scenario_.strategies)),
            TenantTag(t) + "-s");
      }
      api::ServiceConfig config;
      config.execution.worker_threads = options_.worker_threads;
      config.cache.availability_quantum = scenario_.availability_quantum;
      if (!options_.journal_path.empty()) {
        config.journal.path = t == 0 ? options_.journal_path
                                     : options_.journal_path + "." +
                                           TenantTag(t);
        report_.journals.push_back(config.journal.path);
      }
      auto service = Service::Create(std::move(catalog), config);
      if (!service.ok()) return service.status();
      tenants_.emplace_back(
          std::move(*service),
          DeriveSeed(options_.seed, "requests-" + TenantTag(t)));
      if (scenario_.stream_mode) {
        api::StreamOptions stream_options;
        stream_options.availability =
            api::AvailabilitySpec::Fixed(availability_.current);
        stream_options.recommend_alternatives = true;
        auto session = tenants_.back().service.OpenStream(stream_options);
        if (!session.ok()) return session.status();
        tenants_.back().session = std::move(*session);
      }
    }
    return Status::OK();
  }

  void RunTick() {
    const double now = queue_.now();
    digest_.Mix("tick");
    digest_.Mix(static_cast<uint64_t>(tick_index_));

    UpdateAvailability(now);

    // Arrival units: batches in batch mode, single requests in stream mode.
    int units = 0;
    switch (scenario_.arrivals.kind) {
      case ArrivalProcess::Kind::kPoisson:
        units = rng_.For("arrivals").Poisson(scenario_.arrivals.rate);
        break;
      case ArrivalProcess::Kind::kBursty:
        if (scenario_.arrivals.burst_period > 0 &&
            tick_index_ % static_cast<uint64_t>(
                              scenario_.arrivals.burst_period) == 0) {
          units = static_cast<int>(rng_.For("arrivals").UniformInt(
              scenario_.arrivals.burst_lo, scenario_.arrivals.burst_hi));
        }
        break;
    }
    for (int unit = 0; unit < units; ++unit) {
      const size_t tenant = PickTenant();
      if (scenario_.stream_mode) {
        SubmitStreamArrival(tenant);
      } else {
        SubmitBatchUnit(tenant);
      }
    }

    if (scenario_.stream_mode && scenario_.storms.revocation_period > 0 &&
        tick_index_ > 0 &&
        tick_index_ % static_cast<uint64_t>(
                          scenario_.storms.revocation_period) == 0) {
      RevocationStorm();
    }
    if (!scenario_.stream_mode && scenario_.storms.cancellation_period > 0 &&
        tick_index_ > 0 &&
        tick_index_ % static_cast<uint64_t>(
                          scenario_.storms.cancellation_period) == 0) {
      CancellationWave();
    }

    if (scenario_.stats_snapshot_period >= 1.0 && tick_index_ > 0 &&
        tick_index_ % static_cast<uint64_t>(std::llround(
                          scenario_.stats_snapshot_period)) == 0) {
      // The checkpoint *decision* is an input and is mixed whether or not a
      // journal is attached — a journaled and an unjournaled run of one
      // (scenario, seed) must agree on the digest.
      digest_.Mix("stats");
      digest_.Mix(now);
      if (!options_.journal_path.empty()) {
        for (Tenant& tenant : tenants_) {
          (void)tenant.service.RecordStatsSnapshot(now);
        }
      }
    }
  }

  void UpdateAvailability(double now) {
    if (scenario_.drift.kind == DriftProcess::Kind::kRandomWalk) {
      availability_.walk = std::clamp(
          availability_.walk + rng_.For("drift").Uniform(-scenario_.drift.step,
                                                         scenario_.drift.step),
          scenario_.drift.lo, scenario_.drift.hi);
    }
    if (scenario_.churn.enabled) {
      Rng& churn = rng_.For("churn");
      const int joins = churn.Poisson(scenario_.churn.join_rate);
      const int leaves = churn.Poisson(scenario_.churn.leave_rate);
      const size_t joined = std::min(
          static_cast<size_t>(joins),
          scenario_.churn.capacity - availability_.occupied);
      availability_.occupied += joined;
      const size_t left =
          std::min(static_cast<size_t>(leaves), availability_.occupied);
      availability_.occupied -= left;
      report_.worker_joins += joined;
      report_.worker_leaves += left;
    }
    const double w = EffectiveW(scenario_, availability_, now);
    if (w == availability_.current) return;
    availability_.current = w;
    ++report_.availability_changes;
    digest_.Mix("w-change");
    digest_.Mix(w);
    if (scenario_.stream_mode) {
      for (Tenant& tenant : tenants_) {
        (void)tenant.session->Submit(api::StreamEvent::AvailabilityChange(
            api::AvailabilitySpec::Fixed(w)));
      }
    }
  }

  size_t PickTenant() {
    if (tenants_.size() <= 1) return 0;
    return static_cast<size_t>(rng_.For("tenant-pick").UniformInt(
        0, static_cast<int64_t>(tenants_.size()) - 1));
  }

  std::vector<core::DeploymentRequest> GenerateRequests(size_t tenant_index,
                                                        int count) {
    Tenant& tenant = tenants_[tenant_index];
    // Ranges chosen so most requests are serviceable against the generator's
    // catalogs (modest quality demands, generous budgets); every
    // `hard_every`-th request flips to unsatisfiable thresholds to force the
    // ADPaR alternatives leg.
    auto requests = tenant.requests.RequestsWithRanges(
        count, scenario_.arrivals.k, {0.50, 0.75}, {0.70, 1.0}, {0.70, 1.0});
    for (auto& request : requests) {
      ++tenant.request_counter;
      char id[32];
      std::snprintf(id, sizeof(id), "t%zu-r%06zu", tenant_index,
                    tenant.request_counter);
      request.id = id;
      if (scenario_.arrivals.hard_every > 0 &&
          tenant.request_counter %
                  static_cast<size_t>(scenario_.arrivals.hard_every) ==
              0) {
        request.thresholds = core::ParamVector{0.97, 0.12, 0.15};
      }
      digest_.Mix(request.id);
      digest_.Mix(request.thresholds.quality);
      digest_.Mix(request.thresholds.cost);
      digest_.Mix(request.thresholds.latency);
    }
    return requests;
  }

  /// Draws the virtual deployment duration for work submitted now — an
  /// *input* to the schedule (mixed into the digest at draw time), never a
  /// function of service outcomes.
  double DrawDuration(double now) {
    const double duration =
        rng_.For("service-time").Uniform(kServiceTimeLo, kServiceTimeHi) *
        SlowdownFactor(scenario_.faults, now);
    digest_.Mix("duration");
    digest_.Mix(duration);
    return duration;
  }

  bool DropBatch() {
    if (fault_plan_ == nullptr) return false;
    if (!fault_plan_->Visit(fault::kSiteSimBatchDrop).inject) return false;
    ++report_.dropped_batches;
    digest_.Mix("drop");
    return true;
  }

  void SubmitBatchUnit(size_t tenant_index) {
    const int count = static_cast<int>(rng_.For("batch-size").UniformInt(
        scenario_.arrivals.requests_lo, scenario_.arrivals.requests_hi));
    digest_.Mix("batch");
    digest_.Mix(static_cast<uint64_t>(tenant_index));
    digest_.Mix(static_cast<uint64_t>(count));
    auto requests = GenerateRequests(tenant_index, count);
    const double duration = DrawDuration(queue_.now());
    if (DropBatch()) return;

    api::BatchRequest batch;
    batch.requests = std::move(requests);
    batch.availability = api::AvailabilitySpec::Fixed(availability_.current);
    ++report_.batches_submitted;
    report_.requests_submitted += static_cast<size_t>(count);
    auto outcome = tenants_[tenant_index].service.SubmitBatch(std::move(batch));
    if (!outcome.ok()) {
      ++report_.batch_failures;
      return;
    }
    ++report_.batches_completed;
    report_.requests_satisfied += outcome->result.aggregator.batch.satisfied.size();
    report_.alternatives_served += outcome->result.alternatives.size();
    queue_.ScheduleAfter(duration,
                         [this, duration]() { latencies_.push_back(duration); });
  }

  void SubmitStreamArrival(size_t tenant_index) {
    digest_.Mix("arrival");
    digest_.Mix(static_cast<uint64_t>(tenant_index));
    auto requests = GenerateRequests(tenant_index, 1);
    const double duration = DrawDuration(queue_.now());
    if (DropBatch()) return;

    Tenant& tenant = tenants_[tenant_index];
    const std::string id = requests[0].id;
    auto update =
        tenant.session->Submit(api::StreamEvent::Arrival(std::move(requests[0])));
    if (!update.ok() ||
        update->decision.kind == core::AdmissionDecision::Kind::kRejected) {
      return;
    }
    const bool admitted =
        update->decision.kind == core::AdmissionDecision::Kind::kAdmitted;
    if (update->has_alternative) ++report_.alternatives_served;
    tenant.live.push_back(id);
    tenant.admitted.push_back(admitted);
    tenant.live_lookup.insert(id);
    queue_.ScheduleAfter(
        duration, [this, tenant_index, id, admitted, duration]() {
          Tenant& owner = tenants_[tenant_index];
          if (owner.live_lookup.erase(id) == 0) return;  // storm got it first
          const auto it = std::find(owner.live.begin(), owner.live.end(), id);
          const size_t index =
              static_cast<size_t>(it - owner.live.begin());
          owner.live.erase(it);
          owner.admitted.erase(owner.admitted.begin() +
                               static_cast<ptrdiff_t>(index));
          // Completion is only legal for admitted requests; a request that
          // was queued at arrival is withdrawn instead (Revocation handles
          // queued and since-promoted requests alike).
          (void)owner.session->Submit(
              admitted ? api::StreamEvent::Completion(id)
                       : api::StreamEvent::Revocation(id));
          if (admitted) latencies_.push_back(duration);
        });
  }

  void RevocationStorm() {
    Rng& storm = rng_.For("revocation-storm");
    for (size_t tenant_index = 0; tenant_index < tenants_.size();
         ++tenant_index) {
      Tenant& tenant = tenants_[tenant_index];
      const size_t victims = static_cast<size_t>(
          std::floor(static_cast<double>(tenant.live.size()) *
                     scenario_.storms.revocation_fraction));
      for (size_t v = 0; v < victims && !tenant.live.empty(); ++v) {
        const size_t pick = static_cast<size_t>(storm.UniformInt(
            0, static_cast<int64_t>(tenant.live.size()) - 1));
        const std::string id = tenant.live[pick];
        tenant.live[pick] = tenant.live.back();
        tenant.live.pop_back();
        tenant.admitted[pick] = tenant.admitted.back();
        tenant.admitted.pop_back();
        tenant.live_lookup.erase(id);
        digest_.Mix("revoke");
        digest_.Mix(id);
        (void)tenant.session->Submit(api::StreamEvent::Revocation(id));
      }
    }
  }

  void CancellationWave() {
    digest_.Mix("wave");
    Rng& storm = rng_.For("cancel-storm");
    struct WaveTicket {
      Ticket<api::BatchReport> ticket;
      double duration;
    };
    std::vector<WaveTicket> wave;
    std::vector<bool> cancel;
    wave.reserve(static_cast<size_t>(scenario_.storms.cancellation_wave));
    for (int i = 0; i < scenario_.storms.cancellation_wave; ++i) {
      const size_t tenant_index = PickTenant();
      const int count = static_cast<int>(rng_.For("batch-size").UniformInt(
          scenario_.arrivals.requests_lo, scenario_.arrivals.requests_hi));
      digest_.Mix(static_cast<uint64_t>(tenant_index));
      digest_.Mix(static_cast<uint64_t>(count));
      api::BatchRequest batch;
      batch.requests = GenerateRequests(tenant_index, count);
      batch.availability = api::AvailabilitySpec::Fixed(availability_.current);
      ++report_.batches_submitted;
      report_.requests_submitted += static_cast<size_t>(count);
      wave.push_back(WaveTicket{
          tenants_[tenant_index].service.SubmitBatchAsync(std::move(batch)),
          DrawDuration(queue_.now())});
      // The cancel decision is an input (drawn unconditionally); whether the
      // Cancel() wins against the pool is the one racy outcome the scenario
      // exists to exercise — counted, never mixed into the digest.
      cancel.push_back(storm.Bernoulli(scenario_.storms.cancellation_fraction));
    }
    for (size_t i = 0; i < wave.size(); ++i) {
      if (!cancel[i]) continue;
      ++report_.cancel_attempts;
      digest_.Mix("cancel");
      digest_.Mix(static_cast<uint64_t>(i));
      if (wave[i].ticket.Cancel()) ++report_.cancel_wins;
    }
    for (WaveTicket& entry : wave) {
      auto outcome = entry.ticket.Wait();
      if (outcome.ok()) {
        ++report_.batches_completed;
        report_.requests_satisfied +=
            outcome->result.aggregator.batch.satisfied.size();
        report_.alternatives_served += outcome->result.alternatives.size();
        const double duration = entry.duration;
        queue_.ScheduleAfter(
            duration, [this, duration]() { latencies_.push_back(duration); });
      } else if (outcome.status().code() == StatusCode::kCancelled) {
        ++report_.cancelled_batches;
      } else {
        ++report_.batch_failures;
      }
    }
  }

  void FinishReport() {
    report_.schedule_digest = digest_.value();
    report_.virtual_duration = queue_.now();
    report_.events_fired = queue_.fired();
    report_.latency = Summarize(&latencies_);
    for (Tenant& tenant : tenants_) {
      if (!tenant.session.has_value()) continue;
      const core::OnlineStats stats = tenant.session->stats();
      report_.stream.arrivals += stats.arrivals;
      report_.stream.admitted += stats.admitted;
      report_.stream.queued += stats.queued;
      report_.stream.rejected += stats.rejected;
      report_.stream.revoked += stats.revoked;
      report_.stream.completed += stats.completed;
      report_.stream.objective += stats.objective;
      report_.stream.peak_utilization =
          std::max(report_.stream.peak_utilization, stats.peak_utilization);
    }
    report_.service_stats = tenants_[0].service.stats();
  }

  const ScenarioConfig& scenario_;
  const RunOptions& options_;
  RngStreams rng_;
  /// Brownout drop schedule; null unless the scenario has faults.
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  ScheduleDigest digest_;
  EventQueue queue_;
  std::vector<Tenant> tenants_;
  AvailabilityState availability_;
  uint64_t tick_index_ = 0;
  std::vector<double> latencies_;
  SimReport report_;
};

}  // namespace

Result<SimReport> RunScenario(const ScenarioConfig& scenario,
                              const RunOptions& options) {
  // Tenants (and their stream sessions) are members of Run, so services are
  // destroyed — and journals flushed and closed — before the report returns.
  return Run(scenario, options).Execute();
}

Result<uint64_t> JournalFingerprint(const std::string& path) {
  auto records = JournalReader::ReadAllSegments(path);
  if (!records.ok()) return records.status();
  ScheduleDigest digest;
  for (const std::string& record : *records) {
    // The config record embeds the worker-pool size and stats records carry
    // live executor gauges; everything else must be invariant.
    if (record.rfind("{\"kind\":\"config\"", 0) == 0) continue;
    if (record.rfind("{\"kind\":\"stats\"", 0) == 0) continue;
    digest.Mix(record);
  }
  return digest.value();
}

}  // namespace stratrec::sim
