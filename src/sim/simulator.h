// The platform simulator: a seeded discrete-event engine driving one (or
// several, for multi-tenant scenarios) stratrec::Service through a
// ScenarioConfig — the repo's macro-benchmark and schedule-space
// robustness harness.
//
// A run is a pure function of (scenario, seed): every stochastic choice
// draws from a named per-actor PRNG stream, every event fires in virtual-
// time order on one thread, and the only nondeterminism anywhere is the
// worker pool *inside* the Service — which the record/replay subsystem
// already pins to bit-identical reports at any pool size. The simulator
// leans on that contract twice over:
//
//   * every run can record a replayable journal (RunOptions::journal_path),
//     and bench/platform_sim.cc replays every (scenario, seed, pool) cell,
//     asserting byte-identical reports — a SimGrid-style sweep of the
//     schedule space where the determinism check catches interleaving bugs
//     TSan cannot see;
//   * SimReport::schedule_digest hashes the run's decision schedule
//     (inputs only, never racy outcomes), so two runs of one (scenario,
//     seed) must produce equal digests at every pool size, and
//     JournalFingerprint() extends the same claim to the recorded journal
//     bytes for scenarios that do not race tickets on purpose.
#ifndef STRATREC_SIM_SIMULATOR_H_
#define STRATREC_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/api/envelope.h"
#include "src/common/status.h"
#include "src/core/online.h"
#include "src/core/stratrec.h"
#include "src/sim/scenario.h"

namespace stratrec::sim {

struct RunOptions {
  uint64_t seed = 1;
  /// Worker threads of each tenant Service (the pool-size axis of the
  /// sweep); 0 means hardware concurrency.
  size_t worker_threads = 1;
  /// Base journal path; empty disables recording. Tenant 0 records to the
  /// base path, tenant t > 0 to "<path>.t<t>" (distinct from the writer's
  /// numeric ".N" segment-rotation suffixes).
  std::string journal_path;
  /// Caller-supplied catalog for tenant 0 (e.g. the AMT-fitted catalog the
  /// platform-simulation example builds); absent means a workload-generator
  /// catalog synthesized from the seed. Tenants past 0 always synthesize.
  std::optional<core::Catalog> catalog;

  bool operator==(const RunOptions&) const = default;
};

/// Virtual-time latency of completed deployments (ticks from submission to
/// simulated completion, slowdown windows included).
struct LatencySummary {
  size_t samples = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// What one simulated run did.
struct SimReport {
  std::string scenario;
  uint64_t seed = 0;
  size_t worker_threads = 0;
  /// FNV-1a digest of the decision schedule (see ScheduleDigest): equal for
  /// every run of one (scenario, seed), whatever the pool size.
  uint64_t schedule_digest = 0;
  double virtual_duration = 0.0;  ///< ticks actually simulated
  size_t events_fired = 0;

  // Batch-pipeline counters.
  size_t batches_submitted = 0;
  size_t requests_submitted = 0;
  size_t batches_completed = 0;
  size_t batch_failures = 0;  ///< error outcomes other than kCancelled
  size_t requests_satisfied = 0;
  size_t alternatives_served = 0;  ///< ADPaR legs that produced a d'

  // Fault injection and cancellation storms.
  size_t dropped_batches = 0;  ///< lost tickets: generated but never sent
  size_t cancel_attempts = 0;
  size_t cancel_wins = 0;       ///< Cancel() beat the pool (racy by design)
  size_t cancelled_batches = 0; ///< waves' tickets that completed kCancelled

  // Stream-mode counters (folded across tenants).
  core::OnlineStats stream;
  size_t availability_changes = 0;
  size_t worker_joins = 0;
  size_t worker_leaves = 0;

  LatencySummary latency;
  /// Journal paths recorded, tenant order; empty when recording was off.
  std::vector<std::string> journals;
  /// Tenant-0 service lifetime counters at teardown.
  api::ServiceStats service_stats;
  double wall_seconds = 0.0;
};

/// Runs one scenario to its horizon. Fails only on setup errors (an
/// unbuildable catalog or service); scenario-level failures (rejected
/// arrivals, infeasible batches, lost cancel races) are results, not
/// errors, and land in the report counters.
Result<SimReport> RunScenario(const ScenarioConfig& scenario,
                              const RunOptions& options);

/// Digest over the replay-relevant records of a recorded journal —
/// everything except the config record (which embeds the pool size) and
/// stats records (whose executor gauges are sampled live). For any
/// scenario with deterministic_journal, the fingerprint is identical
/// across runs AND pool sizes; cancel-storm journals vary (racy ticket
/// outcomes) but still replay byte-identically.
Result<uint64_t> JournalFingerprint(const std::string& path);

}  // namespace stratrec::sim

#endif  // STRATREC_SIM_SIMULATOR_H_
