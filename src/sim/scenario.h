// Composable scenario descriptions for the platform simulator.
//
// A scenario is a plain value: an arrival process, an availability process
// (diurnal drift, a random walk, worker-pool churn), optional storm and
// fault-injection processes, and the tenant/catalog shape. The simulator
// (src/sim/simulator.h) interprets one ScenarioConfig against a seeded
// event loop; the builtin set below covers the macro-benchmark matrix the
// ROADMAP asks for — Poisson and bursty arrivals, diurnal drift, pool
// churn, revocation and cancellation storms, fault brownouts, and
// multi-tenant catalogs — and callers are free to mutate any field (or
// compose entirely new configs) before running.
#ifndef STRATREC_SIM_SCENARIO_H_
#define STRATREC_SIM_SCENARIO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace stratrec::sim {

/// How request batches (or stream arrivals) enter the platform per tick.
struct ArrivalProcess {
  enum class Kind {
    kPoisson,  ///< Poisson(rate) batches per tick
    kBursty,   ///< a back-to-back burst every `burst_period` ticks
  };
  Kind kind = Kind::kPoisson;
  double rate = 2.0;
  int burst_lo = 8;
  int burst_hi = 18;
  int burst_period = 4;
  /// Deployment requests per batch (uniform in [lo, hi]). Stream-mode
  /// scenarios submit one arrival per generated request instead.
  int requests_lo = 2;
  int requests_hi = 4;
  /// Cardinality constraint stamped on every generated request.
  int k = 5;
  /// Every `hard_every`-th request draws unsatisfiable thresholds (quality
  /// near 1 at a tight budget), forcing the ADPaR alternatives leg; 0
  /// disables.
  int hard_every = 7;

  bool operator==(const ArrivalProcess&) const = default;
};

/// How the expected worker availability W moves over virtual time.
struct DriftProcess {
  enum class Kind {
    kNone,        ///< constant `base`
    kDiurnal,     ///< base + amplitude * sin(2*pi * t / period)
    kRandomWalk,  ///< +- step per tick, clamped to [lo, hi]
  };
  Kind kind = Kind::kNone;
  double base = 0.55;
  double amplitude = 0.2;
  double period = 96.0;  ///< ticks per simulated day
  double step = 0.04;
  double lo = 0.2;
  double hi = 0.9;

  bool operator==(const DriftProcess&) const = default;
};

/// Worker-pool churn: a seat count random-walked by Poisson joins/leaves
/// each tick. The effective availability is the drift process's W scaled by
/// the occupied-seat fraction, so a shrinking pool squeezes capacity the
/// way departing workers would.
struct ChurnProcess {
  bool enabled = false;
  size_t capacity = 200;  ///< seats
  size_t initial = 160;   ///< seats occupied at t = 0
  double join_rate = 5.0;
  double leave_rate = 5.0;

  bool operator==(const ChurnProcess&) const = default;
};

/// Periodic mass events: revocation storms (stream mode — a fraction of the
/// live request set is revoked at once) and cancellation storms (batch mode
/// — a wave of async tickets is submitted and a fraction immediately
/// cancelled, racing the worker pool on purpose).
struct StormProcess {
  int revocation_period = 0;  ///< ticks between storms; 0 = off
  double revocation_fraction = 0.5;
  int cancellation_period = 0;  ///< ticks between waves; 0 = off
  int cancellation_wave = 12;   ///< async batches per wave
  double cancellation_fraction = 0.5;

  bool operator==(const StormProcess&) const = default;
};

/// Fault-injection knobs.
struct FaultInjection {
  /// Probability a generated batch is dropped before submission (a lost
  /// ticket: the client gave up, the platform never saw it).
  double drop_probability = 0.0;
  /// Virtual-time window during which deployment durations are multiplied
  /// by `slowdown_factor` (a shard brownout); begin == end disables.
  double slowdown_begin = 0.0;
  double slowdown_end = 0.0;
  double slowdown_factor = 1.0;

  bool operator==(const FaultInjection&) const = default;
};

/// One complete scenario.
struct ScenarioConfig {
  std::string name;
  std::string summary;
  /// Virtual horizon in ticks (one tick = one scheduling round; the diurnal
  /// period gives it a wall-clock reading — 96 ticks ~ one day).
  double ticks = 120.0;
  /// Strategies per tenant catalog (synthesized by workload::Generator
  /// unless the caller supplies a catalog through RunOptions).
  size_t strategies = 1500;
  size_t tenants = 1;
  /// Drive a stream session per tenant instead of batch submissions: the
  /// Section-7 dynamic setting (arrivals/revocations/completions against
  /// drifting capacity) rather than the Figure-1 batch pipeline.
  bool stream_mode = false;
  ArrivalProcess arrivals;
  DriftProcess drift;
  ChurnProcess churn;
  StormProcess storms;
  FaultInjection faults;
  /// Snap resolved availabilities onto this grid (ServiceConfig::cache
  /// quantization) so drifting W values share snapshots; 0 = off.
  double availability_quantum = 0.0;
  /// When > 0 and journaling is on, append a virtual-time-stamped stats
  /// snapshot every this many ticks (Service::RecordStatsSnapshot(now)).
  /// Stats records carry executor gauges, so runs that write them trade
  /// byte-identical journals for saturation checkpoints — the replay
  /// identity check is unaffected (stats records are not replayed).
  double stats_snapshot_period = 0.0;
  /// Whether a run's journal bytes are invariant across pool sizes and
  /// repeated runs (modulo the config record, which embeds the pool size,
  /// and any stats records). False only for scenarios that intentionally
  /// race the pool — cancellation storms — where which tickets complete
  /// versus cancel is scheduling-dependent; replay identity still holds.
  bool deterministic_journal = true;

  bool operator==(const ScenarioConfig&) const = default;
};

/// The builtin scenario set, in sweep order:
///   poisson           steady Poisson batch arrivals at fixed W
///   bursty            burst/drain batch arrival waves
///   diurnal           Poisson arrivals under sinusoidal availability drift,
///                     with virtual-time-stamped stats checkpoints
///   brownout          diurnal plus fault injection: dropped tickets and a
///                     mid-run shard slowdown window
///   churn             stream mode: worker-pool join/leave churn scaling
///                     capacity under Poisson arrivals
///   revocation-storm  stream mode: periodic mass revocations
///   cancel-storm      async batch waves with racing Ticket::Cancel
///   multi-tenant      three tenant catalogs driven side by side
std::vector<ScenarioConfig> BuiltinScenarios();

/// Looks a builtin up by name; kNotFound otherwise.
Result<ScenarioConfig> FindScenario(const std::string& name);

/// The builtin names, in sweep order.
std::vector<std::string> ScenarioNames();

/// Scales a scenario's horizon and catalog down (or up) in place — the
/// smoke-test and unit-test hook, so CI legs run the same scenario shapes
/// the full sweep does, just shorter.
void ScaleScenario(ScenarioConfig* scenario, double ticks, size_t strategies);

}  // namespace stratrec::sim

#endif  // STRATREC_SIM_SCENARIO_H_
