#include "src/workload/generators.h"

#include "src/common/float_compare.h"

namespace stratrec::workload {

const char* DimDistributionName(DimDistribution distribution) {
  switch (distribution) {
    case DimDistribution::kUniform:
      return "uniform";
    case DimDistribution::kNormal:
      return "normal";
  }
  return "?";
}

Generator::Generator(const GeneratorOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {}

double Generator::SampleDim() {
  switch (options_.distribution) {
    case DimDistribution::kUniform:
      return rng_.Uniform(options_.uniform_lo, options_.uniform_hi);
    case DimDistribution::kNormal:
      return rng_.TruncatedNormal(options_.normal_mean, options_.normal_std,
                                  0.0, 1.0);
  }
  return 0.0;
}

std::vector<core::ParamVector> Generator::StrategyParams(int count) {
  std::vector<core::ParamVector> params;
  params.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    params.push_back(core::ParamVector{SampleDim(), SampleDim(), SampleDim()});
  }
  return params;
}

std::vector<core::StrategyProfile> Generator::Profiles(int count) {
  std::vector<core::StrategyProfile> profiles;
  profiles.reserve(static_cast<size_t>(count));
  const double anchor = options_.anchor_availability;
  for (int i = 0; i < count; ++i) {
    core::StrategyProfile profile;
    // Parameter value at the anchor availability equals the sampled
    // dimension; the slope controls how it responds to worker availability.
    const double quality_dim = SampleDim();
    const double quality_alpha = rng_.Uniform(options_.alpha_lo,
                                              options_.alpha_hi);
    profile.quality = {quality_alpha, quality_dim - quality_alpha * anchor};

    const double cost_dim = SampleDim();
    const double cost_alpha = rng_.Uniform(options_.alpha_lo,
                                           options_.alpha_hi);
    profile.cost = {cost_alpha, cost_dim - cost_alpha * anchor};

    const double latency_dim = SampleDim();
    const double latency_alpha = -rng_.Uniform(options_.alpha_lo,
                                               options_.alpha_hi);
    profile.latency = {latency_alpha, latency_dim - latency_alpha * anchor};
    profiles.push_back(profile);
  }
  return profiles;
}

std::vector<core::DeploymentRequest> Generator::Requests(int count, int k) {
  const Range whole{options_.request_lo, options_.request_hi};
  return RequestsWithRanges(count, k, whole, whole, whole);
}

std::vector<core::DeploymentRequest> Generator::RequestsWithRanges(
    int count, int k, Range quality, Range cost, Range latency) {
  std::vector<core::DeploymentRequest> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::DeploymentRequest request;
    request.id = "d" + std::to_string(i + 1);
    request.thresholds.quality = rng_.Uniform(quality.lo, quality.hi);
    request.thresholds.cost = rng_.Uniform(cost.lo, cost.hi);
    request.thresholds.latency = rng_.Uniform(latency.lo, latency.hi);
    request.k = k;
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace stratrec::workload
