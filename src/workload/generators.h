// Synthetic workload generation for the paper's Section 5.2 experiments.
//
// Strategy dimension values are drawn from Uniform[0.5, 1] or
// Normal(0.75, 0.1); availability-model slopes alpha from Uniform[0.5, 1]
// with beta tied so the parameter at full availability equals the sampled
// dimension value; request parameters from Uniform[0.625, 1]. Defaults match
// the paper: |S| = 10000, m = 10, k = 10, W = 0.5, 10 runs per point.
#ifndef STRATREC_WORKLOAD_GENERATORS_H_
#define STRATREC_WORKLOAD_GENERATORS_H_

#include <vector>

#include "src/common/rng.h"
#include "src/core/deployment.h"
#include "src/core/linear_model.h"

namespace stratrec::workload {

/// Distribution of strategy dimension values (paper Section 5.2.2).
enum class DimDistribution { kUniform, kNormal };

/// "uniform" / "normal".
const char* DimDistributionName(DimDistribution distribution);

/// Generator knobs, defaulted to the paper's setup.
struct GeneratorOptions {
  DimDistribution distribution = DimDistribution::kUniform;
  double uniform_lo = 0.5;
  double uniform_hi = 1.0;
  double normal_mean = 0.75;
  double normal_std = 0.1;
  /// Availability-model slope range (paper: alpha ~ U[0.5, 1]).
  double alpha_lo = 0.5;
  double alpha_hi = 1.0;
  /// Availability at which a strategy's parameters equal its sampled
  /// dimension values (the intercept is beta = dim - alpha * anchor). The
  /// paper anchors via beta = 1 - alpha, which makes every strategy perfect
  /// at w = 1 and erases the dimension draws; anchoring at the middle of the
  /// request range keeps the dimensions meaningful while strategies remain
  /// deployable at moderate availability.
  double anchor_availability = 0.625;
  /// Deployment-request parameter range (paper: [0.625, 1]).
  double request_lo = 0.625;
  double request_hi = 1.0;
};

/// Closed sampling interval.
struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

/// Deterministic generator for strategies, profiles and requests.
class Generator {
 public:
  Generator(const GeneratorOptions& options, uint64_t seed);

  /// One dimension value from the configured distribution, clamped to [0,1].
  double SampleDim();

  /// Concrete strategy parameter vectors (the ADPaR experiments consume
  /// these directly). Quality/cost/latency are independent dimension draws.
  std::vector<core::ParamVector> StrategyParams(int count);

  /// Per-strategy linear availability models whose parameters at full
  /// availability (w = 1) equal freshly sampled dimension values: quality
  /// and cost rise with availability (alpha ~ U[alpha_lo, alpha_hi]),
  /// latency falls (alpha ~ -U[alpha_lo, alpha_hi]).
  std::vector<core::StrategyProfile> Profiles(int count);

  /// Deployment requests with parameters ~ U[request_lo, request_hi] and
  /// the given cardinality constraint.
  std::vector<core::DeploymentRequest> Requests(int count, int k);

  /// Requests with per-parameter ranges. The paper samples all three
  /// parameters from one interval; small strategy catalogs (Figures 15/16
  /// run with |S| = 30) need requests whose quality demands are modest and
  /// whose budgets are generous for a meaningful fraction to be serviceable,
  /// so those benches sample asymmetric ranges through this overload.
  std::vector<core::DeploymentRequest> RequestsWithRanges(int count, int k,
                                                          Range quality,
                                                          Range cost,
                                                          Range latency);

 private:
  GeneratorOptions options_;
  Rng rng_;
};

}  // namespace stratrec::workload

#endif  // STRATREC_WORKLOAD_GENERATORS_H_
