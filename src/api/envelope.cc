#include "src/api/envelope.h"

namespace stratrec::api {

StreamEvent StreamEvent::Arrival(core::DeploymentRequest request) {
  StreamEvent event;
  event.kind = Kind::kArrival;
  event.request = std::move(request);
  return event;
}

StreamEvent StreamEvent::Revocation(std::string request_id) {
  StreamEvent event;
  event.kind = Kind::kRevocation;
  event.request_id = std::move(request_id);
  return event;
}

StreamEvent StreamEvent::Completion(std::string request_id) {
  StreamEvent event;
  event.kind = Kind::kCompletion;
  event.request_id = std::move(request_id);
  return event;
}

StreamEvent StreamEvent::AvailabilityChange(AvailabilitySpec availability) {
  StreamEvent event;
  event.kind = Kind::kAvailabilityChange;
  event.availability = std::move(availability);
  return event;
}

const char* StreamEventKindName(StreamEvent::Kind kind) {
  switch (kind) {
    case StreamEvent::Kind::kArrival:
      return "arrival";
    case StreamEvent::Kind::kRevocation:
      return "revocation";
    case StreamEvent::Kind::kCompletion:
      return "completion";
    case StreamEvent::Kind::kAvailabilityChange:
      return "availability-change";
  }
  return "?";
}

const char* AdmissionKindName(core::AdmissionDecision::Kind kind) {
  switch (kind) {
    case core::AdmissionDecision::Kind::kAdmitted:
      return "admitted";
    case core::AdmissionDecision::Kind::kQueued:
      return "queued";
    case core::AdmissionDecision::Kind::kRejected:
      return "rejected";
  }
  return "?";
}

}  // namespace stratrec::api
