// stratrec::Service — the one public entry point of the middle layer.
//
// The paper's StratRec (Figure 1) is a single optimization service between
// requesters and the platform. This facade makes that literal: a platform
// constructs one Service per strategy catalog and drives it in three modes —
//
//   SubmitBatch()  the Figure-1 batch pipeline (wraps core::StratRec),
//   OpenStream()   a session over the Section-7 dynamic setting
//                  (wraps core::OnlineScheduler behind a handle),
//   RunSweep()     the ADPaR solver family side by side, including the
//                  paper's literal sweep (wraps adpar_paper_sweep.h).
//
// The Service is a value-semantic handle over shared, mutex-guarded state
// (the SimGrid facade idiom): copies address the same service, every method
// is safe to call from many threads, and stream sessions keep the service
// alive. Algorithms are selected by registry name (see registry.h), so new
// backends plug in without touching any caller.
#ifndef STRATREC_API_SERVICE_H_
#define STRATREC_API_SERVICE_H_

#include <memory>
#include <string>

#include "src/api/config.h"
#include "src/api/envelope.h"
#include "src/core/stratrec.h"

namespace stratrec::api {

namespace internal {
struct ServiceState;
struct SessionState;
}  // namespace internal

/// A live stream session: the rolling-BatchStrat scheduler of the paper's
/// closing open problem, owned by the service, driven by one requester
/// event loop at a time (methods are mutex-guarded, so sharing a session
/// across threads is safe too).
class StreamSession {
 public:
  /// Stable session id ("stream-000003"); doubles as the report key.
  const std::string& id() const;

  /// Uniform entry point: applies one event, returns the post-event state.
  Result<StreamUpdate> Submit(const StreamEvent& event);

  /// Conveniences over Submit().
  Result<core::AdmissionDecision> Arrive(const core::DeploymentRequest& request);
  Status Revoke(const std::string& request_id);
  Status Complete(const std::string& request_id);
  Status SetAvailability(const AvailabilitySpec& availability);

  /// Capacity snapshot and lifetime counters of this session.
  double availability() const;
  double used_workforce() const;
  size_t active() const;
  size_t pending() const;
  core::OnlineStats stats() const;

 private:
  friend class Service;
  explicit StreamSession(std::shared_ptr<internal::SessionState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::SessionState> state_;
};

/// The session-oriented facade. Construct once per strategy catalog.
class Service {
 public:
  /// Validates the catalog (Aggregator alignment rules) and the config
  /// (registry names resolve, availability spec well-formed).
  static Result<Service> Create(core::Catalog catalog,
                                ServiceConfig config = {});

  /// Convenience overload mirroring core::StratRec::Create.
  static Result<Service> Create(std::vector<core::Strategy> strategies,
                                std::vector<core::StrategyProfile> profiles,
                                ServiceConfig config = {});

  /// Batch mode: the full Figure-1 pipeline on one batch of requests.
  Result<BatchReport> SubmitBatch(const BatchRequest& request) const;

  /// Sweep mode: every target x every named adpar backend at one W.
  Result<SweepReport> RunSweep(const SweepRequest& request) const;

  /// Stream mode: opens an independent session; many sessions may run
  /// concurrently against one service.
  Result<StreamSession> OpenStream(const StreamOptions& options = {}) const;

  /// Registers an availability model under `name` for AvailabilitySpec::
  /// Named lookups (e.g. one model per deployment window). Fails with
  /// kFailedPrecondition when the name is taken.
  Status RegisterAvailabilityModel(std::string name,
                                   core::AvailabilityModel model) const;

  /// The catalog the service was built from (owned by the wrapped
  /// aggregator — the service keeps no second copy).
  const std::vector<core::Strategy>& strategies() const;
  const std::vector<core::StrategyProfile>& profiles() const;

  const ServiceConfig& config() const;
  /// Snapshot of the lifetime counters.
  ServiceStats stats() const;

 private:
  explicit Service(std::shared_ptr<internal::ServiceState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::ServiceState> state_;
};

}  // namespace stratrec::api

namespace stratrec {
// The facade is the product: surface it at the top-level namespace.
using api::Service;
using api::StreamSession;
}  // namespace stratrec

#endif  // STRATREC_API_SERVICE_H_
