// stratrec::Service — the one public entry point of the middle layer.
//
// The paper's StratRec (Figure 1) is a single optimization service between
// requesters and the platform. This facade makes that literal: a platform
// constructs one Service per strategy catalog and drives it in three modes —
//
//   SubmitBatch()  the Figure-1 batch pipeline (wraps core::StratRec),
//   OpenStream()   a session over the Section-7 dynamic setting
//                  (wraps stream::StreamScheduler behind a handle:
//                  executor-parallel pricing over the CatalogIndex plus an
//                  incrementally maintained per-availability snapshot),
//   RunSweep()     the ADPaR solver family side by side, including the
//                  paper's literal sweep (wraps adpar_paper_sweep.h).
//
// The service is asynchronous at heart: SubmitBatchAsync / RunSweepAsync
// enqueue the work on a fixed executor pool (sized by ServiceConfig::
// execution) and return a Ticket<Report> — a future-like handle with
// Wait / TryGet / Cancel / OnComplete (see ticket.h). The synchronous
// methods are thin wrappers (SubmitBatch == SubmitBatchAsync(...).Wait()),
// so every caller funnels through one code path, and the pipeline itself is
// parallel: the workforce matrix and the sweep cross-product partition
// across the same pool.
//
// With ServiceConfig::journal configured, the service records itself: a
// config + catalog record at Create, then one wire-codec line per finished
// async job — the (request, outcome) pair, cancelled tickets included — so
// the resulting trace is self-contained and bench_replay_load can rebuild
// an identical service and assert bit-identical reports. Records are
// encoded on the worker that ran the job; the only lock on that path is
// the journal's own append mutex (around one fwrite), never service state.
//
// The Service is a value-semantic handle over shared state (the SimGrid
// facade idiom): copies address the same service, every method is safe to
// call from many threads, and stream sessions keep the service alive.
// Shared state is sharded for concurrency — stream sessions lock only
// themselves, stats ride a striped atomic path, and the named-model table
// is read-mostly behind a shared mutex — so concurrent requests do not
// contend on one service mutex. Algorithms are selected by registry name
// (see registry.h), so new backends plug in without touching any caller.
#ifndef STRATREC_API_SERVICE_H_
#define STRATREC_API_SERVICE_H_

#include <memory>
#include <string>

#include "src/api/config.h"
#include "src/api/envelope.h"
#include "src/api/ticket.h"
#include "src/core/stratrec.h"

namespace stratrec::api {

namespace internal {
struct ServiceState;
struct SessionState;
}  // namespace internal

/// A live stream session: the rolling-BatchStrat scheduler of the paper's
/// closing open problem, owned by the service, driven by one requester
/// event loop at a time (methods are mutex-guarded, so sharing a session
/// across threads is safe too).
class StreamSession {
 public:
  /// Stable session id ("stream-000003"); doubles as the report key.
  const std::string& id() const;

  /// Uniform entry point: applies one event, returns the post-event state.
  Result<StreamUpdate> Submit(const StreamEvent& event);

  /// Conveniences over Submit().
  Result<core::AdmissionDecision> Arrive(const core::DeploymentRequest& request);
  Status Revoke(const std::string& request_id);
  Status Complete(const std::string& request_id);
  Status SetAvailability(const AvailabilitySpec& availability);

  /// Capacity snapshot and lifetime counters of this session.
  double availability() const;
  double used_workforce() const;
  size_t active() const;
  size_t pending() const;
  core::OnlineStats stats() const;

 private:
  friend class Service;
  explicit StreamSession(std::shared_ptr<internal::SessionState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::SessionState> state_;
};

/// The session-oriented facade. Construct once per strategy catalog.
class Service {
 public:
  /// Validates the catalog (Aggregator alignment rules) and the config
  /// (registry names resolve, availability spec well-formed, executor
  /// sizing sane), then spins up the worker pool.
  static Result<Service> Create(core::Catalog catalog,
                                ServiceConfig config = {});

  /// Convenience overload mirroring core::StratRec::Create.
  static Result<Service> Create(std::vector<core::Strategy> strategies,
                                std::vector<core::StrategyProfile> profiles,
                                ServiceConfig config = {});

  /// Batch mode, asynchronous: enqueues the full Figure-1 pipeline on the
  /// worker pool and returns immediately. The ticket id is the request_id
  /// the finished BatchReport will carry.
  Ticket<BatchReport> SubmitBatchAsync(BatchRequest request) const;

  /// Sweep mode, asynchronous: every target x every named adpar backend at
  /// one W, the cells themselves fanned out across the pool.
  Ticket<SweepReport> RunSweepAsync(SweepRequest request) const;

  /// Shard scan, asynchronous: the scatter half of the shard router's
  /// scatter/gather (see src/router/shard_router.h). Computes per-request
  /// workforce-row views, the shard's parameter block, and per-k ADPaR
  /// candidate orderings at the request's availability — which is used
  /// verbatim (no resolution or quantization; the router already did both).
  /// Scans ride the same executor and snapshot cache as batches and sweeps
  /// but are not journaled and bump neither the batch nor the sweep counter.
  Ticket<ShardScanReport> ScanShardAsync(ShardScanRequest request) const;

  /// Synchronous wrappers: SubmitBatchAsync(request).Wait() / the sweep
  /// equivalent — same code path, same results, just blocking.
  Result<BatchReport> SubmitBatch(BatchRequest request) const;
  Result<SweepReport> RunSweep(SweepRequest request) const;

  /// Stream mode: opens an independent session; many sessions may run
  /// concurrently against one service.
  Result<StreamSession> OpenStream(const StreamOptions& options = {}) const;

  /// Registers an availability model under `name` for AvailabilitySpec::
  /// Named lookups (e.g. one model per deployment window). Fails with
  /// kFailedPrecondition when the name is taken.
  Status RegisterAvailabilityModel(std::string name,
                                   core::AvailabilityModel model) const;

  /// The catalog the service was built from (owned by the wrapped
  /// aggregator — the service keeps no second copy).
  const std::vector<core::Strategy>& strategies() const;
  const std::vector<core::StrategyProfile>& profiles() const;

  const ServiceConfig& config() const;
  /// Worker threads of the service executor (after resolving 0 to the
  /// hardware concurrency).
  size_t worker_threads() const;
  /// Snapshot of the lifetime counters (folds the striped atomics) plus the
  /// executor gauges: queue depth (injection + per-worker deques), active
  /// workers, and the work-stealing steal/local-hit counters.
  ServiceStats stats() const;
  /// Appends a stats-snapshot record to the journal, so a trace carries
  /// saturation checkpoints alongside its (request, outcome) pairs. Fails
  /// with kFailedPrecondition when journaling is not configured.
  Status RecordStatsSnapshot() const;
  /// As above, stamping the record with a virtual-time instant (journal
  /// format v6) — the platform simulator's checkpoint hook, so a trace
  /// tells when in simulated time each saturation snapshot was taken.
  Status RecordStatsSnapshot(double sim_time) const;

 private:
  explicit Service(std::shared_ptr<internal::ServiceState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::ServiceState> state_;
};

}  // namespace stratrec::api

namespace stratrec {
// The facade is the product: surface it at the top-level namespace.
using api::Service;
using api::StreamSession;
using api::Ticket;
}  // namespace stratrec

#endif  // STRATREC_API_SERVICE_H_
