// Uniform request / report envelopes of the Service API.
//
// Every entry point takes one value-type request and returns one value-type
// report stamped with a service-assigned, stable request id ("batch-000007",
// "sweep-000012", "stream-000003"); ids share one counter per service, so a
// report is attributable across modes. Failures travel through the Status /
// Result taxonomy of src/common/status.h — kInvalidArgument for malformed
// envelopes, kNotFound for unknown registry or model names, kInfeasible for
// well-formed problems without a solution.
#ifndef STRATREC_API_ENVELOPE_H_
#define STRATREC_API_ENVELOPE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/api/availability.h"
#include "src/core/online.h"
#include "src/core/stratrec.h"

namespace stratrec::api {

// ---------------------------------------------------------------------------
// Batch mode (wraps core::StratRec).
// ---------------------------------------------------------------------------

/// One batch of deployment requests. Optional fields override the service's
/// BatchDefaults for this call only.
struct BatchRequest {
  std::vector<core::DeploymentRequest> requests;
  AvailabilitySpec availability;  ///< kDefault -> service config
  std::optional<std::string> algorithm;
  std::optional<core::Objective> objective;
  std::optional<core::AggregationMode> aggregation;
  std::optional<core::WorkforcePolicy> policy;
  std::optional<bool> recommend_alternatives;
  std::optional<std::string> adpar_solver;
};

/// Outcome of one SubmitBatch call.
struct BatchReport {
  std::string request_id;  ///< service-assigned, stable
  std::string algorithm;   ///< resolved backend name
  double availability = 0.0;  ///< resolved expected W
  /// Figure-1 pipeline output: aggregator stage, batch outcome, alternatives.
  core::StratRecReport result;
};

// ---------------------------------------------------------------------------
// Sweep mode (wraps the ADPaR solver family, including the paper's literal
// sweep from src/core/adpar_paper_sweep.h).
// ---------------------------------------------------------------------------

/// Solve every target with every named adpar backend at one availability —
/// the alternative-recommendation counterpart of SubmitBatch, and the
/// machinery behind the Figure 17 quality comparison.
struct SweepRequest {
  /// Each target supplies thresholds + k; ids label the report rows
  /// (empty ids are replaced by "target-<index>").
  std::vector<core::DeploymentRequest> targets;
  /// Registry names; empty -> the service's default adpar solver.
  std::vector<std::string> solvers;
  AvailabilitySpec availability;  ///< kDefault -> service config
};

/// One (target, solver) cell of a sweep.
struct SweepOutcome {
  std::string target_id;
  std::string solver;
  /// kInfeasible when k exceeds the catalog; the envelope records it per
  /// cell rather than failing the whole sweep.
  Status status;
  core::AdparResult result;  ///< valid iff status.ok()
};

/// Outcome of one RunSweep call: |targets| x |solvers| cells.
struct SweepReport {
  std::string request_id;
  double availability = 0.0;
  /// Catalog parameters estimated at `availability` — the space the solvers
  /// searched, index-aligned with the service catalog.
  std::vector<core::ParamVector> strategy_params;
  std::vector<SweepOutcome> outcomes;
};

// ---------------------------------------------------------------------------
// Stream mode (wraps core::OnlineScheduler behind a session handle).
// ---------------------------------------------------------------------------

/// Per-session overrides of the service's StreamDefaults plus the session's
/// starting availability.
struct StreamOptions {
  AvailabilitySpec availability;  ///< kDefault -> service config
  std::optional<size_t> max_pending;
  std::optional<bool> readmit_on_release;
  std::optional<core::Objective> objective;
  std::optional<core::AggregationMode> aggregation;
  std::optional<core::WorkforcePolicy> policy;
};

/// One event of a stream session — the Section 7 open problem's vocabulary:
/// arrivals, revocations, completions, and availability (window) changes.
struct StreamEvent {
  enum class Kind {
    kArrival,
    kRevocation,
    kCompletion,
    kAvailabilityChange,
  };
  Kind kind = Kind::kArrival;
  core::DeploymentRequest request;  ///< kArrival
  std::string request_id;           ///< kRevocation / kCompletion
  AvailabilitySpec availability;    ///< kAvailabilityChange

  static StreamEvent Arrival(core::DeploymentRequest request);
  static StreamEvent Revocation(std::string request_id);
  static StreamEvent Completion(std::string request_id);
  static StreamEvent AvailabilityChange(AvailabilitySpec availability);
};

/// "arrival", "revocation", "completion", "availability-change".
const char* StreamEventKindName(StreamEvent::Kind kind);

/// "admitted", "queued", "rejected" — display helper for admission outcomes.
const char* AdmissionKindName(core::AdmissionDecision::Kind kind);

/// What one stream event did, plus a post-event capacity snapshot.
struct StreamUpdate {
  std::string session_id;
  StreamEvent::Kind kind = StreamEvent::Kind::kArrival;
  std::string request_id;            ///< the affected request ("" for window changes)
  core::AdmissionDecision decision;  ///< meaningful for kArrival only
  double availability = 0.0;
  double used_workforce = 0.0;
  size_t active = 0;
  size_t pending = 0;
};

// ---------------------------------------------------------------------------
// Service-level accounting.
// ---------------------------------------------------------------------------

/// Lifetime counters of one Service (snapshot; see Service::stats()).
///
/// Counters are maintained on a striped atomic path (no shared lock), so
/// concurrent requests never contend on stats accounting; stats() folds the
/// stripes into this snapshot.
struct ServiceStats {
  size_t batches = 0;
  size_t sweeps = 0;
  size_t streams_opened = 0;
  size_t stream_events = 0;
  /// Deployment requests seen across batches and stream arrivals.
  size_t requests_processed = 0;
  /// Async tickets withdrawn via Cancel() before a worker claimed them.
  size_t cancelled = 0;
};

}  // namespace stratrec::api

#endif  // STRATREC_API_ENVELOPE_H_
