// Uniform request / report envelopes of the Service API.
//
// Every entry point takes one value-type request and returns one value-type
// report stamped with a stable request id. By default ids are
// service-assigned ("batch-000007", "sweep-000012", "stream-000003") from
// one counter per service, so a report is attributable across modes; a
// request may instead carry its own `request_id`, which the service adopts
// verbatim — the hook out-of-process front ends (and the replay harness,
// which must reproduce recorded ids) use to control attribution. Failures
// travel through the Status / Result taxonomy of src/common/status.h —
// kInvalidArgument for malformed envelopes, kNotFound for unknown registry
// or model names, kInfeasible for well-formed problems without a solution.
//
// Envelopes are serialization-ready value types: every struct here is
// deep-comparable (operator==) and round-trips through the stratrec::wire
// codec (src/api/codec.h) to line-delimited JSON with stable field names —
// the journal format of src/common/journal.h and the wire format a future
// gRPC/HTTP front end shares.
#ifndef STRATREC_API_ENVELOPE_H_
#define STRATREC_API_ENVELOPE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/api/availability.h"
#include "src/core/online.h"
#include "src/core/stratrec.h"

namespace stratrec::api {

// ---------------------------------------------------------------------------
// Batch mode (wraps core::StratRec).
// ---------------------------------------------------------------------------

/// One batch of deployment requests. Optional fields override the service's
/// BatchDefaults for this call only.
struct BatchRequest {
  std::vector<core::DeploymentRequest> requests;
  AvailabilitySpec availability;  ///< kDefault -> service config
  std::optional<std::string> algorithm;
  std::optional<core::Objective> objective;
  std::optional<core::AggregationMode> aggregation;
  std::optional<core::WorkforcePolicy> policy;
  std::optional<bool> recommend_alternatives;
  std::optional<std::string> adpar_solver;
  /// Time budget in milliseconds, relative to submission (relative so a
  /// replayed journal grants the recorded request a fresh budget). 0 (the
  /// default) means no deadline. Work still queued when the budget runs out
  /// completes with kDeadlineExceeded instead of executing; the serving tier
  /// maps that to HTTP 504 and fills it from the X-Stratrec-Deadline-Ms
  /// header.
  double deadline_ms = 0.0;
  /// Caller-assigned report id; empty (the default) means service-assigned.
  /// Uniqueness is the caller's responsibility. Declared last so aggregate
  /// initialization of the workload fields stays source-compatible.
  std::string request_id;

  bool operator==(const BatchRequest&) const = default;
};

/// Outcome of one SubmitBatch call.
struct BatchReport {
  std::string request_id;  ///< stable; caller- or service-assigned
  std::string algorithm;   ///< resolved backend name
  double availability = 0.0;  ///< resolved expected W
  /// Figure-1 pipeline output: aggregator stage, batch outcome, alternatives.
  core::StratRecReport result;

  bool operator==(const BatchReport&) const = default;
};

// ---------------------------------------------------------------------------
// Sweep mode (wraps the ADPaR solver family, including the paper's literal
// sweep from src/core/adpar_paper_sweep.h).
// ---------------------------------------------------------------------------

/// Solve every target with every named adpar backend at one availability —
/// the alternative-recommendation counterpart of SubmitBatch, and the
/// machinery behind the Figure 17 quality comparison.
struct SweepRequest {
  /// Each target supplies thresholds + k; ids label the report rows
  /// (empty ids are replaced by "target-<index>").
  std::vector<core::DeploymentRequest> targets;
  /// Registry names; empty -> the service's default adpar solver.
  std::vector<std::string> solvers;
  AvailabilitySpec availability;  ///< kDefault -> service config
  /// Time budget in ms relative to submission; 0 = none. See
  /// BatchRequest::deadline_ms.
  double deadline_ms = 0.0;
  /// Caller-assigned report id; empty (the default) means service-assigned.
  /// Declared last: see BatchRequest::request_id.
  std::string request_id;

  bool operator==(const SweepRequest&) const = default;
};

/// One (target, solver) cell of a sweep.
struct SweepOutcome {
  std::string target_id;
  std::string solver;
  /// kInfeasible when k exceeds the catalog; the envelope records it per
  /// cell rather than failing the whole sweep.
  Status status;
  core::AdparResult result;  ///< valid iff status.ok()

  bool operator==(const SweepOutcome&) const = default;
};

/// Outcome of one RunSweep call: |targets| x |solvers| cells.
struct SweepReport {
  std::string request_id;
  double availability = 0.0;
  /// Catalog parameters estimated at `availability` — the space the solvers
  /// searched, index-aligned with the service catalog.
  std::vector<core::ParamVector> strategy_params;
  std::vector<SweepOutcome> outcomes;

  bool operator==(const SweepReport&) const = default;
};

// ---------------------------------------------------------------------------
// Shard scan (the scatter half of the router's scatter/gather).
// ---------------------------------------------------------------------------

/// Everything the shard router needs from one shard to reassemble the
/// unsharded answer: per-request workforce-row views, the shard's estimated
/// parameter block at W, and the per-k ADPaR candidate orderings
/// (skyline-pruned skybands in shard-local sorted order). The router merges
/// these across shards with the global tie rules — (requirement, global
/// index) for rows, (cost, global index) / (quality desc, global index) for
/// skybands — which reproduces the single-shard orderings exactly.
///
/// Unlike the public envelopes these never travel the wire codec: the
/// router and its shards share one process.
struct ShardScanRequest {
  /// Rows of the workforce matrix to scan; `requests[i].k` bounds row i's
  /// top list. Empty for a sweep-only scan.
  std::vector<core::DeploymentRequest> requests;
  /// Resolved + quantized expected availability W. The shard uses it
  /// verbatim for its snapshot — resolution and quantization already
  /// happened on the router, exactly once, like the unsharded path.
  double availability = 0.0;
  core::WorkforcePolicy policy = core::WorkforcePolicy::kMinimalWorkforce;
  /// Distinct cardinalities needing ADPaR candidate orderings.
  std::vector<int> skyband_ks;
  /// Return the shard's full parameter block (the router caches the merged
  /// block per W and skips re-fetching it on later scans).
  bool want_params = true;
  /// Caller-assigned report id; empty (the default) means service-assigned.
  std::string request_id;

  bool operator==(const ShardScanRequest&) const = default;
};

/// One workforce-matrix row, shard-locally folded (see
/// core::WorkforceMatrix::TopStrategies): the shard's feasible count plus
/// its min(k, feasible) cheapest strategies ascending by (requirement,
/// local index).
struct ShardRequestScan {
  size_t feasible_count = 0;
  std::vector<size_t> strategies;    ///< shard-local strategy indices
  std::vector<double> requirements;  ///< index-aligned with `strategies`

  bool operator==(const ShardRequestScan&) const = default;
};

/// The shard's ADPaR candidate orderings for one cardinality k: the
/// skyline-pruned (or full, when pruning is a no-op) by-cost and
/// by-quality-descending index lists, in shard-local sorted order.
struct ShardSkyband {
  int k = 0;
  std::vector<size_t> by_cost;          ///< ascending (cost, local index)
  std::vector<size_t> by_quality_desc;  ///< descending quality, ties by index

  bool operator==(const ShardSkyband&) const = default;
};

/// Outcome of one ScanShardAsync call.
struct ShardScanReport {
  std::string request_id;
  double availability = 0.0;
  /// The shard's estimated ParamVector block at W (bit-identical to the
  /// corresponding slice of the unsharded block); empty unless requested.
  std::vector<core::ParamVector> params;
  std::vector<ShardRequestScan> rows;  ///< index-aligned with the requests
  std::vector<ShardSkyband> skybands;  ///< one per requested cardinality

  bool operator==(const ShardScanReport&) const = default;
};

// ---------------------------------------------------------------------------
// Stream mode (wraps stream::StreamScheduler behind a session handle).
// ---------------------------------------------------------------------------

/// Per-session overrides of the service's StreamDefaults plus the session's
/// starting availability.
struct StreamOptions {
  AvailabilitySpec availability;  ///< kDefault -> service config
  std::optional<size_t> max_pending;
  std::optional<bool> readmit_on_release;
  std::optional<core::Objective> objective;
  std::optional<core::AggregationMode> aggregation;
  std::optional<core::WorkforcePolicy> policy;
  /// Serve an ADPaR alternative (paper Section 4) for ineligible arrivals —
  /// the stream twin of BatchRequest::recommend_alternatives. Unset falls
  /// back to StreamDefaults (off).
  std::optional<bool> recommend_alternatives;
  /// Time budget in ms for opening the session, relative to the open call;
  /// 0 = none. See BatchRequest::deadline_ms. (Individual stream events are
  /// synchronous and carry no budget of their own.)
  double deadline_ms = 0.0;
  /// Caller-assigned session id; empty (the default) means service-assigned
  /// ("stream-000003"). The hook the replay harness uses to reproduce
  /// recorded session ids, mirroring BatchRequest::request_id. Declared
  /// last so aggregate initialization stays source-compatible.
  std::string session_id;

  bool operator==(const StreamOptions&) const = default;
};

/// One event of a stream session — the Section 7 open problem's vocabulary:
/// arrivals, revocations, completions, and availability (window) changes.
struct StreamEvent {
  enum class Kind {
    kArrival,
    kRevocation,
    kCompletion,
    kAvailabilityChange,
  };
  Kind kind = Kind::kArrival;
  core::DeploymentRequest request;  ///< kArrival
  std::string request_id;           ///< kRevocation / kCompletion
  AvailabilitySpec availability;    ///< kAvailabilityChange

  static StreamEvent Arrival(core::DeploymentRequest request);
  static StreamEvent Revocation(std::string request_id);
  static StreamEvent Completion(std::string request_id);
  static StreamEvent AvailabilityChange(AvailabilitySpec availability);

  bool operator==(const StreamEvent&) const = default;
};

/// "arrival", "revocation", "completion", "availability-change".
const char* StreamEventKindName(StreamEvent::Kind kind);

/// "admitted", "queued", "rejected" — display helper for admission outcomes.
const char* AdmissionKindName(core::AdmissionDecision::Kind kind);

/// What one stream event did, plus a post-event capacity snapshot. Round-
/// trips the wire codec (the "stream-event" journal record pairs it with
/// its StreamEvent), so replay can assert byte-identical updates.
struct StreamUpdate {
  std::string session_id;
  StreamEvent::Kind kind = StreamEvent::Kind::kArrival;
  std::string request_id;            ///< the affected request ("" for window changes)
  core::AdmissionDecision decision;  ///< meaningful for kArrival only
  /// ADPaR alternative for an ineligible arrival; only set when the session
  /// runs with recommend_alternatives and the solve succeeded.
  bool has_alternative = false;
  core::AdparResult alternative;  ///< valid iff has_alternative
  double availability = 0.0;
  double used_workforce = 0.0;
  size_t active = 0;
  size_t pending = 0;

  bool operator==(const StreamUpdate&) const = default;
};

// ---------------------------------------------------------------------------
// Service-level accounting.
// ---------------------------------------------------------------------------

/// Lifetime counters of one Service (snapshot; see Service::stats()).
///
/// Counters are maintained on a striped atomic path (no shared lock), so
/// concurrent requests never contend on stats accounting; stats() folds the
/// stripes into this snapshot.
struct ServiceStats {
  size_t batches = 0;
  size_t sweeps = 0;
  size_t streams_opened = 0;
  size_t stream_events = 0;
  /// Pending stream requests re-admitted by density-order drains after a
  /// revocation, completion, or availability raise freed capacity.
  size_t stream_reschedules = 0;
  /// Incremental-snapshot maintenance across all stream sessions: events
  /// absorbed in O(1) without re-estimating the per-W derived block vs
  /// availability changes that moved the quantized W and re-estimated it.
  size_t snapshot_delta_updates = 0;
  size_t snapshot_rebuilds = 0;
  /// Deployment requests seen across batches and stream arrivals.
  size_t requests_processed = 0;
  /// Async tickets withdrawn via Cancel() before a worker claimed them.
  size_t cancelled = 0;
  /// Instantaneous executor gauges (not lifetime counters), sampled at
  /// stats() time: tasks waiting across the pool's queues (injection +
  /// per-worker deques, one consistent total) and workers currently running
  /// a task. The raw accessors live on stratrec::Executor (QueueDepth /
  /// ActiveWorkers); they are surfaced here so load shedding has
  /// service-level data.
  size_t queue_depth = 0;
  size_t active_workers = 0;
  /// Work-stealing counters (lifetime, from Executor::StealCount /
  /// LocalHitCount): how pool tasks reached their thread. A high steal
  /// share means the pool is rebalancing across workers; a high local share
  /// means fan-out stayed cache-local on the worker that spawned it.
  size_t steals = 0;
  size_t local_hits = 0;
  /// Availability-snapshot cache counters (lifetime): how often a job that
  /// needed per-W derived state found it cached vs had to build it. A low
  /// hit share on a repeated-availability workload means the cache is
  /// undersized (or quantization too fine) — see ServiceConfig::cache.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Wall-clock nanoseconds spent building the catalog's SoA index at
  /// Service::Create (core::CatalogIndex; a one-time cost every batch
  /// amortizes).
  size_t index_build_nanos = 0;
  /// Admission control (lifetime): requests turned away because the queue
  /// gauge exceeded the configured ceiling, and how many of those rejections
  /// carried a back-off hint (HTTP 429 + Retry-After on the serving tier).
  /// Zero on a Service that fronts no admission controller — the shard
  /// router and HTTP tier maintain them, but they travel in ServiceStats so
  /// one stats envelope (and one codec) covers both tiers.
  size_t rejected_requests = 0;
  size_t retry_after_hints = 0;
  /// Fault-tolerance counters (lifetime; journal format v7). Like the
  /// admission counters above, the upper tiers maintain most of them:
  /// `deadline_exceeded` counts work abandoned because its deadline_ms
  /// budget ran out (Service and ShardRouter both); `retries` counts
  /// HttpClient re-sends after a transport failure or 429; `failovers`
  /// counts router scans re-dispatched to another replica after a replica
  /// failed or timed out; `hedges_won` counts hedged duplicate scans that
  /// beat the primary.
  size_t deadline_exceeded = 0;
  size_t retries = 0;
  size_t failovers = 0;
  size_t hedges_won = 0;
  /// Active SIMD dispatch level of the SoA kernels ("avx2" or "scalar";
  /// core::kernels::DispatchLevelName), sampled at stats() time. Surfaced on
  /// /v1/stats so a fleet can verify which code path each box runs — a
  /// binary on pre-AVX2 hardware or started with STRATREC_FORCE_SCALAR=1
  /// reports "scalar".
  std::string kernel_dispatch;

  bool operator==(const ServiceStats&) const = default;
};

}  // namespace stratrec::api

#endif  // STRATREC_API_ENVELOPE_H_
