// Ticket<Report> — the future-like handle of the asynchronous Service API.
//
// SubmitBatchAsync / RunSweepAsync enqueue work on the service executor and
// immediately return a ticket whose id() equals the request_id the finished
// report will carry. A ticket supports:
//
//   Wait()        block until the job finishes and retrieve the outcome,
//   TryGet()      non-blocking probe (nullopt while queued or running),
//   Cancel()      withdraw a job that has not started yet,
//   OnComplete()  a completion callback, invoked exactly once.
//
// Retrieval is single-consumer (std::future::get semantics): the first
// Wait()/TryGet() that observes the outcome moves it out; later retrievals
// fail with kFailedPrecondition. Cancel() on a queued job completes the
// ticket with kCancelled and returns true; once the job has started (or
// finished) it returns false and the job runs to completion. The callback
// fires exactly once, from the thread that completes the job (or inline
// from OnComplete() when the outcome already landed), and always *before*
// the outcome becomes retrievable — so a callback never races a concurrent
// Wait() on another thread. Callbacks run on a pool worker: keep them short
// and never block one on another ticket (on a small pool that can deadlock
// the queue behind it).
//
// Tickets are value-semantic handles over shared state; copies address the
// same job. Dropping every ticket does not cancel the job, and tickets stay
// valid after the Service handle is gone (the service destructor drains its
// queue before returning). One hard rule: a callback must never release the
// last Service handle — the pool cannot tear itself down from one of its
// own workers (the executor aborts with a diagnostic if this happens).
// Waiting for the callback-carrying ticket before dropping the final handle
// is always sufficient.
#ifndef STRATREC_API_TICKET_H_
#define STRATREC_API_TICKET_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "src/common/status.h"

namespace stratrec::api {

class Service;

template <typename T>
class Ticket;

namespace internal {

template <typename T>
struct TicketShared;

/// Constructs a Ticket over existing shared state. The ticket constructor
/// is private to keep arbitrary callers from minting handles; the shard
/// router (and any future in-process tier that completes its own jobs)
/// builds tickets through this factory instead of befriending Ticket.
template <typename T>
Ticket<T> MakeTicket(std::shared_ptr<TicketShared<T>> shared);

/// Shared state of one asynchronous job. The executor task and every ticket
/// copy point at one of these; `phase` gates the cancel/run race.
///
/// Completion protocol (Finish and the cancel path alike): move to
/// kCompleting and take the callback under the lock, fire the callback on a
/// value not yet published, then publish the outcome and kDone. Consumers
/// only touch `outcome` at kDone, so callback and consumption never alias.
template <typename T>
struct TicketShared {
  enum class Phase {
    kQueued,      ///< submitted, not yet claimed by a worker
    kRunning,     ///< a worker claimed it; Cancel() can no longer win
    kCompleting,  ///< outcome computed, callback firing, not yet retrievable
    kDone,        ///< outcome published (result, error, or kCancelled)
  };

  explicit TicketShared(std::string id_in) : id(std::move(id_in)) {}

  const std::string id;

  std::mutex mutex;
  std::condition_variable done;
  Phase phase = Phase::kQueued;
  std::optional<Result<T>> outcome;  ///< set exactly once, published at kDone
  bool consumed = false;
  bool callback_registered = false;
  std::function<void(const Result<T>&)> callback;

  /// Worker-side: kQueued -> kRunning. False when Cancel() won the race.
  bool BeginRun() {
    std::lock_guard<std::mutex> lock(mutex);
    if (phase != Phase::kQueued) return false;
    phase = Phase::kRunning;
    return true;
  }

  /// Worker-side completion; also the tail of a successful Cancel().
  void Finish(Result<T> result) {
    std::function<void(const Result<T>&)> fire;
    {
      std::lock_guard<std::mutex> lock(mutex);
      phase = Phase::kCompleting;
      fire = std::move(callback);
      callback = nullptr;
    }
    if (fire) fire(result);  // `result` is still thread-local here
    {
      std::lock_guard<std::mutex> lock(mutex);
      outcome.emplace(std::move(result));
      phase = Phase::kDone;
    }
    done.notify_all();
  }

  /// Caller-side: kQueued -> cancelled outcome. False once running/done.
  bool Cancel() {
    return CancelWith(
        Status::Cancelled("ticket " + id + " cancelled before execution"));
  }

  /// Like Cancel() but with an explicit error outcome — the deadline path
  /// completes expired queued work with kDeadlineExceeded through the same
  /// claim-then-Finish protocol, so callbacks and consumers see no new
  /// states.
  bool CancelWith(Status status) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (phase != Phase::kQueued) return false;
      phase = Phase::kRunning;  // claim it exactly like a worker would
    }
    Finish(std::move(status));
    return true;
  }
};

}  // namespace internal

template <typename T>
class Ticket {
 public:
  /// The service-assigned request id ("batch-000007"); the finished
  /// report's request_id matches it.
  const std::string& id() const { return shared_->id; }

  /// Blocks until the outcome lands, then moves it out (single-consumer).
  /// A second retrieval fails with kFailedPrecondition.
  Result<T> Wait() {
    std::unique_lock<std::mutex> lock(shared_->mutex);
    shared_->done.wait(lock, [this]() {
      return shared_->phase == Shared::Phase::kDone;
    });
    return ConsumeWhileLocked();
  }

  /// Bounded Wait: blocks up to `timeout`, then either moves the outcome out
  /// (single-consumer, like Wait) or returns nullopt with the job untouched —
  /// a timed-out WaitFor consumes nothing, so the caller can retry, hedge,
  /// or fall back to Wait(). The failover/hedging paths in ShardRouter are
  /// built on this.
  template <typename Rep, typename Period>
  std::optional<Result<T>> WaitFor(
      std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(shared_->mutex);
    if (!shared_->done.wait_for(lock, timeout, [this]() {
          return shared_->phase == Shared::Phase::kDone;
        })) {
      return std::nullopt;
    }
    return ConsumeWhileLocked();
  }

  /// Non-blocking probe: nullopt while the job is queued, running, or still
  /// firing its callback; otherwise the moved-out outcome (single-consumer,
  /// like Wait).
  std::optional<Result<T>> TryGet() {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    if (shared_->phase != Shared::Phase::kDone) return std::nullopt;
    return ConsumeWhileLocked();
  }

  /// Withdraws a job that has not started. True when the cancel won; the
  /// outcome is then Status kCancelled (and the callback, if any, fires with
  /// it). False once the job is running or done — the result still arrives
  /// normally.
  bool Cancel() { return shared_->Cancel(); }

  /// Cancel with an explicit error outcome (e.g. kDeadlineExceeded). Same
  /// queued-only semantics as Cancel().
  bool CancelWith(Status status) {
    return shared_->CancelWith(std::move(status));
  }

  /// Registers the completion callback (at most one per ticket). Fires
  /// exactly once with the outcome by const reference: from the completing
  /// thread, or from this call when the outcome already landed (then with a
  /// private copy, so it cannot race a concurrent consumer). Fails with
  /// kFailedPrecondition on a second registration or when the outcome was
  /// already consumed, and kInvalidArgument on a null callback.
  Status OnComplete(std::function<void(const Result<T>&)> callback) {
    if (!callback) {
      return Status::InvalidArgument("completion callback is null");
    }
    std::optional<Result<T>> landed;
    {
      std::unique_lock<std::mutex> lock(shared_->mutex);
      if (shared_->callback_registered) {
        return Status::FailedPrecondition(
            "ticket " + shared_->id + " already has a completion callback");
      }
      shared_->callback_registered = true;
      if (shared_->phase == Shared::Phase::kQueued ||
          shared_->phase == Shared::Phase::kRunning) {
        shared_->callback = std::move(callback);
        return Status::OK();
      }
      // kCompleting: the completer already collected (no) callback; wait out
      // the short publication window and fire ourselves.
      shared_->done.wait(lock, [this]() {
        return shared_->phase == Shared::Phase::kDone;
      });
      if (shared_->consumed) {
        return Status::FailedPrecondition(
            "ticket " + shared_->id + " outcome was already consumed");
      }
      landed = *shared_->outcome;  // copy under the lock
    }
    callback(*landed);
    return Status::OK();
  }

  /// True once the outcome is retrievable (even if already consumed).
  bool done() const {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    return shared_->phase == Shared::Phase::kDone;
  }

 private:
  using Shared = internal::TicketShared<T>;
  friend class Service;
  template <typename U>
  friend Ticket<U> internal::MakeTicket(
      std::shared_ptr<internal::TicketShared<U>> shared);
  explicit Ticket(std::shared_ptr<Shared> shared)
      : shared_(std::move(shared)) {}

  Result<T> ConsumeWhileLocked() {
    if (shared_->consumed) {
      return Status::FailedPrecondition("ticket " + shared_->id +
                                        " was already consumed");
    }
    shared_->consumed = true;
    return std::move(*shared_->outcome);
  }

  std::shared_ptr<Shared> shared_;
};

namespace internal {

template <typename T>
Ticket<T> MakeTicket(std::shared_ptr<TicketShared<T>> shared) {
  return Ticket<T>(std::move(shared));
}

}  // namespace internal

}  // namespace stratrec::api

#endif  // STRATREC_API_TICKET_H_
