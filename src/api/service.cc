#include "src/api/service.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/api/registry.h"

namespace stratrec::api {

namespace internal {

/// Shared state behind every Service handle and its sessions.
struct ServiceState {
  ServiceConfig config;
  /// The wrapped batch pipeline; its aggregator owns the catalog (the
  /// service keeps no second copy). ProcessBatch is const and therefore
  /// safe under concurrent SubmitBatch calls without locking.
  core::StratRec stratrec;

  std::atomic<uint64_t> next_id{1};
  mutable std::mutex mutex;  ///< guards `models` and `stats`
  std::unordered_map<std::string, core::AvailabilityModel> models;
  ServiceStats stats;

  ServiceState(ServiceConfig config_in, core::StratRec stratrec_in)
      : config(std::move(config_in)), stratrec(std::move(stratrec_in)) {}

  const std::vector<core::StrategyProfile>& profiles() const {
    return stratrec.aggregator().profiles();
  }

  std::string NextId(const char* prefix) {
    const uint64_t id = next_id.fetch_add(1, std::memory_order_relaxed);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%s-%06llu", prefix,
                  static_cast<unsigned long long>(id));
    return buffer;
  }

  Result<double> Resolve(const AvailabilitySpec& spec) const {
    std::lock_guard<std::mutex> lock(mutex);
    return ResolveWhileLocked(spec);
  }

  Result<double> ResolveWhileLocked(const AvailabilitySpec& spec) const {
    double fallback = 0.5;
    if (config.availability.kind != AvailabilitySpec::Kind::kDefault &&
        spec.kind == AvailabilitySpec::Kind::kDefault) {
      auto configured = ResolveAvailability(config.availability, models, 0.5);
      if (!configured.ok()) return configured.status();
      fallback = *configured;
    }
    return ResolveAvailability(spec, models, fallback);
  }
};

/// One stream session: the (not thread-safe) core scheduler plus its own
/// lock and a reference keeping the owning service alive.
struct SessionState {
  std::shared_ptr<ServiceState> service;
  std::string id;
  mutable std::mutex mutex;  ///< serializes the wrapped scheduler
  core::OnlineScheduler scheduler;

  SessionState(std::shared_ptr<ServiceState> service_in, std::string id_in,
               core::OnlineScheduler scheduler_in)
      : service(std::move(service_in)),
        id(std::move(id_in)),
        scheduler(std::move(scheduler_in)) {}
};

}  // namespace internal

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

Result<Service> Service::Create(core::Catalog catalog, ServiceConfig config) {
  STRATREC_RETURN_NOT_OK(ValidateConfig(config));
  auto stratrec = core::StratRec::Create(std::move(catalog));
  if (!stratrec.ok()) return stratrec.status();
  return Service(std::make_shared<internal::ServiceState>(
      std::move(config), std::move(*stratrec)));
}

Result<Service> Service::Create(std::vector<core::Strategy> strategies,
                                std::vector<core::StrategyProfile> profiles,
                                ServiceConfig config) {
  return Create(
      core::Catalog{std::move(strategies), std::move(profiles)},
      std::move(config));
}

Result<BatchReport> Service::SubmitBatch(const BatchRequest& request) const {
  const BatchDefaults& defaults = state_->config.batch;
  const std::string algorithm = request.algorithm.value_or(defaults.algorithm);
  auto solver = AlgorithmRegistry::Global().FindBatch(algorithm);
  if (!solver.ok()) return solver.status();
  auto availability = state_->Resolve(request.availability);
  if (!availability.ok()) return availability.status();

  core::StratRecOptions options;
  options.batch.objective = request.objective.value_or(defaults.objective);
  options.batch.aggregation =
      request.aggregation.value_or(defaults.aggregation);
  options.batch.policy = request.policy.value_or(defaults.policy);
  options.recommend_alternatives =
      request.recommend_alternatives.value_or(defaults.recommend_alternatives);
  options.batch_solver = std::move(*solver);
  if (options.recommend_alternatives) {
    // Only resolved when it will run, so an unknown adpar name cannot fail
    // a batch that never invokes it.
    auto adpar = AlgorithmRegistry::Global().FindAdpar(
        request.adpar_solver.value_or(defaults.adpar_solver));
    if (!adpar.ok()) return adpar.status();
    options.adpar_solver = std::move(*adpar);
  }

  auto result = state_->stratrec.ProcessBatchAtAvailability(
      request.requests, *availability, options);
  if (!result.ok()) return result.status();

  BatchReport report;
  report.request_id = state_->NextId("batch");
  report.algorithm = algorithm;
  report.availability = *availability;
  report.result = std::move(*result);
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stats.batches += 1;
    state_->stats.requests_processed += request.requests.size();
  }
  return report;
}

Result<SweepReport> Service::RunSweep(const SweepRequest& request) const {
  auto availability = state_->Resolve(request.availability);
  if (!availability.ok()) return availability.status();

  std::vector<std::string> solvers = request.solvers;
  if (solvers.empty()) solvers.push_back(state_->config.batch.adpar_solver);
  std::vector<core::AdparSolverFn> solver_fns;
  solver_fns.reserve(solvers.size());
  for (const std::string& name : solvers) {
    auto solver = AlgorithmRegistry::Global().FindAdpar(name);
    if (!solver.ok()) return solver.status();
    solver_fns.push_back(std::move(*solver));
  }

  SweepReport report;
  report.request_id = state_->NextId("sweep");
  report.availability = *availability;
  report.strategy_params.reserve(state_->profiles().size());
  for (const core::StrategyProfile& profile : state_->profiles()) {
    report.strategy_params.push_back(profile.EstimateParams(*availability));
  }

  report.outcomes.reserve(request.targets.size() * solvers.size());
  for (size_t i = 0; i < request.targets.size(); ++i) {
    const core::DeploymentRequest& target = request.targets[i];
    const std::string target_id =
        target.id.empty() ? "target-" + std::to_string(i) : target.id;
    for (size_t s = 0; s < solvers.size(); ++s) {
      SweepOutcome outcome;
      outcome.target_id = target_id;
      outcome.solver = solvers[s];
      auto solved =
          solver_fns[s](report.strategy_params, target.thresholds, target.k);
      if (solved.ok()) {
        outcome.result = std::move(*solved);
      } else {
        outcome.status = solved.status();
      }
      report.outcomes.push_back(std::move(outcome));
    }
  }
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stats.sweeps += 1;
  }
  return report;
}

Result<StreamSession> Service::OpenStream(const StreamOptions& options) const {
  auto availability = state_->Resolve(options.availability);
  if (!availability.ok()) return availability.status();

  const ServiceConfig& config = state_->config;
  core::OnlineOptions online;
  online.batch.objective =
      options.objective.value_or(config.batch.objective);
  online.batch.aggregation =
      options.aggregation.value_or(config.batch.aggregation);
  online.batch.policy = options.policy.value_or(config.batch.policy);
  online.max_pending = options.max_pending.value_or(config.stream.max_pending);
  online.readmit_on_release =
      options.readmit_on_release.value_or(config.stream.readmit_on_release);

  auto scheduler = core::OnlineScheduler::Create(state_->profiles(),
                                                 *availability, online);
  if (!scheduler.ok()) return scheduler.status();

  auto session = std::make_shared<internal::SessionState>(
      state_, state_->NextId("stream"), std::move(*scheduler));
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stats.streams_opened += 1;
  }
  return StreamSession(std::move(session));
}

Status Service::RegisterAvailabilityModel(std::string name,
                                          core::AvailabilityModel model) const {
  if (name.empty()) {
    return Status::InvalidArgument("availability model name is empty");
  }
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->models.emplace(std::move(name), std::move(model)).second) {
    return Status::FailedPrecondition(
        "availability model name is already registered");
  }
  return Status::OK();
}

const std::vector<core::Strategy>& Service::strategies() const {
  return state_->stratrec.aggregator().strategies();
}

const std::vector<core::StrategyProfile>& Service::profiles() const {
  return state_->profiles();
}

const ServiceConfig& Service::config() const { return state_->config; }

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->stats;
}

// ---------------------------------------------------------------------------
// StreamSession
// ---------------------------------------------------------------------------

const std::string& StreamSession::id() const { return state_->id; }

Result<StreamUpdate> StreamSession::Submit(const StreamEvent& event) {
  StreamUpdate update;
  update.session_id = state_->id;
  update.kind = event.kind;

  std::lock_guard<std::mutex> lock(state_->mutex);
  core::OnlineScheduler& scheduler = state_->scheduler;
  switch (event.kind) {
    case StreamEvent::Kind::kArrival: {
      auto decision = scheduler.OnArrival(event.request);
      if (!decision.ok()) return decision.status();
      update.request_id = event.request.id;
      update.decision = std::move(*decision);
      break;
    }
    case StreamEvent::Kind::kRevocation:
      STRATREC_RETURN_NOT_OK(scheduler.OnRevocation(event.request_id));
      update.request_id = event.request_id;
      break;
    case StreamEvent::Kind::kCompletion:
      STRATREC_RETURN_NOT_OK(scheduler.OnCompletion(event.request_id));
      update.request_id = event.request_id;
      break;
    case StreamEvent::Kind::kAvailabilityChange: {
      auto resolved = state_->service->Resolve(event.availability);
      if (!resolved.ok()) return resolved.status();
      STRATREC_RETURN_NOT_OK(scheduler.SetAvailability(*resolved));
      break;
    }
  }
  update.availability = scheduler.availability();
  update.used_workforce = scheduler.used_workforce();
  update.active = scheduler.active();
  update.pending = scheduler.pending();

  {
    std::lock_guard<std::mutex> service_lock(state_->service->mutex);
    state_->service->stats.stream_events += 1;
    if (event.kind == StreamEvent::Kind::kArrival) {
      state_->service->stats.requests_processed += 1;
    }
  }
  return update;
}

Result<core::AdmissionDecision> StreamSession::Arrive(
    const core::DeploymentRequest& request) {
  auto update = Submit(StreamEvent::Arrival(request));
  if (!update.ok()) return update.status();
  return std::move(update->decision);
}

Status StreamSession::Revoke(const std::string& request_id) {
  auto update = Submit(StreamEvent::Revocation(request_id));
  return update.ok() ? Status::OK() : update.status();
}

Status StreamSession::Complete(const std::string& request_id) {
  auto update = Submit(StreamEvent::Completion(request_id));
  return update.ok() ? Status::OK() : update.status();
}

Status StreamSession::SetAvailability(const AvailabilitySpec& availability) {
  auto update = Submit(StreamEvent::AvailabilityChange(availability));
  return update.ok() ? Status::OK() : update.status();
}

double StreamSession::availability() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.availability();
}

double StreamSession::used_workforce() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.used_workforce();
}

size_t StreamSession::active() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.active();
}

size_t StreamSession::pending() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.pending();
}

core::OnlineStats StreamSession::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.stats();
}

}  // namespace stratrec::api
