#include "src/api/service.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <list>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/api/codec.h"
#include "src/api/registry.h"
#include "src/common/executor.h"
#include "src/common/journal.h"
#include "src/common/logging.h"
#include "src/core/catalog_index.h"
#include "src/core/kernels/kernels.h"
#include "src/core/workforce.h"
#include "src/stream/stream_scheduler.h"

namespace stratrec::api {

namespace internal {

/// One cache line of lifetime counters. Each thread sticks to one stripe,
/// so concurrent requests never bounce a shared line; stats() folds all of
/// them into a ServiceStats snapshot.
struct alignas(64) StatsStripe {
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> sweeps{0};
  std::atomic<uint64_t> streams_opened{0};
  std::atomic<uint64_t> stream_events{0};
  std::atomic<uint64_t> stream_reschedules{0};
  std::atomic<uint64_t> snapshot_delta_updates{0};
  std::atomic<uint64_t> snapshot_rebuilds{0};
  std::atomic<uint64_t> requests_processed{0};
  std::atomic<uint64_t> cancelled{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
};

class StripedStats {
 public:
  StatsStripe& Local() {
    static std::atomic<size_t> next_slot{0};
    thread_local const size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripes_[slot];
  }

  ServiceStats Snapshot() const {
    ServiceStats out;
    for (const StatsStripe& stripe : stripes_) {
      out.batches += stripe.batches.load(std::memory_order_relaxed);
      out.sweeps += stripe.sweeps.load(std::memory_order_relaxed);
      out.streams_opened +=
          stripe.streams_opened.load(std::memory_order_relaxed);
      out.stream_events +=
          stripe.stream_events.load(std::memory_order_relaxed);
      out.stream_reschedules +=
          stripe.stream_reschedules.load(std::memory_order_relaxed);
      out.snapshot_delta_updates +=
          stripe.snapshot_delta_updates.load(std::memory_order_relaxed);
      out.snapshot_rebuilds +=
          stripe.snapshot_rebuilds.load(std::memory_order_relaxed);
      out.requests_processed +=
          stripe.requests_processed.load(std::memory_order_relaxed);
      out.cancelled += stripe.cancelled.load(std::memory_order_relaxed);
      out.deadline_exceeded +=
          stripe.deadline_exceeded.load(std::memory_order_relaxed);
      out.cache_hits += stripe.cache_hits.load(std::memory_order_relaxed);
      out.cache_misses +=
          stripe.cache_misses.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  static constexpr size_t kStripes = 16;
  std::array<StatsStripe, kStripes> stripes_;
};

/// Sharded LRU of availability snapshots (core::AvailabilitySnapshot),
/// keyed on the bit pattern of the (already quantized) availability. Every
/// batch and sweep at one W shares a single snapshot, so the O(|S|)
/// parameter estimation — and ADPaR's sorts/pruning tables — are paid once
/// per distinct availability instead of once per job. Builds happen
/// outside the shard lock; a racing duplicate build keeps the first
/// inserted entry so callers converge on one shared block.
class SnapshotCache {
 public:
  /// Shard count is clamped to the capacity so floor division keeps the
  /// total resident snapshots <= snapshot_capacity (a snapshot at |S|=1M
  /// is tens of MB; the bound is the point of the knob).
  explicit SnapshotCache(const CacheConfig& config)
      : capacity_(config.snapshot_capacity),
        shards_(std::max<size_t>(
            size_t{1},
            std::min(config.shards, std::max<size_t>(size_t{1}, capacity_)))) {
    per_shard_capacity_ = std::max<size_t>(1, capacity_ / shards_.size());
  }

  bool enabled() const { return capacity_ > 0; }

  /// The cached snapshot for `w`, or null on a miss (the caller builds and
  /// offers it back via Insert).
  std::shared_ptr<const core::AvailabilitySnapshot> Find(double w) {
    if (!enabled()) return nullptr;
    Shard& shard = ShardFor(w);
    const uint64_t key = KeyFor(w);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) return nullptr;
    // Move to the LRU front.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.position);
    return it->second.snapshot;
  }

  /// Offers a freshly built snapshot; returns the canonical entry (the
  /// existing one if another worker won the race).
  std::shared_ptr<const core::AvailabilitySnapshot> Insert(
      double w, std::shared_ptr<const core::AvailabilitySnapshot> snapshot) {
    if (!enabled()) return snapshot;
    Shard& shard = ShardFor(w);
    const uint64_t key = KeyFor(w);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.position);
      return it->second.snapshot;
    }
    shard.lru.push_front(key);
    shard.entries.emplace(key,
                          Entry{std::move(snapshot), shard.lru.begin()});
    while (shard.entries.size() > per_shard_capacity_) {
      shard.entries.erase(shard.lru.back());
      shard.lru.pop_back();
    }
    return shard.entries.find(key)->second.snapshot;
  }

 private:
  struct Entry {
    std::shared_ptr<const core::AvailabilitySnapshot> snapshot;
    std::list<uint64_t>::iterator position;
  };
  struct alignas(64) Shard {
    std::mutex mutex;
    std::list<uint64_t> lru;  ///< most-recent first
    std::unordered_map<uint64_t, Entry> entries;
  };

  static uint64_t KeyFor(double w) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(w));
    std::memcpy(&bits, &w, sizeof(bits));
    return bits;
  }

  Shard& ShardFor(double w) {
    // splitmix64 finalizer: the exponent-heavy double bits spread poorly
    // by themselves.
    uint64_t x = KeyFor(w);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return shards_[x % shards_.size()];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

/// Snaps `w` onto the configured availability grid (no-op for quantum 0).
/// Applied before the pipeline runs, so cache keys and reports agree.
double QuantizeAvailability(double w, double quantum) {
  if (quantum <= 0.0) return w;
  const double snapped = std::round(w / quantum) * quantum;
  return snapped < 0.0 ? 0.0 : (snapped > 1.0 ? 1.0 : snapped);
}

/// Shared state behind every Service handle and its sessions. No single
/// service mutex: the named-model table is read-mostly behind a shared
/// mutex, counters are striped atomics, and sessions carry their own lock.
struct ServiceState {
  ServiceConfig config;
  /// The wrapped batch pipeline; its aggregator owns the catalog (the
  /// service keeps no second copy). ProcessBatch is const and therefore
  /// safe under concurrent jobs without locking.
  core::StratRec stratrec;

  std::atomic<uint64_t> next_id{1};
  mutable std::shared_mutex models_mutex;  ///< guards `models`
  std::unordered_map<std::string, core::AvailabilityModel> models;
  StripedStats stats;

  /// Availability-keyed snapshot cache (ServiceConfig::cache).
  SnapshotCache snapshots;

  /// Record/replay tap (null when JournalConfig::path is empty). Workers
  /// encode their own records and append under the writer's short file
  /// lock; declared before `executor` so it outlives the queue drain.
  std::shared_ptr<JournalWriter> journal;

  /// The worker pool every async ticket runs on and the pipeline stages
  /// partition across. Declared last on purpose: it is destroyed first, and
  /// its destructor drains still-queued tickets while the rest of this
  /// state is alive.
  Executor executor;

  ServiceState(ServiceConfig config_in, core::StratRec stratrec_in,
               std::shared_ptr<JournalWriter> journal_in)
      : config(std::move(config_in)),
        stratrec(std::move(stratrec_in)),
        snapshots(config.cache),
        journal(std::move(journal_in)),
        executor(config.execution.worker_threads) {
    // Build the catalog's SoA index once, up front, partitioned across the
    // fresh pool — every batch/sweep hot loop rides it from the first job.
    stratrec.aggregator().index(&executor, config.execution.parallel_grain);
  }

  /// The shared per-W snapshot: cache hit, or build (outside any shard
  /// lock) and insert. Counts hits/misses on the caller's stats stripe.
  std::shared_ptr<const core::AvailabilitySnapshot> SnapshotFor(double w) {
    if (auto cached = snapshots.Find(w)) {
      stats.Local().cache_hits.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
    stats.Local().cache_misses.fetch_add(1, std::memory_order_relaxed);
    auto built = stratrec.aggregator().index().BuildSnapshot(
        w, &executor, config.execution.parallel_grain);
    return snapshots.Insert(w, std::move(built));
  }

  /// Appends one already-encoded record, demoting I/O failures to an error
  /// log: a full disk must not fail the request whose work succeeded.
  void Record(const std::string& line) const {
    const Status appended = journal->Append(line);
    if (!appended.ok()) {
      LogMessage(LogLevel::kError,
                 "journal record dropped: " + appended.ToString());
    }
  }

  const std::vector<core::StrategyProfile>& profiles() const {
    return stratrec.aggregator().profiles();
  }

  std::string NextId(const char* prefix) {
    const uint64_t id = next_id.fetch_add(1, std::memory_order_relaxed);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%s-%06llu", prefix,
                  static_cast<unsigned long long>(id));
    return buffer;
  }

  Result<double> Resolve(const AvailabilitySpec& spec) const {
    std::shared_lock<std::shared_mutex> lock(models_mutex);
    double fallback = 0.5;
    if (config.availability.kind != AvailabilitySpec::Kind::kDefault &&
        spec.kind == AvailabilitySpec::Kind::kDefault) {
      auto configured = ResolveAvailability(config.availability, models, 0.5);
      if (!configured.ok()) return configured.status();
      fallback = *configured;
    }
    return ResolveAvailability(spec, models, fallback);
  }
};

/// One stream session: the (not thread-safe) stream scheduler plus its own
/// lock and a reference keeping the owning service alive. The scheduler's
/// ParallelFor fan-out (pricing rows, snapshot re-estimation) runs on the
/// service executor from under the session mutex — safe, because the
/// executor's callers participate in their own fan-out.
struct SessionState {
  std::shared_ptr<ServiceState> service;
  std::string id;
  mutable std::mutex mutex;  ///< serializes the wrapped scheduler
  stream::StreamScheduler scheduler;
  /// Per-session submission index, stamped on every journaled stream-event
  /// record (failures included) so replay can detect a compacted-away
  /// prefix as a gap. Guarded by `mutex`.
  size_t seq = 0;
  /// Last-synced scheduler counters, so each Submit adds only its delta to
  /// the service-wide stripes. Guarded by `mutex`.
  size_t synced_reschedules = 0;
  size_t synced_delta_updates = 0;
  size_t synced_rebuilds = 0;

  SessionState(std::shared_ptr<ServiceState> service_in, std::string id_in,
               stream::StreamScheduler scheduler_in)
      : service(std::move(service_in)),
        id(std::move(id_in)),
        scheduler(std::move(scheduler_in)) {}
};

namespace {

/// Runs one job body, converting an escaping exception (a throwing
/// user-registered solver, std::bad_alloc mid-pipeline) into a kInternal
/// ticket outcome. The sync API used to let such exceptions unwind to the
/// caller; on a pool worker they would instead terminate the process.
template <typename Fn>
auto GuardJob(Fn&& body) -> decltype(body()) {
  try {
    return body();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("job threw: ") + e.what());
  } catch (...) {
    return Status::Internal("job threw a non-std exception");
  }
}

/// The batch pipeline body, run on a pool worker. `state` outlives every
/// job: workers are joined (and the queue drained) before the rest of
/// ServiceState is torn down.
Result<BatchReport> ExecuteBatch(ServiceState* state,
                                 const BatchRequest& request,
                                 const std::string& id) {
  const BatchDefaults& defaults = state->config.batch;
  const std::string algorithm = request.algorithm.value_or(defaults.algorithm);
  auto solver = AlgorithmRegistry::Global().FindBatch(algorithm);
  if (!solver.ok()) return solver.status();
  auto availability = state->Resolve(request.availability);
  if (!availability.ok()) return availability.status();
  // The pipeline (and the report) run at the quantized W, so nearby
  // availabilities share one cached snapshot when the knob is on.
  const double w = internal::QuantizeAvailability(
      *availability, state->config.cache.availability_quantum);

  core::StratRecOptions options;
  options.batch.objective = request.objective.value_or(defaults.objective);
  options.batch.aggregation =
      request.aggregation.value_or(defaults.aggregation);
  options.batch.policy = request.policy.value_or(defaults.policy);
  // The embarrassingly-parallel stages (workforce matrix, ADPaR fan-out)
  // partition across the same pool this job runs on; ParallelFor's caller
  // participates, so this is safe even on a single-threaded pool.
  options.batch.executor = &state->executor;
  options.batch.parallel_grain = state->config.execution.parallel_grain;
  options.recommend_alternatives =
      request.recommend_alternatives.value_or(defaults.recommend_alternatives);
  options.batch_solver = std::move(*solver);
  if (options.recommend_alternatives) {
    // Only resolved when it will run, so an unknown adpar name cannot fail
    // a batch that never invokes it — and resolved before the O(|S|)
    // snapshot build, so a typo'd name fails fast without touching the
    // cache.
    const std::string adpar_name =
        request.adpar_solver.value_or(defaults.adpar_solver);
    auto adpar = AlgorithmRegistry::Global().FindAdpar(adpar_name);
    if (!adpar.ok()) return adpar.status();
    // Only the alternatives leg reads per-W parameters, so only it fetches
    // a snapshot; batch-only jobs skip the whole O(|S|) block.
    options.snapshot = state->SnapshotFor(w);
    // The built-in exact solver has a snapshot-riding overload (prebuilt
    // orderings + skyline pruning, bit-identical results); leaving the
    // solver unset makes StratRec pick it. Every other backend gets the
    // registry entry as before. Dispatching on the name is sound because
    // the registry refuses duplicate registrations — "exact" always means
    // the built-in.
    if (adpar_name != "exact") options.adpar_solver = std::move(*adpar);
  }

  auto result = state->stratrec.ProcessBatchAtAvailability(
      request.requests, w, options);
  if (!result.ok()) return result.status();

  BatchReport report;
  report.request_id = id;
  report.algorithm = algorithm;
  report.availability = w;
  report.result = std::move(*result);
  StatsStripe& stripe = state->stats.Local();
  stripe.batches.fetch_add(1, std::memory_order_relaxed);
  stripe.requests_processed.fetch_add(request.requests.size(),
                                      std::memory_order_relaxed);
  return report;
}

/// The sweep body, run on a pool worker; the |targets| x |solvers| cells
/// are independent jobs fanned out across the pool, each writing its own
/// pre-sized slot (deterministic regardless of scheduling).
Result<SweepReport> ExecuteSweep(ServiceState* state,
                                 const SweepRequest& request,
                                 const std::string& id) {
  auto availability = state->Resolve(request.availability);
  if (!availability.ok()) return availability.status();
  const double w = internal::QuantizeAvailability(
      *availability, state->config.cache.availability_quantum);

  std::vector<std::string> solvers = request.solvers;
  if (solvers.empty()) solvers.push_back(state->config.batch.adpar_solver);
  // Validate every solver name before the (potentially O(|S|)) snapshot
  // build, so a typo fails fast and touches neither the cache nor the
  // index. A null slot marks the built-in exact solver, filled in below
  // once the snapshot exists.
  std::vector<core::AdparSolverFn> solver_fns;
  solver_fns.reserve(solvers.size());
  for (const std::string& name : solvers) {
    if (name == "exact") {
      solver_fns.emplace_back();
      continue;
    }
    auto solver = AlgorithmRegistry::Global().FindAdpar(name);
    if (!solver.ok()) return solver.status();
    solver_fns.push_back(std::move(*solver));
  }
  // The shared per-W block: every cell searches it, the report carries it.
  auto snapshot = state->SnapshotFor(w);
  for (core::AdparSolverFn& fn : solver_fns) {
    if (fn) continue;
    // The built-in exact solver rides the snapshot's prebuilt orderings
    // and skyline pruning (bit-identical to the registry entry).
    fn = [snapshot](const std::vector<core::ParamVector>&,
                    const core::ParamVector& d, int k) {
      return core::AdparExact(*snapshot, d, k);
    };
  }

  SweepReport report;
  report.request_id = id;
  report.availability = w;
  report.strategy_params = snapshot->params();

  report.outcomes.resize(request.targets.size() * solvers.size());
  state->executor.ParallelFor(
      report.outcomes.size(), /*grain=*/1, [&](size_t begin, size_t end) {
        for (size_t cell = begin; cell < end; ++cell) {
          const size_t i = cell / solvers.size();
          const size_t s = cell % solvers.size();
          const core::DeploymentRequest& target = request.targets[i];
          SweepOutcome& outcome = report.outcomes[cell];
          outcome.target_id =
              target.id.empty() ? "target-" + std::to_string(i) : target.id;
          outcome.solver = solvers[s];
          auto solved = solver_fns[s](report.strategy_params,
                                      target.thresholds, target.k);
          if (solved.ok()) {
            outcome.result = std::move(*solved);
          } else {
            outcome.status = solved.status();
          }
        }
      });
  state->stats.Local().sweeps.fetch_add(1, std::memory_order_relaxed);
  return report;
}

/// The shard-scan body: the scatter half of the router's scatter/gather.
/// The availability arrives pre-resolved and pre-quantized from the router,
/// so the snapshot cache key matches the unsharded path bit for bit.
Result<ShardScanReport> ExecuteShardScan(ServiceState* state,
                                         const ShardScanRequest& request,
                                         const std::string& id) {
  ShardScanReport report;
  report.request_id = id;
  report.availability = request.availability;

  if (!request.requests.empty()) {
    const core::WorkforceMatrix matrix = core::WorkforceMatrix::Compute(
        request.requests, state->stratrec.aggregator().index(), request.policy,
        &state->executor, state->config.execution.parallel_grain);
    report.rows.reserve(request.requests.size());
    for (size_t i = 0; i < request.requests.size(); ++i) {
      ShardRequestScan row;
      // k < 1 rows stay empty: the gather rejects them via ValidateRequest
      // before reading any shard data, exactly like the unsharded path.
      if (request.requests[i].k >= 1) {
        auto top = matrix.TopStrategies(i, request.requests[i].k);
        if (!top.ok()) return top.status();
        row.feasible_count = top->feasible_count;
        row.strategies = std::move(top->strategies);
        row.requirements = std::move(top->requirements);
      }
      report.rows.push_back(std::move(row));
    }
  }

  if (request.want_params || !request.skyband_ks.empty()) {
    auto snapshot = state->SnapshotFor(request.availability);
    if (request.want_params) report.params = snapshot->params();
    report.skybands.reserve(request.skyband_ks.size());
    for (int k : request.skyband_ks) {
      ShardSkyband band;
      band.k = k;
      if (auto pruned = snapshot->PrunedFor(k)) {
        band.by_cost = pruned->by_cost;
        band.by_quality_desc = pruned->by_quality_desc;
      } else {
        // Pruning was a no-op for this k; serve the full orderings.
        const core::AdparOrderings& orderings = snapshot->orderings();
        band.by_cost = orderings.by_cost;
        band.by_quality_desc = orderings.by_quality_desc;
      }
      report.skybands.push_back(std::move(band));
    }
  }
  return report;
}

}  // namespace

}  // namespace internal

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

Result<Service> Service::Create(core::Catalog catalog, ServiceConfig config) {
  STRATREC_RETURN_NOT_OK(ValidateConfig(config));

  // Journal taps: open the file and persist the config + catalog records up
  // front, so even a trace with zero pairs is replayable (the trace alone
  // reconstructs an identical service).
  std::shared_ptr<JournalWriter> journal;
  if (!config.journal.path.empty()) {
    JournalWriter::Options journal_options;
    journal_options.flush_every_record = config.journal.flush_every_record;
    journal_options.max_segment_bytes = config.journal.max_segment_bytes;
    journal_options.compact_after_segments =
        config.journal.compact_after_segments;
    journal_options.retain_segments = config.journal.retain_segments;
    // The folding policy lives in the codec (the journal layer stays
    // byte-oriented): keep the records a compacted chain still needs.
    journal_options.compact = wire::CompactRecords;
    auto writer =
        JournalWriter::Open(config.journal.path, std::move(journal_options));
    if (!writer.ok()) return writer.status();
    journal = std::move(*writer);
    STRATREC_RETURN_NOT_OK(journal->Append(wire::EncodeConfigRecord(config)));
    STRATREC_RETURN_NOT_OK(
        journal->Append(wire::EncodeCatalogRecord(catalog)));
  }

  auto stratrec = core::StratRec::Create(std::move(catalog));
  if (!stratrec.ok()) return stratrec.status();
  return Service(std::make_shared<internal::ServiceState>(
      std::move(config), std::move(*stratrec), std::move(journal)));
}

Result<Service> Service::Create(std::vector<core::Strategy> strategies,
                                std::vector<core::StrategyProfile> profiles,
                                ServiceConfig config) {
  return Create(
      core::Catalog{std::move(strategies), std::move(profiles)},
      std::move(config));
}

namespace {

/// Whether a request's relative deadline_ms budget ran out between
/// submission and the moment a worker claimed its ticket. 0 = no deadline.
bool DeadlineExpired(double deadline_ms,
                     std::chrono::steady_clock::time_point submitted) {
  if (deadline_ms <= 0.0) return false;
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - submitted)
                                .count();
  return elapsed_ms > deadline_ms;
}

/// The deterministic outcome of an expired ticket (no elapsed time in the
/// message, so journaled outcomes replay byte-identically).
Status ExpiredStatus(const std::string& id) {
  return Status::DeadlineExceeded("ticket " + id +
                                  " deadline expired before execution");
}

}  // namespace

Ticket<BatchReport> Service::SubmitBatchAsync(BatchRequest request) const {
  auto shared = std::make_shared<internal::TicketShared<BatchReport>>(
      request.request_id.empty() ? state_->NextId("batch")
                                 : request.request_id);
  internal::ServiceState* state = state_.get();
  const auto submitted = std::chrono::steady_clock::now();
  state_->executor.Submit(
      [state, shared, submitted, request = std::move(request)]() mutable {
        if (!shared->BeginRun()) {
          state->stats.Local().cancelled.fetch_add(1,
                                                   std::memory_order_relaxed);
          if (state->journal && state->config.journal.record_cancelled) {
            state->Record(wire::EncodeBatchRecord(
                shared->id, request,
                Status::Cancelled("ticket " + shared->id +
                                  " cancelled before execution")));
          }
          return;
        }
        // Deadline check after the claim: expired work completes with
        // kDeadlineExceeded instead of executing, and the counter/journal
        // side effects land before Finish wakes the waiter.
        if (DeadlineExpired(request.deadline_ms, submitted)) {
          state->stats.Local().deadline_exceeded.fetch_add(
              1, std::memory_order_relaxed);
          if (state->journal && state->config.journal.record_cancelled) {
            state->Record(wire::EncodeBatchRecord(shared->id, request,
                                                  ExpiredStatus(shared->id)));
          }
          shared->Finish(ExpiredStatus(shared->id));
          return;
        }
        auto outcome = internal::GuardJob([&]() {
          return internal::ExecuteBatch(state, request, shared->id);
        });
        // Tap before Finish: once the ticket is retrievable, its pair is in
        // the journal. Encoding runs here on the worker, lock-free.
        if (state->journal) {
          state->Record(wire::EncodeBatchRecord(shared->id, request, outcome));
        }
        shared->Finish(std::move(outcome));
      });
  return Ticket<BatchReport>(std::move(shared));
}

Ticket<SweepReport> Service::RunSweepAsync(SweepRequest request) const {
  auto shared = std::make_shared<internal::TicketShared<SweepReport>>(
      request.request_id.empty() ? state_->NextId("sweep")
                                 : request.request_id);
  internal::ServiceState* state = state_.get();
  const auto submitted = std::chrono::steady_clock::now();
  state_->executor.Submit(
      [state, shared, submitted, request = std::move(request)]() mutable {
        if (!shared->BeginRun()) {
          state->stats.Local().cancelled.fetch_add(1,
                                                   std::memory_order_relaxed);
          if (state->journal && state->config.journal.record_cancelled) {
            state->Record(wire::EncodeSweepRecord(
                shared->id, request,
                Status::Cancelled("ticket " + shared->id +
                                  " cancelled before execution")));
          }
          return;
        }
        if (DeadlineExpired(request.deadline_ms, submitted)) {
          state->stats.Local().deadline_exceeded.fetch_add(
              1, std::memory_order_relaxed);
          if (state->journal && state->config.journal.record_cancelled) {
            state->Record(wire::EncodeSweepRecord(shared->id, request,
                                                  ExpiredStatus(shared->id)));
          }
          shared->Finish(ExpiredStatus(shared->id));
          return;
        }
        auto outcome = internal::GuardJob([&]() {
          return internal::ExecuteSweep(state, request, shared->id);
        });
        if (state->journal) {
          state->Record(wire::EncodeSweepRecord(shared->id, request, outcome));
        }
        shared->Finish(std::move(outcome));
      });
  return Ticket<SweepReport>(std::move(shared));
}

Ticket<ShardScanReport> Service::ScanShardAsync(ShardScanRequest request) const {
  auto shared = std::make_shared<internal::TicketShared<ShardScanReport>>(
      request.request_id.empty() ? state_->NextId("scan")
                                 : request.request_id);
  internal::ServiceState* state = state_.get();
  state_->executor.Submit(
      [state, shared, request = std::move(request)]() mutable {
        if (!shared->BeginRun()) {
          state->stats.Local().cancelled.fetch_add(1,
                                                   std::memory_order_relaxed);
          return;
        }
        auto outcome = internal::GuardJob([&]() {
          return internal::ExecuteShardScan(state, request, shared->id);
        });
        // No journal tap: scans are a router-internal transport, and the
        // router's own requests are what replay needs to reproduce.
        shared->Finish(std::move(outcome));
      });
  return Ticket<ShardScanReport>(std::move(shared));
}

Result<BatchReport> Service::SubmitBatch(BatchRequest request) const {
  return SubmitBatchAsync(std::move(request)).Wait();
}

Result<SweepReport> Service::RunSweep(SweepRequest request) const {
  return RunSweepAsync(std::move(request)).Wait();
}

Result<StreamSession> Service::OpenStream(const StreamOptions& options) const {
  auto availability = state_->Resolve(options.availability);
  if (!availability.ok()) return availability.status();

  const ServiceConfig& config = state_->config;
  stream::StreamSchedulerOptions scheduler_options;
  scheduler_options.objective =
      options.objective.value_or(config.batch.objective);
  scheduler_options.aggregation =
      options.aggregation.value_or(config.batch.aggregation);
  scheduler_options.policy = options.policy.value_or(config.batch.policy);
  scheduler_options.max_pending =
      options.max_pending.value_or(config.stream.max_pending);
  scheduler_options.readmit_on_release =
      options.readmit_on_release.value_or(config.stream.readmit_on_release);
  scheduler_options.recommend_alternatives =
      options.recommend_alternatives.value_or(
          config.stream.recommend_alternatives);
  // The session's snapshot rides the same availability grid as the batch
  // cache, so a session at a cached W agrees with the batch path bit for
  // bit.
  scheduler_options.availability_quantum = config.cache.availability_quantum;
  scheduler_options.parallel_grain = config.execution.parallel_grain;

  auto scheduler = stream::StreamScheduler::Create(
      &state_->stratrec.aggregator().index(), &state_->executor,
      *availability, scheduler_options);
  if (!scheduler.ok()) return scheduler.status();

  std::string session_id =
      options.session_id.empty() ? state_->NextId("stream")
                                 : options.session_id;
  // Session-open tap: with the session id pinned into the recorded options
  // and the resolved availability alongside, replay rebuilds this session
  // byte-for-byte even when the original spec was named or default.
  if (state_->journal) {
    wire::StreamOpenRecord open;
    open.session_id = session_id;
    open.options = options;
    open.options.session_id = session_id;
    open.availability = *availability;
    state_->Record(wire::EncodeStreamOpenRecord(open));
  }

  auto session = std::make_shared<internal::SessionState>(
      state_, std::move(session_id), std::move(*scheduler));
  state_->stats.Local().streams_opened.fetch_add(1, std::memory_order_relaxed);
  return StreamSession(std::move(session));
}

Status Service::RegisterAvailabilityModel(std::string name,
                                          core::AvailabilityModel model) const {
  if (name.empty()) {
    return Status::InvalidArgument("availability model name is empty");
  }
  std::unique_lock<std::shared_mutex> lock(state_->models_mutex);
  if (!state_->models.emplace(std::move(name), std::move(model)).second) {
    return Status::FailedPrecondition(
        "availability model name is already registered");
  }
  return Status::OK();
}

const std::vector<core::Strategy>& Service::strategies() const {
  return state_->stratrec.aggregator().strategies();
}

const std::vector<core::StrategyProfile>& Service::profiles() const {
  return state_->profiles();
}

const ServiceConfig& Service::config() const { return state_->config; }

size_t Service::worker_threads() const { return state_->executor.threads(); }

ServiceStats Service::stats() const {
  ServiceStats out = state_->stats.Snapshot();
  out.queue_depth = state_->executor.QueueDepth();
  out.active_workers = state_->executor.ActiveWorkers();
  out.steals = static_cast<size_t>(state_->executor.StealCount());
  out.local_hits = static_cast<size_t>(state_->executor.LocalHitCount());
  out.index_build_nanos = static_cast<size_t>(
      state_->stratrec.aggregator().index_build_nanos());
  out.kernel_dispatch =
      core::kernels::DispatchLevelName(core::kernels::ActiveDispatchLevel());
  return out;
}

Status Service::RecordStatsSnapshot() const {
  if (!state_->journal) {
    return Status::FailedPrecondition(
        "stats snapshot requested but journaling is not configured");
  }
  return state_->journal->Append(wire::EncodeStatsRecord(stats()));
}

Status Service::RecordStatsSnapshot(double sim_time) const {
  if (!state_->journal) {
    return Status::FailedPrecondition(
        "stats snapshot requested but journaling is not configured");
  }
  return state_->journal->Append(wire::EncodeStatsRecord(stats(), sim_time));
}

// ---------------------------------------------------------------------------
// StreamSession
// ---------------------------------------------------------------------------

const std::string& StreamSession::id() const { return state_->id; }

Result<StreamUpdate> StreamSession::Submit(const StreamEvent& event) {
  StreamUpdate update;
  update.session_id = state_->id;
  update.kind = event.kind;

  internal::ServiceState* service = state_->service.get();
  std::lock_guard<std::mutex> lock(state_->mutex);
  stream::StreamScheduler& scheduler = state_->scheduler;
  Status status = Status::OK();
  switch (event.kind) {
    case StreamEvent::Kind::kArrival: {
      auto outcome = scheduler.OnArrival(event.request);
      if (!outcome.ok()) {
        status = outcome.status();
        break;
      }
      update.request_id = event.request.id;
      update.decision = std::move(outcome->decision);
      update.has_alternative = outcome->has_alternative;
      if (outcome->has_alternative) {
        update.alternative = std::move(outcome->alternative);
      }
      break;
    }
    case StreamEvent::Kind::kRevocation:
      status = scheduler.OnRevocation(event.request_id);
      update.request_id = event.request_id;
      break;
    case StreamEvent::Kind::kCompletion:
      status = scheduler.OnCompletion(event.request_id);
      update.request_id = event.request_id;
      break;
    case StreamEvent::Kind::kAvailabilityChange: {
      auto resolved = service->Resolve(event.availability);
      if (!resolved.ok()) {
        status = resolved.status();
        break;
      }
      status = scheduler.SetAvailability(*resolved);
      break;
    }
  }
  if (status.ok()) {
    update.availability = scheduler.availability();
    update.used_workforce = scheduler.used_workforce();
    update.active = scheduler.active();
    update.pending = scheduler.pending();
  }

  // Journal tap: every submitted event (failures included) gets a record
  // stamped with the session's submission index, encoded here on the
  // submitting thread — the session mutex makes seq order and journal
  // order agree per session, and the append itself only takes the
  // journal's short file lock.
  if (service->journal) {
    wire::StreamEventRecord record;
    record.session_id = state_->id;
    record.seq = state_->seq;
    record.event = event;
    record.status = status;
    if (status.ok()) record.update = update;
    service->Record(wire::EncodeStreamEventRecord(record));
  }
  state_->seq += 1;

  if (!status.ok()) return status;

  internal::StatsStripe& stripe = service->stats.Local();
  stripe.stream_events.fetch_add(1, std::memory_order_relaxed);
  if (event.kind == StreamEvent::Kind::kArrival) {
    stripe.requests_processed.fetch_add(1, std::memory_order_relaxed);
  }
  // Fold this event's scheduler-counter movement into the service stripes
  // (the scheduler keeps totals; the session remembers what it last
  // synced).
  const size_t reschedules = scheduler.reschedules();
  const size_t delta_updates = scheduler.snapshot_delta_updates();
  const size_t rebuilds = scheduler.snapshot_rebuilds();
  stripe.stream_reschedules.fetch_add(
      reschedules - state_->synced_reschedules, std::memory_order_relaxed);
  stripe.snapshot_delta_updates.fetch_add(
      delta_updates - state_->synced_delta_updates, std::memory_order_relaxed);
  stripe.snapshot_rebuilds.fetch_add(rebuilds - state_->synced_rebuilds,
                                     std::memory_order_relaxed);
  state_->synced_reschedules = reschedules;
  state_->synced_delta_updates = delta_updates;
  state_->synced_rebuilds = rebuilds;
  return update;
}

Result<core::AdmissionDecision> StreamSession::Arrive(
    const core::DeploymentRequest& request) {
  auto update = Submit(StreamEvent::Arrival(request));
  if (!update.ok()) return update.status();
  return std::move(update->decision);
}

Status StreamSession::Revoke(const std::string& request_id) {
  auto update = Submit(StreamEvent::Revocation(request_id));
  return update.ok() ? Status::OK() : update.status();
}

Status StreamSession::Complete(const std::string& request_id) {
  auto update = Submit(StreamEvent::Completion(request_id));
  return update.ok() ? Status::OK() : update.status();
}

Status StreamSession::SetAvailability(const AvailabilitySpec& availability) {
  auto update = Submit(StreamEvent::AvailabilityChange(availability));
  return update.ok() ? Status::OK() : update.status();
}

double StreamSession::availability() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.availability();
}

double StreamSession::used_workforce() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.used_workforce();
}

size_t StreamSession::active() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.active();
}

size_t StreamSession::pending() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.pending();
}

core::OnlineStats StreamSession::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->scheduler.stats();
}

}  // namespace stratrec::api
