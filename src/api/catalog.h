// Catalog construction helpers for Service callers.
//
// Experiment drivers and tests often start from the *outputs* of the
// modeling stage — synthetic StrategyProfiles from workload::Generator, or
// concrete ParamVectors like the paper's Table 1 — rather than from named
// Strategy workflows. These helpers lift both shapes into the core::Catalog
// a Service is constructed from.
#ifndef STRATREC_API_CATALOG_H_
#define STRATREC_API_CATALOG_H_

#include <string>
#include <vector>

#include "src/core/aggregator.h"

namespace stratrec::api {

/// Wraps bare profiles into a catalog with generated ids
/// ("<prefix>0", "<prefix>1", ...) cycling through the 8 single-stage specs.
core::Catalog CatalogFromProfiles(std::vector<core::StrategyProfile> profiles,
                                  const std::string& prefix = "s");

/// Wraps concrete availability-independent parameter vectors into a catalog
/// of zero-slope profiles: EstimateParams(w) == params[j] for every w. This
/// is how ADPaR-style experiments (which reason over fixed parameter
/// catalogs) run through the Service's sweep mode.
core::Catalog ConstantCatalog(const std::vector<core::ParamVector>& params,
                              const std::string& prefix = "s");

}  // namespace stratrec::api

#endif  // STRATREC_API_CATALOG_H_
