// Declarative worker-availability input for the Service API.
//
// Callers describe *where the expected availability W comes from* rather
// than passing a bare double: a fixed value, a PMF or sample set (paper
// Section 2.1), or the name of a model previously registered on the service
// (e.g. one the platform estimated per deployment window). The service
// resolves the spec to W at submission time, so a request envelope stays a
// plain value type.
#ifndef STRATREC_API_AVAILABILITY_H_
#define STRATREC_API_AVAILABILITY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/availability.h"

namespace stratrec::api {

/// Where the expected availability W of one request comes from.
struct AvailabilitySpec {
  enum class Kind {
    kDefault,  ///< the service's configured default
    kFixed,    ///< an explicit W in [0, 1]
    kPmf,      ///< expectation of explicit (fraction, probability) atoms
    kSamples,  ///< expectation of observed availability fractions
    kNamed,    ///< a model registered via Service::RegisterAvailabilityModel
  };
  Kind kind = Kind::kDefault;
  double value = 0.0;
  std::vector<stats::PmfAtom> atoms;
  std::vector<double> samples;
  std::string name;

  static AvailabilitySpec Default() { return {}; }
  static AvailabilitySpec Fixed(double w);
  static AvailabilitySpec FromPmf(std::vector<stats::PmfAtom> atoms);
  static AvailabilitySpec FromSamples(std::vector<double> samples);
  static AvailabilitySpec Named(std::string name);

  bool operator==(const AvailabilitySpec&) const = default;
};

/// Resolves `spec` to an expected availability W. `models` holds the
/// service's named registrations; `default_availability` answers kDefault.
/// Fails with kInvalidArgument on malformed specs and kNotFound for an
/// unregistered name.
Result<double> ResolveAvailability(
    const AvailabilitySpec& spec,
    const std::unordered_map<std::string, core::AvailabilityModel>& models,
    double default_availability);

}  // namespace stratrec::api

#endif  // STRATREC_API_AVAILABILITY_H_
