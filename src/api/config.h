// Layered configuration of a stratrec::Service.
//
// One ServiceConfig replaces the scattered StratRecOptions / OnlineOptions /
// BatchOptions structs of the core layer: the `batch` block defaults every
// SubmitBatch/RunSweep call, the `stream` block every OpenStream session,
// and `availability` answers requests that do not name their own source.
// Individual request envelopes may override any of these per call
// (see envelope.h) — config < request, the outer layer always wins.
#ifndef STRATREC_API_CONFIG_H_
#define STRATREC_API_CONFIG_H_

#include <cstddef>
#include <string>

#include "src/api/availability.h"
#include "src/core/batch_scheduler.h"

namespace stratrec::api {

/// Defaults for the batch path (SubmitBatch and the per-cell solves of
/// RunSweep). `algorithm` and `adpar_solver` are registry names so backends
/// swap without recompiling callers.
struct BatchDefaults {
  std::string algorithm = "batchstrat";
  core::Objective objective = core::Objective::kThroughput;
  core::AggregationMode aggregation = core::AggregationMode::kSum;
  core::WorkforcePolicy policy = core::WorkforcePolicy::kMinimalWorkforce;
  /// Forward unsatisfied requests to the adpar solver (Figure 1's ADPaR leg).
  bool recommend_alternatives = true;
  std::string adpar_solver = "exact";

  bool operator==(const BatchDefaults&) const = default;
};

/// Defaults for stream sessions (OpenStream).
struct StreamDefaults {
  /// Requests that cannot be admitted immediately wait here; 0 disables
  /// queueing (immediate reject).
  size_t max_pending = 64;
  /// Drain the pending queue greedily whenever capacity frees up.
  bool readmit_on_release = true;
  /// Serve an ADPaR alternative for ineligible stream arrivals (the stream
  /// twin of BatchDefaults::recommend_alternatives; off by default so
  /// sessions that never ask behave exactly like before).
  bool recommend_alternatives = false;

  bool operator==(const StreamDefaults&) const = default;
};

/// Sizing of the service executor (the worker pool every SubmitBatchAsync /
/// RunSweepAsync ticket runs on, and the pool the parallel pipeline stages
/// partition across).
struct ExecutionConfig {
  /// Worker threads of the service pool; 0 means hardware concurrency.
  size_t worker_threads = 0;
  /// Minimum cells per chunk when the m x |S| workforce matrix is
  /// partitioned across the pool. Small matrices stay single-chunk (and
  /// therefore run on the submitting worker without any fan-out overhead).
  /// Sweep cells and per-request ADPaR solves are whole solver runs — far
  /// heavier than a matrix cell — so those always fan out one job per item,
  /// independent of this knob.
  size_t parallel_grain = 4096;

  bool operator==(const ExecutionConfig&) const = default;
};

/// The availability-snapshot cache: per-W derived state (the estimated
/// strategy-parameter block plus ADPaR's orderings/pruning tables, see
/// src/core/catalog_index.h) is computed once per distinct availability and
/// shared by every batch and sweep at that W. The cache is sharded (one
/// mutex per shard) so concurrent lookups at different availabilities do
/// not contend.
struct CacheConfig {
  /// Cached snapshots across all shards; least-recently-used entries are
  /// evicted beyond this. 0 disables caching (every job that needs per-W
  /// state rebuilds it).
  size_t snapshot_capacity = 16;
  /// Independently locked shards (>= 1).
  size_t shards = 4;
  /// When > 0, resolved availabilities are snapped to the nearest multiple
  /// of this step *before the pipeline runs*, so nearby W values share one
  /// snapshot (reports carry the quantized W — a documented precision /
  /// hit-rate trade, off by default).
  double availability_quantum = 0.0;

  bool operator==(const CacheConfig&) const = default;
};

/// Record/replay journal of the service (src/common/journal.h). When
/// enabled, the service appends one line-delimited JSON record per finished
/// batch/sweep job — the (request, outcome) pair in wire-codec form — plus
/// a config and a catalog record at startup, so a trace is self-contained:
/// bench_replay_load can rebuild an identical service from the file alone.
/// Records are encoded on the worker that finished the job and appended
/// under the journal's own short file lock; no service-wide mutex exists,
/// let alone is held, on this path.
struct JournalConfig {
  /// Journal file path; empty (the default) disables recording. The file is
  /// truncated at Service::Create.
  std::string path;
  /// Record tickets withdrawn via Cancel() as pairs with a kCancelled
  /// outcome (replay reports them as skipped — a cancellation race is not
  /// reproducible, the completed work is). The record is appended when a
  /// worker dequeues the withdrawn task, at the latest during the drain on
  /// Service destruction — not at the Cancel() call itself.
  bool record_cancelled = true;
  /// fflush() after every record, so a completed pair is in the trace by
  /// the time its ticket is retrievable. Disable for maximum-rate recording
  /// where losing the tail on a crash is acceptable.
  bool flush_every_record = true;
  /// Segment rotation: when > 0, the writer rolls to `<path>.1`,
  /// `<path>.2`, ... once appending a record would push the current segment
  /// past this many bytes (each segment re-opens with its own header line,
  /// and a record never splits across segments). 0 (the default) keeps the
  /// single unbounded file. wire::ReadTraceFile reads the whole segment
  /// chain back as one trace.
  size_t max_segment_bytes = 0;
  /// Compaction: when > 0 (and segments rotate), once more than this many
  /// closed segments accumulate the writer folds the cold ones into a fresh
  /// base segment — keeping the last config, catalog, and stats records plus
  /// every stream-open record, dropping replayed-out pairs and stream events
  /// (wire::CompactRecords) — and renumbers the survivors. Replay over a
  /// compacted chain skips sessions whose event prefix was folded away.
  /// 0 (the default) never compacts.
  size_t compact_after_segments = 0;
  /// How many of the newest closed segments a compaction leaves untouched
  /// (the hot tail a concurrent reader may be following). Only meaningful
  /// when compact_after_segments > 0.
  size_t retain_segments = 1;

  bool operator==(const JournalConfig&) const = default;
};

/// The one config a platform hands to Service::Create.
struct ServiceConfig {
  BatchDefaults batch;
  StreamDefaults stream;
  ExecutionConfig execution;
  CacheConfig cache;
  JournalConfig journal;
  /// Used whenever a request's availability spec is kDefault.
  AvailabilitySpec availability = AvailabilitySpec::Fixed(0.5);

  bool operator==(const ServiceConfig&) const = default;
};

/// Checks the config against the global registry (algorithm names resolve)
/// and validates the default availability spec. Named specs are allowed here
/// — they resolve per call against the service's registered models.
Status ValidateConfig(const ServiceConfig& config);

}  // namespace stratrec::api

#endif  // STRATREC_API_CONFIG_H_
