// Named algorithm registry of the Service API.
//
// Backends are addressed by stable lower-case names so a caller (or a config
// file) can select "batchstrat" vs "brute-force", or ADPaR's "exact" vs the
// paper's literal "paper-sweep", without compiling against the solver. New
// backends register a callable and immediately become selectable from every
// Service — callers never change.
#ifndef STRATREC_API_REGISTRY_H_
#define STRATREC_API_REGISTRY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/adpar.h"
#include "src/core/batch_scheduler.h"
#include "src/core/multi_objective.h"

namespace stratrec::api {

/// Wraps core::SolveBatchWeighted (the Section-7 multi-objective
/// scalarization) as a registry-compatible batch backend. Register the
/// returned solver under a name of your choice to make a particular weight
/// mix selectable per request; the built-in "weighted" entry uses the
/// default ObjectiveWeights.
core::BatchSolverFn MakeWeightedBatchSolver(core::ObjectiveWeights weights);

/// Process-wide registry of batch-deployment and alternative-recommendation
/// backends. Thread-safe; the built-ins are seeded on first access:
///   batch: "batchstrat", "baseline-g", "brute-force",
///          "weighted" (SolveBatchWeighted at default weights)
///   adpar: "exact", "paper-sweep", "baseline2", "baseline3", "brute"
class AlgorithmRegistry {
 public:
  static AlgorithmRegistry& Global();

  /// Registers a batch backend. Fails with kFailedPrecondition when `name`
  /// is taken and kInvalidArgument on an empty name or null solver.
  Status RegisterBatch(const std::string& name, core::BatchSolverFn solver);
  /// Registers an alternative-recommendation backend (same error taxonomy).
  Status RegisterAdpar(const std::string& name, core::AdparSolverFn solver);

  /// Looks up a backend; fails with kNotFound listing the known names.
  Result<core::BatchSolverFn> FindBatch(const std::string& name) const;
  Result<core::AdparSolverFn> FindAdpar(const std::string& name) const;

  /// Registered names in lexicographic order.
  std::vector<std::string> BatchNames() const;
  std::vector<std::string> AdparNames() const;

 private:
  AlgorithmRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, core::BatchSolverFn> batch_;
  std::map<std::string, core::AdparSolverFn> adpar_;
};

}  // namespace stratrec::api

#endif  // STRATREC_API_REGISTRY_H_
