#include "src/api/registry.h"

#include "src/core/adpar_baselines.h"
#include "src/core/adpar_paper_sweep.h"

namespace stratrec::api {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

}  // namespace

core::BatchSolverFn MakeWeightedBatchSolver(core::ObjectiveWeights weights) {
  return [weights](const std::vector<core::DeploymentRequest>& requests,
                   const std::vector<core::StrategyProfile>& profiles,
                   double available_workforce,
                   const core::BatchOptions& options)
             -> Result<core::BatchResult> {
    auto result = core::SolveBatchWeighted(requests, profiles,
                                           available_workforce, weights,
                                           options);
    if (!result.ok()) return result.status();
    return std::move(result->batch);
  };
}

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = new AlgorithmRegistry();
  return *registry;
}

AlgorithmRegistry::AlgorithmRegistry() {
  for (auto algorithm :
       {core::BatchAlgorithm::kBatchStrat, core::BatchAlgorithm::kBaselineG,
        core::BatchAlgorithm::kBruteForce}) {
    batch_.emplace(core::BatchAlgorithmName(algorithm),
                   core::SolverForAlgorithm(algorithm));
  }
  batch_.emplace("weighted", MakeWeightedBatchSolver(core::ObjectiveWeights{}));
  adpar_.emplace("exact", [](const std::vector<core::ParamVector>& strategies,
                             const core::ParamVector& request, int k) {
    return core::AdparExact(strategies, request, k, nullptr);
  });
  adpar_.emplace("paper-sweep", core::AdparPaperSweep);
  adpar_.emplace("baseline2", core::AdparBaseline2);
  adpar_.emplace("baseline3", core::AdparBaseline3);
  adpar_.emplace("brute", [](const std::vector<core::ParamVector>& strategies,
                             const core::ParamVector& request, int k) {
    return core::AdparBrute(strategies, request, k);
  });
}

Status AlgorithmRegistry::RegisterBatch(const std::string& name,
                                        core::BatchSolverFn solver) {
  if (name.empty()) return Status::InvalidArgument("backend name is empty");
  if (!solver) return Status::InvalidArgument("batch solver is null");
  std::lock_guard<std::mutex> lock(mutex_);
  if (!batch_.emplace(name, std::move(solver)).second) {
    return Status::FailedPrecondition("batch backend '" + name +
                                      "' is already registered");
  }
  return Status::OK();
}

Status AlgorithmRegistry::RegisterAdpar(const std::string& name,
                                        core::AdparSolverFn solver) {
  if (name.empty()) return Status::InvalidArgument("backend name is empty");
  if (!solver) return Status::InvalidArgument("adpar solver is null");
  std::lock_guard<std::mutex> lock(mutex_);
  if (!adpar_.emplace(name, std::move(solver)).second) {
    return Status::FailedPrecondition("adpar backend '" + name +
                                      "' is already registered");
  }
  return Status::OK();
}

Result<core::BatchSolverFn> AlgorithmRegistry::FindBatch(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = batch_.find(name);
  if (it == batch_.end()) {
    std::vector<std::string> names;
    for (const auto& [known, fn] : batch_) names.push_back(known);
    return Status::NotFound("no batch backend named '" + name +
                            "' (known: " + JoinNames(names) + ")");
  }
  return it->second;
}

Result<core::AdparSolverFn> AlgorithmRegistry::FindAdpar(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = adpar_.find(name);
  if (it == adpar_.end()) {
    std::vector<std::string> names;
    for (const auto& [known, fn] : adpar_) names.push_back(known);
    return Status::NotFound("no adpar backend named '" + name +
                            "' (known: " + JoinNames(names) + ")");
  }
  return it->second;
}

std::vector<std::string> AlgorithmRegistry::BatchNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, fn] : batch_) names.push_back(name);
  return names;
}

std::vector<std::string> AlgorithmRegistry::AdparNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, fn] : adpar_) names.push_back(name);
  return names;
}

}  // namespace stratrec::api
