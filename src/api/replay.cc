#include "src/api/replay.h"

#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace stratrec::wire {

namespace {

/// A named availability spec resolves against models registered on the live
/// service — which are not part of the trace. The recorded report captured
/// the resolved W, so replay pins it as a fixed spec (byte-identical: the
/// codec round-trips doubles exactly). Also applies to kDefault when the
/// recorded config's default is itself named.
void PinNamedAvailability(const JournalTrace& trace,
                          api::AvailabilitySpec* spec, double recorded_w) {
  using Kind = api::AvailabilitySpec::Kind;
  const bool named_default =
      trace.has_config &&
      trace.config.availability.kind == Kind::kNamed;
  if (spec->kind == Kind::kNamed ||
      (spec->kind == Kind::kDefault && named_default)) {
    *spec = api::AvailabilitySpec::Fixed(recorded_w);
  }
}

std::string RoundId(const std::string& request_id, size_t round) {
  return round == 0 ? request_id
                    : request_id + "#" + std::to_string(round);
}

}  // namespace

Result<api::Service> ServiceFromTrace(const JournalTrace& trace,
                                      size_t worker_threads) {
  if (!trace.has_config) {
    return Status::FailedPrecondition("trace has no config record");
  }
  if (!trace.has_catalog) {
    return Status::FailedPrecondition("trace has no catalog record");
  }
  api::ServiceConfig config = trace.config;
  config.journal = api::JournalConfig{};  // replay must not re-record
  if (worker_threads > 0) config.execution.worker_threads = worker_threads;
  return api::Service::Create(trace.catalog, std::move(config));
}

Result<ReplayResult> ReplayTrace(const JournalTrace& trace,
                                 const ReplayOptions& options) {
  auto service = ServiceFromTrace(trace, options.worker_threads);
  if (!service.ok()) return service.status();

  ReplayResult result;

  /// One in-flight replayed pair: the ticket and the line its report must
  /// reproduce (the recorded report re-encoded with the round-suffixed id,
  /// so round copies compare cleanly).
  struct PendingBatch {
    api::Ticket<api::BatchReport> ticket;
    std::string expected;
  };
  struct PendingSweep {
    api::Ticket<api::SweepReport> ticket;
    std::string expected;
  };
  std::vector<PendingBatch> batches;
  std::vector<PendingSweep> sweeps;

  // Index the stream records up front: events grouped per session in
  // journal order (which the per-session mutex made seq order).
  std::unordered_map<std::string, std::vector<const StreamEventRecord*>>
      session_events;
  for (const StreamEventRecord& record : trace.stream_events) {
    session_events[record.session_id].push_back(&record);
  }

  const size_t rounds = options.rounds == 0 ? 1 : options.rounds;
  const auto start = std::chrono::steady_clock::now();
  for (size_t round = 0; round < rounds; ++round) {
    for (const PairRecord& pair : trace.pairs) {
      if (!pair.status.ok()) {
        // Cancelled or failed on record: nothing completed to reproduce.
        if (round == 0) ++result.skipped;
        continue;
      }
      ++result.replayed;
      const std::string id = RoundId(pair.request_id, round);
      if (pair.kind == PairRecord::Kind::kBatch) {
        api::BatchRequest request = pair.batch_request;
        request.request_id = id;
        PinNamedAvailability(trace, &request.availability,
                             pair.batch_report.availability);
        result.work_items += request.requests.size();
        api::BatchReport expected = pair.batch_report;
        expected.request_id = id;
        batches.push_back({service->SubmitBatchAsync(std::move(request)),
                           json::Dump(Encode(expected))});
      } else {
        api::SweepRequest request = pair.sweep_request;
        request.request_id = id;
        PinNamedAvailability(trace, &request.availability,
                             pair.sweep_report.availability);
        result.work_items += pair.sweep_report.outcomes.size();
        api::SweepReport expected = pair.sweep_report;
        expected.request_id = id;
        sweeps.push_back({service->RunSweepAsync(std::move(request)),
                          json::Dump(Encode(expected))});
      }
    }
  }

  // Stream sessions: reopen each recorded session and re-drive its events
  // in seq order. Stream semantics are sequential per session, so this leg
  // is synchronous — the parallelism replay exercises here is inside each
  // event (the scheduler's pricing rows and snapshot rebuilds fan out
  // across the pool), which is exactly what must not change the bytes.
  for (size_t round = 0; round < rounds; ++round) {
    for (const StreamOpenRecord& open : trace.stream_opens) {
      const auto events_it = session_events.find(open.session_id);
      const std::vector<const StreamEventRecord*>* events =
          events_it == session_events.end() ? nullptr : &events_it->second;

      // A compacted chain keeps every stream-open but may have folded away
      // an event prefix; a seq gap anywhere means the session's scheduler
      // state cannot be reconstructed, so skip it whole.
      bool contiguous = true;
      if (events != nullptr) {
        for (size_t i = 0; i < events->size(); ++i) {
          if ((*events)[i]->seq != i) {
            contiguous = false;
            break;
          }
        }
      }
      if (!contiguous) {
        if (round == 0) ++result.stream_skipped_sessions;
        continue;
      }

      const std::string session_id = RoundId(open.session_id, round);
      api::StreamOptions stream_options = open.options;
      stream_options.session_id = session_id;
      PinNamedAvailability(trace, &stream_options.availability,
                           open.availability);
      auto session = service->OpenStream(stream_options);
      if (!session.ok()) {
        return Status::Internal("replayed session " + session_id +
                                " failed to open: " +
                                session.status().ToString());
      }
      ++result.stream_sessions;

      if (events == nullptr) continue;
      for (const StreamEventRecord* record : *events) {
        ++result.stream_events_replayed;
        api::StreamEvent event = record->event;
        if (event.kind == api::StreamEvent::Kind::kAvailabilityChange &&
            record->status.ok()) {
          // Window changes through a named model resolve against live
          // registrations the trace does not carry; the recorded update
          // captured the resolved W, so pin it like the batch leg does.
          PinNamedAvailability(trace, &event.availability,
                               record->update.availability);
        }
        auto update = session->Submit(event);
        bool matched = false;
        if (record->status.ok()) {
          if (update.ok()) {
            api::StreamUpdate expected = record->update;
            expected.session_id = session_id;
            matched = json::Dump(Encode(expected)) ==
                      json::Dump(Encode(*update));
          }
        } else {
          matched = !update.ok() &&
                    json::Dump(Encode(record->status)) ==
                        json::Dump(Encode(update.status()));
        }
        if (matched) {
          ++result.stream_matched;
        } else {
          result.mismatched.push_back(session_id + "@" +
                                      std::to_string(record->seq));
        }
      }
    }
  }

  for (PendingBatch& pending : batches) {
    auto report = pending.ticket.Wait();
    if (!report.ok()) {
      return Status::Internal("replayed batch " + pending.ticket.id() +
                              " failed: " + report.status().ToString());
    }
    if (json::Dump(Encode(*report)) == pending.expected) {
      ++result.matched;
    } else {
      result.mismatched.push_back(pending.ticket.id());
    }
  }
  for (PendingSweep& pending : sweeps) {
    auto report = pending.ticket.Wait();
    if (!report.ok()) {
      return Status::Internal("replayed sweep " + pending.ticket.id() +
                              " failed: " + report.status().ToString());
    }
    if (json::Dump(Encode(*report)) == pending.expected) {
      ++result.matched;
    } else {
      result.mismatched.push_back(pending.ticket.id());
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.seconds = elapsed.count();
  return result;
}

}  // namespace stratrec::wire
