#include "src/api/replay.h"

#include <chrono>
#include <utility>

namespace stratrec::wire {

namespace {

/// A named availability spec resolves against models registered on the live
/// service — which are not part of the trace. The recorded report captured
/// the resolved W, so replay pins it as a fixed spec (byte-identical: the
/// codec round-trips doubles exactly). Also applies to kDefault when the
/// recorded config's default is itself named.
void PinNamedAvailability(const JournalTrace& trace,
                          api::AvailabilitySpec* spec, double recorded_w) {
  using Kind = api::AvailabilitySpec::Kind;
  const bool named_default =
      trace.has_config &&
      trace.config.availability.kind == Kind::kNamed;
  if (spec->kind == Kind::kNamed ||
      (spec->kind == Kind::kDefault && named_default)) {
    *spec = api::AvailabilitySpec::Fixed(recorded_w);
  }
}

std::string RoundId(const std::string& request_id, size_t round) {
  return round == 0 ? request_id
                    : request_id + "#" + std::to_string(round);
}

}  // namespace

Result<api::Service> ServiceFromTrace(const JournalTrace& trace,
                                      size_t worker_threads) {
  if (!trace.has_config) {
    return Status::FailedPrecondition("trace has no config record");
  }
  if (!trace.has_catalog) {
    return Status::FailedPrecondition("trace has no catalog record");
  }
  api::ServiceConfig config = trace.config;
  config.journal = api::JournalConfig{};  // replay must not re-record
  if (worker_threads > 0) config.execution.worker_threads = worker_threads;
  return api::Service::Create(trace.catalog, std::move(config));
}

Result<ReplayResult> ReplayTrace(const JournalTrace& trace,
                                 const ReplayOptions& options) {
  auto service = ServiceFromTrace(trace, options.worker_threads);
  if (!service.ok()) return service.status();

  ReplayResult result;

  /// One in-flight replayed pair: the ticket and the line its report must
  /// reproduce (the recorded report re-encoded with the round-suffixed id,
  /// so round copies compare cleanly).
  struct PendingBatch {
    api::Ticket<api::BatchReport> ticket;
    std::string expected;
  };
  struct PendingSweep {
    api::Ticket<api::SweepReport> ticket;
    std::string expected;
  };
  std::vector<PendingBatch> batches;
  std::vector<PendingSweep> sweeps;

  const size_t rounds = options.rounds == 0 ? 1 : options.rounds;
  const auto start = std::chrono::steady_clock::now();
  for (size_t round = 0; round < rounds; ++round) {
    for (const PairRecord& pair : trace.pairs) {
      if (!pair.status.ok()) {
        // Cancelled or failed on record: nothing completed to reproduce.
        if (round == 0) ++result.skipped;
        continue;
      }
      ++result.replayed;
      const std::string id = RoundId(pair.request_id, round);
      if (pair.kind == PairRecord::Kind::kBatch) {
        api::BatchRequest request = pair.batch_request;
        request.request_id = id;
        PinNamedAvailability(trace, &request.availability,
                             pair.batch_report.availability);
        result.work_items += request.requests.size();
        api::BatchReport expected = pair.batch_report;
        expected.request_id = id;
        batches.push_back({service->SubmitBatchAsync(std::move(request)),
                           json::Dump(Encode(expected))});
      } else {
        api::SweepRequest request = pair.sweep_request;
        request.request_id = id;
        PinNamedAvailability(trace, &request.availability,
                             pair.sweep_report.availability);
        result.work_items += pair.sweep_report.outcomes.size();
        api::SweepReport expected = pair.sweep_report;
        expected.request_id = id;
        sweeps.push_back({service->RunSweepAsync(std::move(request)),
                          json::Dump(Encode(expected))});
      }
    }
  }

  for (PendingBatch& pending : batches) {
    auto report = pending.ticket.Wait();
    if (!report.ok()) {
      return Status::Internal("replayed batch " + pending.ticket.id() +
                              " failed: " + report.status().ToString());
    }
    if (json::Dump(Encode(*report)) == pending.expected) {
      ++result.matched;
    } else {
      result.mismatched.push_back(pending.ticket.id());
    }
  }
  for (PendingSweep& pending : sweeps) {
    auto report = pending.ticket.Wait();
    if (!report.ok()) {
      return Status::Internal("replayed sweep " + pending.ticket.id() +
                              " failed: " + report.status().ToString());
    }
    if (json::Dump(Encode(*report)) == pending.expected) {
      ++result.matched;
    } else {
      result.mismatched.push_back(pending.ticket.id());
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.seconds = elapsed.count();
  return result;
}

}  // namespace stratrec::wire
