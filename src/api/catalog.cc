#include "src/api/catalog.h"

namespace stratrec::api {

core::Catalog CatalogFromProfiles(std::vector<core::StrategyProfile> profiles,
                                  const std::string& prefix) {
  core::Catalog catalog;
  const std::vector<core::StageSpec> specs = core::AllStageSpecs();
  catalog.strategies.reserve(profiles.size());
  for (size_t j = 0; j < profiles.size(); ++j) {
    catalog.strategies.emplace_back(prefix + std::to_string(j),
                                    specs[j % specs.size()]);
  }
  catalog.profiles = std::move(profiles);
  return catalog;
}

core::Catalog ConstantCatalog(const std::vector<core::ParamVector>& params,
                              const std::string& prefix) {
  std::vector<core::StrategyProfile> profiles;
  profiles.reserve(params.size());
  for (const core::ParamVector& p : params) {
    core::StrategyProfile profile;
    profile.quality = {0.0, p.quality};
    profile.cost = {0.0, p.cost};
    profile.latency = {0.0, p.latency};
    profiles.push_back(profile);
  }
  return CatalogFromProfiles(std::move(profiles), prefix);
}

}  // namespace stratrec::api
