#include "src/api/codec.h"

#include <cmath>
#include <limits>
#include <utility>

#include "src/common/journal.h"
#include "src/core/strategy.h"

namespace stratrec::wire {

namespace {

using json::Value;

// ---------------------------------------------------------------------------
// Decode helpers: strict member access with field-naming errors.
// ---------------------------------------------------------------------------

Status NotAnObject(const char* what) {
  return Status::InvalidArgument(std::string(what) +
                                 " must be a JSON object");
}

Status MissingField(const char* key) {
  return Status::InvalidArgument(std::string("missing field '") + key + "'");
}

Status WrongType(const char* key, const char* expected) {
  return Status::InvalidArgument(std::string("field '") + key + "' must be " +
                                 expected);
}

Status GetString(const Value& obj, const char* key, std::string* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return MissingField(key);
  if (!member->is_string()) return WrongType(key, "a string");
  *out = member->AsString();
  return Status::OK();
}

Status GetDouble(const Value& obj, const char* key, double* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return MissingField(key);
  if (!member->is_number()) return WrongType(key, "a number");
  *out = member->AsNumber();
  return Status::OK();
}

Status GetBool(const Value& obj, const char* key, bool* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return MissingField(key);
  if (!member->is_bool()) return WrongType(key, "a boolean");
  *out = member->AsBool();
  return Status::OK();
}

/// Largest double-exact integer (2^53): every size_t the encoder can have
/// emitted lies below it, and casting anything above would be UB.
constexpr double kMaxExactInteger = 9007199254740992.0;

Status AsSize(const Value& value, const char* key, size_t* out) {
  if (!value.is_number()) return WrongType(key, "a number");
  const double number = value.AsNumber();
  if (number < 0.0 || number > kMaxExactInteger ||
      number != std::floor(number)) {
    return WrongType(key, "a non-negative integer");
  }
  *out = static_cast<size_t>(number);
  return Status::OK();
}

Status GetSize(const Value& obj, const char* key, size_t* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return MissingField(key);
  return AsSize(*member, key, out);
}

Status GetInt(const Value& obj, const char* key, int* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return MissingField(key);
  if (!member->is_number()) return WrongType(key, "an integer");
  const double number = member->AsNumber();
  if (number != std::floor(number) ||
      number < static_cast<double>(std::numeric_limits<int>::min()) ||
      number > static_cast<double>(std::numeric_limits<int>::max())) {
    return WrongType(key, "an integer");
  }
  *out = static_cast<int>(number);
  return Status::OK();
}

Status GetSizeVector(const Value& obj, const char* key,
                     std::vector<size_t>* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return MissingField(key);
  if (!member->is_array()) return WrongType(key, "an array");
  out->clear();
  out->reserve(member->items().size());
  for (const Value& item : member->items()) {
    size_t index = 0;
    STRATREC_RETURN_NOT_OK(AsSize(item, key, &index));
    out->push_back(index);
  }
  return Status::OK();
}

Value EncodeSizeVector(const std::vector<size_t>& values) {
  Value array = Value::Array();
  for (const size_t v : values) array.Append(v);
  return array;
}

// ---------------------------------------------------------------------------
// Enum wire names. These are part of the format: renaming an enumerator in
// core must not change the wire string without a format-version bump.
// ---------------------------------------------------------------------------

const char* WireName(core::Objective objective) {
  switch (objective) {
    case core::Objective::kThroughput:
      return "throughput";
    case core::Objective::kPayoff:
      return "payoff";
  }
  return "?";
}

Result<core::Objective> ParseObjective(const std::string& name) {
  if (name == "throughput") return core::Objective::kThroughput;
  if (name == "payoff") return core::Objective::kPayoff;
  return Status::InvalidArgument("unknown objective '" + name + "'");
}

const char* WireName(core::AggregationMode mode) {
  switch (mode) {
    case core::AggregationMode::kSum:
      return "sum";
    case core::AggregationMode::kMax:
      return "max";
  }
  return "?";
}

Result<core::AggregationMode> ParseAggregation(const std::string& name) {
  if (name == "sum") return core::AggregationMode::kSum;
  if (name == "max") return core::AggregationMode::kMax;
  return Status::InvalidArgument("unknown aggregation mode '" + name + "'");
}

const char* WireName(core::WorkforcePolicy policy) {
  switch (policy) {
    case core::WorkforcePolicy::kMinimalWorkforce:
      return "minimal-workforce";
    case core::WorkforcePolicy::kPaperMaxOfThree:
      return "paper-max-of-three";
  }
  return "?";
}

Result<core::WorkforcePolicy> ParsePolicy(const std::string& name) {
  if (name == "minimal-workforce") {
    return core::WorkforcePolicy::kMinimalWorkforce;
  }
  if (name == "paper-max-of-three") {
    return core::WorkforcePolicy::kPaperMaxOfThree;
  }
  return Status::InvalidArgument("unknown workforce policy '" + name + "'");
}

const char* WireName(api::AvailabilitySpec::Kind kind) {
  switch (kind) {
    case api::AvailabilitySpec::Kind::kDefault:
      return "default";
    case api::AvailabilitySpec::Kind::kFixed:
      return "fixed";
    case api::AvailabilitySpec::Kind::kPmf:
      return "pmf";
    case api::AvailabilitySpec::Kind::kSamples:
      return "samples";
    case api::AvailabilitySpec::Kind::kNamed:
      return "named";
  }
  return "?";
}

Result<StatusCode> ParseStatusCode(const std::string& name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kInfeasible,
      StatusCode::kCancelled,   StatusCode::kInternal,
      StatusCode::kDeadlineExceeded,
  };
  for (const StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return Status::InvalidArgument("unknown status code '" + name + "'");
}

Result<api::StreamEvent::Kind> ParseStreamEventKind(const std::string& name) {
  using Kind = api::StreamEvent::Kind;
  for (const Kind kind : {Kind::kArrival, Kind::kRevocation, Kind::kCompletion,
                          Kind::kAvailabilityChange}) {
    if (name == api::StreamEventKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown stream event kind '" + name + "'");
}

Result<core::AdmissionDecision::Kind> ParseAdmissionKind(
    const std::string& name) {
  using Kind = core::AdmissionDecision::Kind;
  for (const Kind kind : {Kind::kAdmitted, Kind::kQueued, Kind::kRejected}) {
    if (name == api::AdmissionKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown admission kind '" + name + "'");
}

// Optional-field helpers for request envelopes: encode only when set,
// decode back to nullopt when absent.
void AddOptional(Value* obj, const char* key,
                 const std::optional<std::string>& value) {
  if (value.has_value()) obj->Add(key, *value);
}

void AddOptional(Value* obj, const char* key,
                 const std::optional<bool>& value) {
  if (value.has_value()) obj->Add(key, *value);
}

void AddOptional(Value* obj, const char* key,
                 const std::optional<size_t>& value) {
  if (value.has_value()) obj->Add(key, *value);
}

template <typename Enum>
void AddOptionalEnum(Value* obj, const char* key,
                     const std::optional<Enum>& value) {
  if (value.has_value()) obj->Add(key, WireName(*value));
}

Status GetOptionalString(const Value& obj, const char* key,
                         std::optional<std::string>* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return Status::OK();
  if (!member->is_string()) return WrongType(key, "a string");
  *out = member->AsString();
  return Status::OK();
}

Status GetOptionalBool(const Value& obj, const char* key,
                       std::optional<bool>* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return Status::OK();
  if (!member->is_bool()) return WrongType(key, "a boolean");
  *out = member->AsBool();
  return Status::OK();
}

Status GetOptionalSize(const Value& obj, const char* key,
                       std::optional<size_t>* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return Status::OK();
  size_t value = 0;
  STRATREC_RETURN_NOT_OK(AsSize(*member, key, &value));
  *out = value;
  return Status::OK();
}

template <typename Enum, typename ParseFn>
Status GetOptionalEnum(const Value& obj, const char* key, ParseFn parse,
                       std::optional<Enum>* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return Status::OK();
  if (!member->is_string()) return WrongType(key, "a string");
  auto parsed = parse(member->AsString());
  if (!parsed.ok()) return parsed.status();
  *out = *parsed;
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Status / ParamVector / DeploymentRequest / AdparResult
// ---------------------------------------------------------------------------

json::Value Encode(const Status& status) {
  Value obj = Value::Object();
  obj.Add("code", StatusCodeName(status.code()));
  if (!status.message().empty()) obj.Add("message", status.message());
  return obj;
}

Status DecodeStatus(const json::Value& value, Status* out) {
  if (!value.is_object()) return NotAnObject("status");
  std::string code_name;
  STRATREC_RETURN_NOT_OK(GetString(value, "code", &code_name));
  auto code = ParseStatusCode(code_name);
  if (!code.ok()) return code.status();
  std::string message;
  if (value.Find("message") != nullptr) {
    STRATREC_RETURN_NOT_OK(GetString(value, "message", &message));
  }
  *out = Status(*code, std::move(message));
  return Status::OK();
}

json::Value Encode(const core::ParamVector& params) {
  Value obj = Value::Object();
  obj.Add("quality", params.quality);
  obj.Add("cost", params.cost);
  obj.Add("latency", params.latency);
  return obj;
}

Result<core::ParamVector> DecodeParamVector(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("param vector");
  core::ParamVector params;
  STRATREC_RETURN_NOT_OK(GetDouble(value, "quality", &params.quality));
  STRATREC_RETURN_NOT_OK(GetDouble(value, "cost", &params.cost));
  STRATREC_RETURN_NOT_OK(GetDouble(value, "latency", &params.latency));
  return params;
}

json::Value Encode(const core::DeploymentRequest& request) {
  Value obj = Value::Object();
  obj.Add("id", request.id);
  obj.Add("thresholds", Encode(request.thresholds));
  obj.Add("k", request.k);
  return obj;
}

Result<core::DeploymentRequest> DecodeDeploymentRequest(
    const json::Value& value) {
  if (!value.is_object()) return NotAnObject("deployment request");
  core::DeploymentRequest request;
  STRATREC_RETURN_NOT_OK(GetString(value, "id", &request.id));
  const Value* thresholds = value.Find("thresholds");
  if (thresholds == nullptr) return MissingField("thresholds");
  auto params = DecodeParamVector(*thresholds);
  if (!params.ok()) return params.status();
  request.thresholds = *params;
  STRATREC_RETURN_NOT_OK(GetInt(value, "k", &request.k));
  return request;
}

json::Value Encode(const core::AdparResult& result) {
  Value obj = Value::Object();
  obj.Add("alternative", Encode(result.alternative));
  obj.Add("strategies", EncodeSizeVector(result.strategies));
  obj.Add("squared_distance", result.squared_distance);
  obj.Add("distance", result.distance);
  return obj;
}

Result<core::AdparResult> DecodeAdparResult(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("adpar result");
  core::AdparResult result;
  const Value* alternative = value.Find("alternative");
  if (alternative == nullptr) return MissingField("alternative");
  auto params = DecodeParamVector(*alternative);
  if (!params.ok()) return params.status();
  result.alternative = *params;
  STRATREC_RETURN_NOT_OK(GetSizeVector(value, "strategies",
                                       &result.strategies));
  STRATREC_RETURN_NOT_OK(
      GetDouble(value, "squared_distance", &result.squared_distance));
  STRATREC_RETURN_NOT_OK(GetDouble(value, "distance", &result.distance));
  return result;
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

json::Value Encode(const core::Catalog& catalog) {
  Value obj = Value::Object();
  Value strategies = Value::Array();
  for (const core::Strategy& strategy : catalog.strategies) {
    Value entry = Value::Object();
    entry.Add("id", strategy.id());
    Value stages = Value::Array();
    for (const core::StageSpec& stage : strategy.stages()) {
      stages.Append(core::StageName(stage));
    }
    entry.Add("stages", std::move(stages));
    strategies.Append(std::move(entry));
  }
  obj.Add("strategies", std::move(strategies));

  Value profiles = Value::Array();
  for (const core::StrategyProfile& profile : catalog.profiles) {
    Value entry = Value::Object();
    const auto add_model = [&entry](const char* key,
                                    const core::LinearModel& model) {
      Value line = Value::Object();
      line.Add("alpha", model.alpha);
      line.Add("beta", model.beta);
      entry.Add(key, std::move(line));
    };
    add_model("quality", profile.quality);
    add_model("cost", profile.cost);
    add_model("latency", profile.latency);
    profiles.Append(std::move(entry));
  }
  obj.Add("profiles", std::move(profiles));
  return obj;
}

namespace {

Status DecodeLinearModel(const Value& obj, const char* key,
                         core::LinearModel* out) {
  const Value* member = obj.Find(key);
  if (member == nullptr) return MissingField(key);
  if (!member->is_object()) return WrongType(key, "an object");
  STRATREC_RETURN_NOT_OK(GetDouble(*member, "alpha", &out->alpha));
  STRATREC_RETURN_NOT_OK(GetDouble(*member, "beta", &out->beta));
  return Status::OK();
}

}  // namespace

Result<core::Catalog> DecodeCatalog(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("catalog");
  core::Catalog catalog;

  const Value* strategies = value.Find("strategies");
  if (strategies == nullptr) return MissingField("strategies");
  if (!strategies->is_array()) return WrongType("strategies", "an array");
  catalog.strategies.reserve(strategies->items().size());
  for (const Value& entry : strategies->items()) {
    if (!entry.is_object()) return NotAnObject("catalog strategy");
    std::string id;
    STRATREC_RETURN_NOT_OK(GetString(entry, "id", &id));
    const Value* stages = entry.Find("stages");
    if (stages == nullptr) return MissingField("stages");
    if (!stages->is_array()) return WrongType("stages", "an array");
    std::vector<core::StageSpec> specs;
    specs.reserve(stages->items().size());
    for (const Value& stage : stages->items()) {
      if (!stage.is_string()) return WrongType("stages", "stage-name strings");
      auto spec = core::ParseStageName(stage.AsString());
      if (!spec.ok()) return spec.status();
      specs.push_back(*spec);
    }
    catalog.strategies.emplace_back(std::move(id), std::move(specs));
  }

  const Value* profiles = value.Find("profiles");
  if (profiles == nullptr) return MissingField("profiles");
  if (!profiles->is_array()) return WrongType("profiles", "an array");
  catalog.profiles.reserve(profiles->items().size());
  for (const Value& entry : profiles->items()) {
    if (!entry.is_object()) return NotAnObject("catalog profile");
    core::StrategyProfile profile;
    STRATREC_RETURN_NOT_OK(DecodeLinearModel(entry, "quality",
                                             &profile.quality));
    STRATREC_RETURN_NOT_OK(DecodeLinearModel(entry, "cost", &profile.cost));
    STRATREC_RETURN_NOT_OK(DecodeLinearModel(entry, "latency",
                                             &profile.latency));
    catalog.profiles.push_back(profile);
  }
  return catalog;
}

// ---------------------------------------------------------------------------
// AvailabilitySpec
// ---------------------------------------------------------------------------

json::Value Encode(const api::AvailabilitySpec& spec) {
  Value obj = Value::Object();
  obj.Add("kind", WireName(spec.kind));
  switch (spec.kind) {
    case api::AvailabilitySpec::Kind::kDefault:
      break;
    case api::AvailabilitySpec::Kind::kFixed:
      obj.Add("value", spec.value);
      break;
    case api::AvailabilitySpec::Kind::kPmf: {
      Value atoms = Value::Array();
      for (const stats::PmfAtom& atom : spec.atoms) {
        Value entry = Value::Object();
        entry.Add("value", atom.value);
        entry.Add("probability", atom.probability);
        atoms.Append(std::move(entry));
      }
      obj.Add("atoms", std::move(atoms));
      break;
    }
    case api::AvailabilitySpec::Kind::kSamples: {
      Value samples = Value::Array();
      for (const double sample : spec.samples) samples.Append(sample);
      obj.Add("samples", std::move(samples));
      break;
    }
    case api::AvailabilitySpec::Kind::kNamed:
      obj.Add("name", spec.name);
      break;
  }
  return obj;
}

Result<api::AvailabilitySpec> DecodeAvailabilitySpec(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("availability spec");
  std::string kind;
  STRATREC_RETURN_NOT_OK(GetString(value, "kind", &kind));
  api::AvailabilitySpec spec;
  if (kind == "default") {
    spec.kind = api::AvailabilitySpec::Kind::kDefault;
  } else if (kind == "fixed") {
    spec.kind = api::AvailabilitySpec::Kind::kFixed;
    STRATREC_RETURN_NOT_OK(GetDouble(value, "value", &spec.value));
  } else if (kind == "pmf") {
    spec.kind = api::AvailabilitySpec::Kind::kPmf;
    const Value* atoms = value.Find("atoms");
    if (atoms == nullptr) return MissingField("atoms");
    if (!atoms->is_array()) return WrongType("atoms", "an array");
    spec.atoms.reserve(atoms->items().size());
    for (const Value& entry : atoms->items()) {
      if (!entry.is_object()) return NotAnObject("pmf atom");
      stats::PmfAtom atom;
      STRATREC_RETURN_NOT_OK(GetDouble(entry, "value", &atom.value));
      STRATREC_RETURN_NOT_OK(GetDouble(entry, "probability",
                                       &atom.probability));
      spec.atoms.push_back(atom);
    }
  } else if (kind == "samples") {
    spec.kind = api::AvailabilitySpec::Kind::kSamples;
    const Value* samples = value.Find("samples");
    if (samples == nullptr) return MissingField("samples");
    if (!samples->is_array()) return WrongType("samples", "an array");
    spec.samples.reserve(samples->items().size());
    for (const Value& entry : samples->items()) {
      if (!entry.is_number()) return WrongType("samples", "numbers");
      spec.samples.push_back(entry.AsNumber());
    }
  } else if (kind == "named") {
    spec.kind = api::AvailabilitySpec::Kind::kNamed;
    STRATREC_RETURN_NOT_OK(GetString(value, "name", &spec.name));
  } else {
    return Status::InvalidArgument("unknown availability kind '" + kind + "'");
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Batch envelopes
// ---------------------------------------------------------------------------

json::Value Encode(const api::BatchRequest& request) {
  Value obj = Value::Object();
  if (!request.request_id.empty()) obj.Add("request_id", request.request_id);
  Value requests = Value::Array();
  for (const core::DeploymentRequest& r : request.requests) {
    requests.Append(Encode(r));
  }
  obj.Add("requests", std::move(requests));
  obj.Add("availability", Encode(request.availability));
  AddOptional(&obj, "algorithm", request.algorithm);
  AddOptionalEnum(&obj, "objective", request.objective);
  AddOptionalEnum(&obj, "aggregation", request.aggregation);
  AddOptionalEnum(&obj, "policy", request.policy);
  AddOptional(&obj, "recommend_alternatives", request.recommend_alternatives);
  AddOptional(&obj, "adpar_solver", request.adpar_solver);
  // 0 (no deadline) is omitted so pre-v7 request encodings are reproduced
  // byte for byte.
  if (request.deadline_ms > 0.0) obj.Add("deadline_ms", request.deadline_ms);
  return obj;
}

Result<api::BatchRequest> DecodeBatchRequest(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("batch request");
  api::BatchRequest request;
  if (value.Find("request_id") != nullptr) {
    STRATREC_RETURN_NOT_OK(GetString(value, "request_id",
                                     &request.request_id));
  }
  const Value* requests = value.Find("requests");
  if (requests == nullptr) return MissingField("requests");
  if (!requests->is_array()) return WrongType("requests", "an array");
  request.requests.reserve(requests->items().size());
  for (const Value& entry : requests->items()) {
    auto decoded = DecodeDeploymentRequest(entry);
    if (!decoded.ok()) return decoded.status();
    request.requests.push_back(std::move(*decoded));
  }
  const Value* availability = value.Find("availability");
  if (availability == nullptr) return MissingField("availability");
  auto spec = DecodeAvailabilitySpec(*availability);
  if (!spec.ok()) return spec.status();
  request.availability = std::move(*spec);
  STRATREC_RETURN_NOT_OK(GetOptionalString(value, "algorithm",
                                           &request.algorithm));
  STRATREC_RETURN_NOT_OK(GetOptionalEnum<core::Objective>(
      value, "objective", ParseObjective, &request.objective));
  STRATREC_RETURN_NOT_OK(GetOptionalEnum<core::AggregationMode>(
      value, "aggregation", ParseAggregation, &request.aggregation));
  STRATREC_RETURN_NOT_OK(GetOptionalEnum<core::WorkforcePolicy>(
      value, "policy", ParsePolicy, &request.policy));
  STRATREC_RETURN_NOT_OK(GetOptionalBool(value, "recommend_alternatives",
                                         &request.recommend_alternatives));
  STRATREC_RETURN_NOT_OK(GetOptionalString(value, "adpar_solver",
                                           &request.adpar_solver));
  if (value.Find("deadline_ms") != nullptr) {
    STRATREC_RETURN_NOT_OK(GetDouble(value, "deadline_ms",
                                     &request.deadline_ms));
  }
  return request;
}

namespace {

Value EncodeRequestOutcome(const core::RequestOutcome& outcome) {
  Value obj = Value::Object();
  obj.Add("request_index", outcome.request_index);
  obj.Add("satisfied", outcome.satisfied);
  obj.Add("eligible", outcome.eligible);
  obj.Add("workforce", outcome.workforce);
  obj.Add("objective_value", outcome.objective_value);
  obj.Add("strategies", EncodeSizeVector(outcome.strategies));
  return obj;
}

Result<core::RequestOutcome> DecodeRequestOutcome(const Value& value) {
  if (!value.is_object()) return NotAnObject("request outcome");
  core::RequestOutcome outcome;
  STRATREC_RETURN_NOT_OK(GetSize(value, "request_index",
                                 &outcome.request_index));
  STRATREC_RETURN_NOT_OK(GetBool(value, "satisfied", &outcome.satisfied));
  STRATREC_RETURN_NOT_OK(GetBool(value, "eligible", &outcome.eligible));
  STRATREC_RETURN_NOT_OK(GetDouble(value, "workforce", &outcome.workforce));
  STRATREC_RETURN_NOT_OK(GetDouble(value, "objective_value",
                                   &outcome.objective_value));
  STRATREC_RETURN_NOT_OK(GetSizeVector(value, "strategies",
                                       &outcome.strategies));
  return outcome;
}

Value EncodeBatchResult(const core::BatchResult& batch) {
  Value obj = Value::Object();
  Value outcomes = Value::Array();
  for (const core::RequestOutcome& outcome : batch.outcomes) {
    outcomes.Append(EncodeRequestOutcome(outcome));
  }
  obj.Add("outcomes", std::move(outcomes));
  obj.Add("total_objective", batch.total_objective);
  obj.Add("workforce_used", batch.workforce_used);
  obj.Add("satisfied", EncodeSizeVector(batch.satisfied));
  obj.Add("unsatisfied", EncodeSizeVector(batch.unsatisfied));
  return obj;
}

Result<core::BatchResult> DecodeBatchResult(const Value& value) {
  if (!value.is_object()) return NotAnObject("batch result");
  core::BatchResult batch;
  const Value* outcomes = value.Find("outcomes");
  if (outcomes == nullptr) return MissingField("outcomes");
  if (!outcomes->is_array()) return WrongType("outcomes", "an array");
  batch.outcomes.reserve(outcomes->items().size());
  for (const Value& entry : outcomes->items()) {
    auto outcome = DecodeRequestOutcome(entry);
    if (!outcome.ok()) return outcome.status();
    batch.outcomes.push_back(std::move(*outcome));
  }
  STRATREC_RETURN_NOT_OK(GetDouble(value, "total_objective",
                                   &batch.total_objective));
  STRATREC_RETURN_NOT_OK(GetDouble(value, "workforce_used",
                                   &batch.workforce_used));
  STRATREC_RETURN_NOT_OK(GetSizeVector(value, "satisfied", &batch.satisfied));
  STRATREC_RETURN_NOT_OK(GetSizeVector(value, "unsatisfied",
                                       &batch.unsatisfied));
  return batch;
}

Value EncodeStratRecReport(const core::StratRecReport& report) {
  Value obj = Value::Object();
  Value aggregator = Value::Object();
  aggregator.Add("availability", report.aggregator.availability);
  Value params = Value::Array();
  for (const core::ParamVector& p : report.aggregator.strategy_params) {
    params.Append(Encode(p));
  }
  aggregator.Add("strategy_params", std::move(params));
  aggregator.Add("batch", EncodeBatchResult(report.aggregator.batch));
  obj.Add("aggregator", std::move(aggregator));

  Value alternatives = Value::Array();
  for (const core::AlternativeRecommendation& alt : report.alternatives) {
    Value entry = Value::Object();
    entry.Add("request_index", alt.request_index);
    entry.Add("result", Encode(alt.result));
    alternatives.Append(std::move(entry));
  }
  obj.Add("alternatives", std::move(alternatives));
  obj.Add("adpar_failures", EncodeSizeVector(report.adpar_failures));
  return obj;
}

Result<core::StratRecReport> DecodeStratRecReport(const Value& value) {
  if (!value.is_object()) return NotAnObject("stratrec report");
  core::StratRecReport report;

  const Value* aggregator = value.Find("aggregator");
  if (aggregator == nullptr) return MissingField("aggregator");
  if (!aggregator->is_object()) return WrongType("aggregator", "an object");
  STRATREC_RETURN_NOT_OK(GetDouble(*aggregator, "availability",
                                   &report.aggregator.availability));
  const Value* params = aggregator->Find("strategy_params");
  if (params == nullptr) return MissingField("strategy_params");
  if (!params->is_array()) return WrongType("strategy_params", "an array");
  report.aggregator.strategy_params.reserve(params->items().size());
  for (const Value& entry : params->items()) {
    auto decoded = DecodeParamVector(entry);
    if (!decoded.ok()) return decoded.status();
    report.aggregator.strategy_params.push_back(*decoded);
  }
  const Value* batch = aggregator->Find("batch");
  if (batch == nullptr) return MissingField("batch");
  auto batch_result = DecodeBatchResult(*batch);
  if (!batch_result.ok()) return batch_result.status();
  report.aggregator.batch = std::move(*batch_result);

  const Value* alternatives = value.Find("alternatives");
  if (alternatives == nullptr) return MissingField("alternatives");
  if (!alternatives->is_array()) return WrongType("alternatives", "an array");
  report.alternatives.reserve(alternatives->items().size());
  for (const Value& entry : alternatives->items()) {
    if (!entry.is_object()) return NotAnObject("alternative recommendation");
    core::AlternativeRecommendation alt;
    STRATREC_RETURN_NOT_OK(GetSize(entry, "request_index",
                                   &alt.request_index));
    const Value* result = entry.Find("result");
    if (result == nullptr) return MissingField("result");
    auto adpar = DecodeAdparResult(*result);
    if (!adpar.ok()) return adpar.status();
    alt.result = std::move(*adpar);
    report.alternatives.push_back(std::move(alt));
  }
  STRATREC_RETURN_NOT_OK(GetSizeVector(value, "adpar_failures",
                                       &report.adpar_failures));
  return report;
}

}  // namespace

json::Value Encode(const api::BatchReport& report) {
  Value obj = Value::Object();
  obj.Add("request_id", report.request_id);
  obj.Add("algorithm", report.algorithm);
  obj.Add("availability", report.availability);
  obj.Add("result", EncodeStratRecReport(report.result));
  return obj;
}

Result<api::BatchReport> DecodeBatchReport(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("batch report");
  api::BatchReport report;
  STRATREC_RETURN_NOT_OK(GetString(value, "request_id", &report.request_id));
  STRATREC_RETURN_NOT_OK(GetString(value, "algorithm", &report.algorithm));
  STRATREC_RETURN_NOT_OK(GetDouble(value, "availability",
                                   &report.availability));
  const Value* result = value.Find("result");
  if (result == nullptr) return MissingField("result");
  auto decoded = DecodeStratRecReport(*result);
  if (!decoded.ok()) return decoded.status();
  report.result = std::move(*decoded);
  return report;
}

// ---------------------------------------------------------------------------
// Sweep envelopes
// ---------------------------------------------------------------------------

json::Value Encode(const api::SweepRequest& request) {
  Value obj = Value::Object();
  if (!request.request_id.empty()) obj.Add("request_id", request.request_id);
  Value targets = Value::Array();
  for (const core::DeploymentRequest& target : request.targets) {
    targets.Append(Encode(target));
  }
  obj.Add("targets", std::move(targets));
  Value solvers = Value::Array();
  for (const std::string& solver : request.solvers) solvers.Append(solver);
  obj.Add("solvers", std::move(solvers));
  obj.Add("availability", Encode(request.availability));
  if (request.deadline_ms > 0.0) obj.Add("deadline_ms", request.deadline_ms);
  return obj;
}

Result<api::SweepRequest> DecodeSweepRequest(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("sweep request");
  api::SweepRequest request;
  if (value.Find("request_id") != nullptr) {
    STRATREC_RETURN_NOT_OK(GetString(value, "request_id",
                                     &request.request_id));
  }
  const Value* targets = value.Find("targets");
  if (targets == nullptr) return MissingField("targets");
  if (!targets->is_array()) return WrongType("targets", "an array");
  request.targets.reserve(targets->items().size());
  for (const Value& entry : targets->items()) {
    auto decoded = DecodeDeploymentRequest(entry);
    if (!decoded.ok()) return decoded.status();
    request.targets.push_back(std::move(*decoded));
  }
  const Value* solvers = value.Find("solvers");
  if (solvers == nullptr) return MissingField("solvers");
  if (!solvers->is_array()) return WrongType("solvers", "an array");
  request.solvers.reserve(solvers->items().size());
  for (const Value& entry : solvers->items()) {
    if (!entry.is_string()) return WrongType("solvers", "strings");
    request.solvers.push_back(entry.AsString());
  }
  const Value* availability = value.Find("availability");
  if (availability == nullptr) return MissingField("availability");
  auto spec = DecodeAvailabilitySpec(*availability);
  if (!spec.ok()) return spec.status();
  request.availability = std::move(*spec);
  if (value.Find("deadline_ms") != nullptr) {
    STRATREC_RETURN_NOT_OK(GetDouble(value, "deadline_ms",
                                     &request.deadline_ms));
  }
  return request;
}

json::Value Encode(const api::SweepReport& report) {
  Value obj = Value::Object();
  obj.Add("request_id", report.request_id);
  obj.Add("availability", report.availability);
  Value params = Value::Array();
  for (const core::ParamVector& p : report.strategy_params) {
    params.Append(Encode(p));
  }
  obj.Add("strategy_params", std::move(params));
  Value outcomes = Value::Array();
  for (const api::SweepOutcome& outcome : report.outcomes) {
    Value entry = Value::Object();
    entry.Add("target_id", outcome.target_id);
    entry.Add("solver", outcome.solver);
    entry.Add("status", Encode(outcome.status));
    if (outcome.status.ok()) entry.Add("result", Encode(outcome.result));
    outcomes.Append(std::move(entry));
  }
  obj.Add("outcomes", std::move(outcomes));
  return obj;
}

Result<api::SweepReport> DecodeSweepReport(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("sweep report");
  api::SweepReport report;
  STRATREC_RETURN_NOT_OK(GetString(value, "request_id", &report.request_id));
  STRATREC_RETURN_NOT_OK(GetDouble(value, "availability",
                                   &report.availability));
  const Value* params = value.Find("strategy_params");
  if (params == nullptr) return MissingField("strategy_params");
  if (!params->is_array()) return WrongType("strategy_params", "an array");
  report.strategy_params.reserve(params->items().size());
  for (const Value& entry : params->items()) {
    auto decoded = DecodeParamVector(entry);
    if (!decoded.ok()) return decoded.status();
    report.strategy_params.push_back(*decoded);
  }
  const Value* outcomes = value.Find("outcomes");
  if (outcomes == nullptr) return MissingField("outcomes");
  if (!outcomes->is_array()) return WrongType("outcomes", "an array");
  report.outcomes.reserve(outcomes->items().size());
  for (const Value& entry : outcomes->items()) {
    if (!entry.is_object()) return NotAnObject("sweep outcome");
    api::SweepOutcome outcome;
    STRATREC_RETURN_NOT_OK(GetString(entry, "target_id", &outcome.target_id));
    STRATREC_RETURN_NOT_OK(GetString(entry, "solver", &outcome.solver));
    const Value* status = entry.Find("status");
    if (status == nullptr) return MissingField("status");
    STRATREC_RETURN_NOT_OK(DecodeStatus(*status, &outcome.status));
    if (outcome.status.ok()) {
      const Value* result = entry.Find("result");
      if (result == nullptr) return MissingField("result");
      auto adpar = DecodeAdparResult(*result);
      if (!adpar.ok()) return adpar.status();
      outcome.result = std::move(*adpar);
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Stream envelopes
// ---------------------------------------------------------------------------

json::Value Encode(const api::StreamOptions& options) {
  Value obj = Value::Object();
  obj.Add("availability", Encode(options.availability));
  AddOptional(&obj, "max_pending", options.max_pending);
  AddOptional(&obj, "readmit_on_release", options.readmit_on_release);
  AddOptionalEnum(&obj, "objective", options.objective);
  AddOptionalEnum(&obj, "aggregation", options.aggregation);
  AddOptionalEnum(&obj, "policy", options.policy);
  AddOptional(&obj, "recommend_alternatives", options.recommend_alternatives);
  if (options.deadline_ms > 0.0) obj.Add("deadline_ms", options.deadline_ms);
  if (!options.session_id.empty()) obj.Add("session_id", options.session_id);
  return obj;
}

Result<api::StreamOptions> DecodeStreamOptions(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("stream options");
  api::StreamOptions options;
  const Value* availability = value.Find("availability");
  if (availability == nullptr) return MissingField("availability");
  auto spec = DecodeAvailabilitySpec(*availability);
  if (!spec.ok()) return spec.status();
  options.availability = std::move(*spec);
  STRATREC_RETURN_NOT_OK(GetOptionalSize(value, "max_pending",
                                         &options.max_pending));
  STRATREC_RETURN_NOT_OK(GetOptionalBool(value, "readmit_on_release",
                                         &options.readmit_on_release));
  STRATREC_RETURN_NOT_OK(GetOptionalEnum<core::Objective>(
      value, "objective", ParseObjective, &options.objective));
  STRATREC_RETURN_NOT_OK(GetOptionalEnum<core::AggregationMode>(
      value, "aggregation", ParseAggregation, &options.aggregation));
  STRATREC_RETURN_NOT_OK(GetOptionalEnum<core::WorkforcePolicy>(
      value, "policy", ParsePolicy, &options.policy));
  STRATREC_RETURN_NOT_OK(GetOptionalBool(value, "recommend_alternatives",
                                         &options.recommend_alternatives));
  if (value.Find("deadline_ms") != nullptr) {
    STRATREC_RETURN_NOT_OK(GetDouble(value, "deadline_ms",
                                     &options.deadline_ms));
  }
  if (value.Find("session_id") != nullptr) {
    STRATREC_RETURN_NOT_OK(GetString(value, "session_id",
                                     &options.session_id));
  }
  return options;
}

json::Value Encode(const api::StreamEvent& event) {
  Value obj = Value::Object();
  obj.Add("kind", api::StreamEventKindName(event.kind));
  switch (event.kind) {
    case api::StreamEvent::Kind::kArrival:
      obj.Add("request", Encode(event.request));
      break;
    case api::StreamEvent::Kind::kRevocation:
    case api::StreamEvent::Kind::kCompletion:
      obj.Add("request_id", event.request_id);
      break;
    case api::StreamEvent::Kind::kAvailabilityChange:
      obj.Add("availability", Encode(event.availability));
      break;
  }
  return obj;
}

Result<api::StreamEvent> DecodeStreamEvent(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("stream event");
  std::string kind_name;
  STRATREC_RETURN_NOT_OK(GetString(value, "kind", &kind_name));
  auto kind = ParseStreamEventKind(kind_name);
  if (!kind.ok()) return kind.status();
  switch (*kind) {
    case api::StreamEvent::Kind::kArrival: {
      const Value* request = value.Find("request");
      if (request == nullptr) return MissingField("request");
      auto decoded = DecodeDeploymentRequest(*request);
      if (!decoded.ok()) return decoded.status();
      return api::StreamEvent::Arrival(std::move(*decoded));
    }
    case api::StreamEvent::Kind::kRevocation:
    case api::StreamEvent::Kind::kCompletion: {
      std::string request_id;
      STRATREC_RETURN_NOT_OK(GetString(value, "request_id", &request_id));
      return *kind == api::StreamEvent::Kind::kRevocation
                 ? api::StreamEvent::Revocation(std::move(request_id))
                 : api::StreamEvent::Completion(std::move(request_id));
    }
    case api::StreamEvent::Kind::kAvailabilityChange: {
      const Value* availability = value.Find("availability");
      if (availability == nullptr) return MissingField("availability");
      auto spec = DecodeAvailabilitySpec(*availability);
      if (!spec.ok()) return spec.status();
      return api::StreamEvent::AvailabilityChange(std::move(*spec));
    }
  }
  return Status::Internal("unreachable stream event kind");
}

json::Value Encode(const api::StreamUpdate& update) {
  Value obj = Value::Object();
  obj.Add("session_id", update.session_id);
  obj.Add("kind", api::StreamEventKindName(update.kind));
  obj.Add("request_id", update.request_id);
  Value decision = Value::Object();
  decision.Add("kind", api::AdmissionKindName(update.decision.kind));
  decision.Add("strategies", EncodeSizeVector(update.decision.strategies));
  decision.Add("workforce", update.decision.workforce);
  obj.Add("decision", std::move(decision));
  if (update.has_alternative) {
    obj.Add("alternative", Encode(update.alternative));
  }
  obj.Add("availability", update.availability);
  obj.Add("used_workforce", update.used_workforce);
  obj.Add("active", update.active);
  obj.Add("pending", update.pending);
  return obj;
}

Result<api::StreamUpdate> DecodeStreamUpdate(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("stream update");
  api::StreamUpdate update;
  STRATREC_RETURN_NOT_OK(GetString(value, "session_id", &update.session_id));
  std::string kind_name;
  STRATREC_RETURN_NOT_OK(GetString(value, "kind", &kind_name));
  auto kind = ParseStreamEventKind(kind_name);
  if (!kind.ok()) return kind.status();
  update.kind = *kind;
  STRATREC_RETURN_NOT_OK(GetString(value, "request_id", &update.request_id));
  const Value* decision = value.Find("decision");
  if (decision == nullptr) return MissingField("decision");
  if (!decision->is_object()) return WrongType("decision", "an object");
  STRATREC_RETURN_NOT_OK(GetString(*decision, "kind", &kind_name));
  auto admission = ParseAdmissionKind(kind_name);
  if (!admission.ok()) return admission.status();
  update.decision.kind = *admission;
  STRATREC_RETURN_NOT_OK(GetSizeVector(*decision, "strategies",
                                       &update.decision.strategies));
  STRATREC_RETURN_NOT_OK(GetDouble(*decision, "workforce",
                                   &update.decision.workforce));
  const Value* alternative = value.Find("alternative");
  if (alternative != nullptr) {
    auto decoded = DecodeAdparResult(*alternative);
    if (!decoded.ok()) return decoded.status();
    update.has_alternative = true;
    update.alternative = std::move(*decoded);
  }
  STRATREC_RETURN_NOT_OK(GetDouble(value, "availability",
                                   &update.availability));
  STRATREC_RETURN_NOT_OK(GetDouble(value, "used_workforce",
                                   &update.used_workforce));
  STRATREC_RETURN_NOT_OK(GetSize(value, "active", &update.active));
  STRATREC_RETURN_NOT_OK(GetSize(value, "pending", &update.pending));
  return update;
}

// ---------------------------------------------------------------------------
// ServiceConfig
// ---------------------------------------------------------------------------

json::Value Encode(const api::ServiceConfig& config) {
  Value obj = Value::Object();

  Value batch = Value::Object();
  batch.Add("algorithm", config.batch.algorithm);
  batch.Add("objective", WireName(config.batch.objective));
  batch.Add("aggregation", WireName(config.batch.aggregation));
  batch.Add("policy", WireName(config.batch.policy));
  batch.Add("recommend_alternatives", config.batch.recommend_alternatives);
  batch.Add("adpar_solver", config.batch.adpar_solver);
  obj.Add("batch", std::move(batch));

  Value stream = Value::Object();
  stream.Add("max_pending", config.stream.max_pending);
  stream.Add("readmit_on_release", config.stream.readmit_on_release);
  stream.Add("recommend_alternatives", config.stream.recommend_alternatives);
  obj.Add("stream", std::move(stream));

  Value execution = Value::Object();
  execution.Add("worker_threads", config.execution.worker_threads);
  execution.Add("parallel_grain", config.execution.parallel_grain);
  obj.Add("execution", std::move(execution));

  Value cache = Value::Object();
  cache.Add("snapshot_capacity", config.cache.snapshot_capacity);
  cache.Add("shards", config.cache.shards);
  cache.Add("availability_quantum", config.cache.availability_quantum);
  obj.Add("cache", std::move(cache));

  Value journal = Value::Object();
  journal.Add("path", config.journal.path);
  journal.Add("record_cancelled", config.journal.record_cancelled);
  journal.Add("flush_every_record", config.journal.flush_every_record);
  journal.Add("max_segment_bytes", config.journal.max_segment_bytes);
  journal.Add("compact_after_segments", config.journal.compact_after_segments);
  journal.Add("retain_segments", config.journal.retain_segments);
  obj.Add("journal", std::move(journal));

  obj.Add("availability", Encode(config.availability));
  return obj;
}

Result<api::ServiceConfig> DecodeServiceConfig(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("service config");
  api::ServiceConfig config;

  const Value* batch = value.Find("batch");
  if (batch == nullptr) return MissingField("batch");
  if (!batch->is_object()) return WrongType("batch", "an object");
  STRATREC_RETURN_NOT_OK(GetString(*batch, "algorithm",
                                   &config.batch.algorithm));
  std::string name;
  STRATREC_RETURN_NOT_OK(GetString(*batch, "objective", &name));
  auto objective = ParseObjective(name);
  if (!objective.ok()) return objective.status();
  config.batch.objective = *objective;
  STRATREC_RETURN_NOT_OK(GetString(*batch, "aggregation", &name));
  auto aggregation = ParseAggregation(name);
  if (!aggregation.ok()) return aggregation.status();
  config.batch.aggregation = *aggregation;
  STRATREC_RETURN_NOT_OK(GetString(*batch, "policy", &name));
  auto policy = ParsePolicy(name);
  if (!policy.ok()) return policy.status();
  config.batch.policy = *policy;
  STRATREC_RETURN_NOT_OK(GetBool(*batch, "recommend_alternatives",
                                 &config.batch.recommend_alternatives));
  STRATREC_RETURN_NOT_OK(GetString(*batch, "adpar_solver",
                                   &config.batch.adpar_solver));

  const Value* stream = value.Find("stream");
  if (stream == nullptr) return MissingField("stream");
  if (!stream->is_object()) return WrongType("stream", "an object");
  STRATREC_RETURN_NOT_OK(GetSize(*stream, "max_pending",
                                 &config.stream.max_pending));
  STRATREC_RETURN_NOT_OK(GetBool(*stream, "readmit_on_release",
                                 &config.stream.readmit_on_release));
  STRATREC_RETURN_NOT_OK(GetBool(*stream, "recommend_alternatives",
                                 &config.stream.recommend_alternatives));

  const Value* execution = value.Find("execution");
  if (execution == nullptr) return MissingField("execution");
  if (!execution->is_object()) return WrongType("execution", "an object");
  STRATREC_RETURN_NOT_OK(GetSize(*execution, "worker_threads",
                                 &config.execution.worker_threads));
  STRATREC_RETURN_NOT_OK(GetSize(*execution, "parallel_grain",
                                 &config.execution.parallel_grain));

  const Value* cache = value.Find("cache");
  if (cache == nullptr) return MissingField("cache");
  if (!cache->is_object()) return WrongType("cache", "an object");
  STRATREC_RETURN_NOT_OK(GetSize(*cache, "snapshot_capacity",
                                 &config.cache.snapshot_capacity));
  STRATREC_RETURN_NOT_OK(GetSize(*cache, "shards", &config.cache.shards));
  STRATREC_RETURN_NOT_OK(GetDouble(*cache, "availability_quantum",
                                   &config.cache.availability_quantum));

  const Value* journal = value.Find("journal");
  if (journal == nullptr) return MissingField("journal");
  if (!journal->is_object()) return WrongType("journal", "an object");
  STRATREC_RETURN_NOT_OK(GetString(*journal, "path", &config.journal.path));
  STRATREC_RETURN_NOT_OK(GetBool(*journal, "record_cancelled",
                                 &config.journal.record_cancelled));
  STRATREC_RETURN_NOT_OK(GetBool(*journal, "flush_every_record",
                                 &config.journal.flush_every_record));
  STRATREC_RETURN_NOT_OK(GetSize(*journal, "max_segment_bytes",
                                 &config.journal.max_segment_bytes));
  STRATREC_RETURN_NOT_OK(GetSize(*journal, "compact_after_segments",
                                 &config.journal.compact_after_segments));
  STRATREC_RETURN_NOT_OK(GetSize(*journal, "retain_segments",
                                 &config.journal.retain_segments));

  const Value* availability = value.Find("availability");
  if (availability == nullptr) return MissingField("availability");
  auto spec = DecodeAvailabilitySpec(*availability);
  if (!spec.ok()) return spec.status();
  config.availability = std::move(*spec);
  return config;
}

// ---------------------------------------------------------------------------
// ServiceStats
// ---------------------------------------------------------------------------

json::Value Encode(const api::ServiceStats& stats) {
  Value obj = Value::Object();
  obj.Add("batches", stats.batches);
  obj.Add("sweeps", stats.sweeps);
  obj.Add("streams_opened", stats.streams_opened);
  obj.Add("stream_events", stats.stream_events);
  obj.Add("stream_reschedules", stats.stream_reschedules);
  obj.Add("snapshot_delta_updates", stats.snapshot_delta_updates);
  obj.Add("snapshot_rebuilds", stats.snapshot_rebuilds);
  obj.Add("requests_processed", stats.requests_processed);
  obj.Add("cancelled", stats.cancelled);
  obj.Add("queue_depth", stats.queue_depth);
  obj.Add("active_workers", stats.active_workers);
  obj.Add("steals", stats.steals);
  obj.Add("local_hits", stats.local_hits);
  obj.Add("cache_hits", stats.cache_hits);
  obj.Add("cache_misses", stats.cache_misses);
  obj.Add("index_build_nanos", stats.index_build_nanos);
  obj.Add("rejected_requests", stats.rejected_requests);
  obj.Add("retry_after_hints", stats.retry_after_hints);
  obj.Add("deadline_exceeded", stats.deadline_exceeded);
  obj.Add("retries", stats.retries);
  obj.Add("failovers", stats.failovers);
  obj.Add("hedges_won", stats.hedges_won);
  obj.Add("kernel_dispatch", stats.kernel_dispatch);
  return obj;
}

Result<api::ServiceStats> DecodeServiceStats(const json::Value& value) {
  if (!value.is_object()) return NotAnObject("service stats");
  api::ServiceStats stats;
  STRATREC_RETURN_NOT_OK(GetSize(value, "batches", &stats.batches));
  STRATREC_RETURN_NOT_OK(GetSize(value, "sweeps", &stats.sweeps));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "streams_opened", &stats.streams_opened));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "stream_events", &stats.stream_events));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "stream_reschedules", &stats.stream_reschedules));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "snapshot_delta_updates", &stats.snapshot_delta_updates));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "snapshot_rebuilds", &stats.snapshot_rebuilds));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "requests_processed", &stats.requests_processed));
  STRATREC_RETURN_NOT_OK(GetSize(value, "cancelled", &stats.cancelled));
  STRATREC_RETURN_NOT_OK(GetSize(value, "queue_depth", &stats.queue_depth));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "active_workers", &stats.active_workers));
  STRATREC_RETURN_NOT_OK(GetSize(value, "steals", &stats.steals));
  STRATREC_RETURN_NOT_OK(GetSize(value, "local_hits", &stats.local_hits));
  STRATREC_RETURN_NOT_OK(GetSize(value, "cache_hits", &stats.cache_hits));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "cache_misses", &stats.cache_misses));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "index_build_nanos", &stats.index_build_nanos));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "rejected_requests", &stats.rejected_requests));
  STRATREC_RETURN_NOT_OK(
      GetSize(value, "retry_after_hints", &stats.retry_after_hints));
  // Fault-tolerance counters arrived with journal format v7; absent in v6
  // records, so they decode optionally (default 0) to keep old traces
  // replayable.
  std::optional<size_t> opt;
  STRATREC_RETURN_NOT_OK(GetOptionalSize(value, "deadline_exceeded", &opt));
  stats.deadline_exceeded = opt.value_or(0);
  opt.reset();
  STRATREC_RETURN_NOT_OK(GetOptionalSize(value, "retries", &opt));
  stats.retries = opt.value_or(0);
  opt.reset();
  STRATREC_RETURN_NOT_OK(GetOptionalSize(value, "failovers", &opt));
  stats.failovers = opt.value_or(0);
  opt.reset();
  STRATREC_RETURN_NOT_OK(GetOptionalSize(value, "hedges_won", &opt));
  stats.hedges_won = opt.value_or(0);
  STRATREC_RETURN_NOT_OK(
      GetString(value, "kernel_dispatch", &stats.kernel_dispatch));
  return stats;
}

// ---------------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------------

namespace {

constexpr char kKindConfig[] = "config";
constexpr char kKindCatalog[] = "catalog";
constexpr char kKindBatch[] = "batch";
constexpr char kKindSweep[] = "sweep";
constexpr char kKindStats[] = "stats";
constexpr char kKindStreamOpen[] = "stream-open";
constexpr char kKindStreamEvent[] = "stream-event";

template <typename Request, typename Report>
std::string EncodePairRecord(const char* kind, const std::string& request_id,
                             const Request& request,
                             const Result<Report>& outcome) {
  Value record = Value::Object();
  record.Add("kind", kind);
  record.Add("request_id", request_id);
  record.Add("request", Encode(request));
  record.Add("status",
             Encode(outcome.ok() ? Status::OK() : outcome.status()));
  if (outcome.ok()) record.Add("report", Encode(*outcome));
  return json::Dump(record);
}

}  // namespace

std::string EncodeConfigRecord(const api::ServiceConfig& config) {
  Value record = Value::Object();
  record.Add("kind", kKindConfig);
  record.Add("config", Encode(config));
  return json::Dump(record);
}

std::string EncodeCatalogRecord(const core::Catalog& catalog) {
  Value record = Value::Object();
  record.Add("kind", kKindCatalog);
  record.Add("catalog", Encode(catalog));
  return json::Dump(record);
}

std::string EncodeBatchRecord(const std::string& request_id,
                              const api::BatchRequest& request,
                              const Result<api::BatchReport>& outcome) {
  return EncodePairRecord(kKindBatch, request_id, request, outcome);
}

std::string EncodeSweepRecord(const std::string& request_id,
                              const api::SweepRequest& request,
                              const Result<api::SweepReport>& outcome) {
  return EncodePairRecord(kKindSweep, request_id, request, outcome);
}

std::string EncodeStatsRecord(const api::ServiceStats& stats) {
  Value record = Value::Object();
  record.Add("kind", kKindStats);
  record.Add("stats", Encode(stats));
  return json::Dump(record);
}

std::string EncodeStatsRecord(const api::ServiceStats& stats,
                              double sim_time) {
  Value record = Value::Object();
  record.Add("kind", kKindStats);
  record.Add("sim_time", sim_time);
  record.Add("stats", Encode(stats));
  return json::Dump(record);
}

std::string EncodeStreamOpenRecord(const StreamOpenRecord& open) {
  Value record = Value::Object();
  record.Add("kind", kKindStreamOpen);
  record.Add("session_id", open.session_id);
  record.Add("options", Encode(open.options));
  record.Add("availability", open.availability);
  return json::Dump(record);
}

std::string EncodeStreamEventRecord(const StreamEventRecord& record_in) {
  Value record = Value::Object();
  record.Add("kind", kKindStreamEvent);
  record.Add("session_id", record_in.session_id);
  record.Add("seq", record_in.seq);
  record.Add("event", Encode(record_in.event));
  record.Add("status", Encode(record_in.status));
  if (record_in.status.ok()) record.Add("update", Encode(record_in.update));
  return json::Dump(record);
}

Result<JournalTrace> DecodeTrace(const std::vector<std::string>& records) {
  JournalTrace trace;
  size_t line_number = 1;  // header is line 1; records start at 2
  for (const std::string& line : records) {
    ++line_number;
    auto parsed = json::Parse(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          "journal record on line " + std::to_string(line_number) + ": " +
          parsed.status().message());
    }
    if (!parsed->is_object()) return NotAnObject("journal record");
    std::string kind;
    STRATREC_RETURN_NOT_OK(GetString(*parsed, "kind", &kind));

    if (kind == kKindConfig) {
      const Value* config = parsed->Find("config");
      if (config == nullptr) return MissingField("config");
      auto decoded = DecodeServiceConfig(*config);
      if (!decoded.ok()) return decoded.status();
      trace.config = std::move(*decoded);
      trace.has_config = true;
    } else if (kind == kKindCatalog) {
      const Value* catalog = parsed->Find("catalog");
      if (catalog == nullptr) return MissingField("catalog");
      auto decoded = DecodeCatalog(*catalog);
      if (!decoded.ok()) return decoded.status();
      trace.catalog = std::move(*decoded);
      trace.has_catalog = true;
    } else if (kind == kKindBatch || kind == kKindSweep) {
      PairRecord pair;
      pair.kind = kind == kKindBatch ? PairRecord::Kind::kBatch
                                     : PairRecord::Kind::kSweep;
      STRATREC_RETURN_NOT_OK(GetString(*parsed, "request_id",
                                       &pair.request_id));
      const Value* status = parsed->Find("status");
      if (status == nullptr) return MissingField("status");
      STRATREC_RETURN_NOT_OK(DecodeStatus(*status, &pair.status));

      const Value* request = parsed->Find("request");
      if (request == nullptr) return MissingField("request");
      const Value* report = parsed->Find("report");
      if (pair.status.ok() && report == nullptr) return MissingField("report");

      if (pair.kind == PairRecord::Kind::kBatch) {
        auto decoded = DecodeBatchRequest(*request);
        if (!decoded.ok()) return decoded.status();
        pair.batch_request = std::move(*decoded);
        if (pair.status.ok()) {
          auto decoded_report = DecodeBatchReport(*report);
          if (!decoded_report.ok()) return decoded_report.status();
          pair.batch_report = std::move(*decoded_report);
        }
      } else {
        auto decoded = DecodeSweepRequest(*request);
        if (!decoded.ok()) return decoded.status();
        pair.sweep_request = std::move(*decoded);
        if (pair.status.ok()) {
          auto decoded_report = DecodeSweepReport(*report);
          if (!decoded_report.ok()) return decoded_report.status();
          pair.sweep_report = std::move(*decoded_report);
        }
      }
      trace.pairs.push_back(std::move(pair));
    } else if (kind == kKindStats) {
      const Value* stats = parsed->Find("stats");
      if (stats == nullptr) return MissingField("stats");
      auto decoded = DecodeServiceStats(*stats);
      if (!decoded.ok()) return decoded.status();
      StatsRecord checkpoint;
      checkpoint.stats = std::move(*decoded);
      if (parsed->Find("sim_time") != nullptr) {
        STRATREC_RETURN_NOT_OK(
            GetDouble(*parsed, "sim_time", &checkpoint.sim_time));
        checkpoint.has_sim_time = true;
      }
      trace.stats.push_back(std::move(checkpoint));
    } else if (kind == kKindStreamOpen) {
      StreamOpenRecord open;
      STRATREC_RETURN_NOT_OK(GetString(*parsed, "session_id",
                                       &open.session_id));
      const Value* options = parsed->Find("options");
      if (options == nullptr) return MissingField("options");
      auto decoded = DecodeStreamOptions(*options);
      if (!decoded.ok()) return decoded.status();
      open.options = std::move(*decoded);
      STRATREC_RETURN_NOT_OK(GetDouble(*parsed, "availability",
                                       &open.availability));
      trace.stream_opens.push_back(std::move(open));
    } else if (kind == kKindStreamEvent) {
      StreamEventRecord record;
      STRATREC_RETURN_NOT_OK(GetString(*parsed, "session_id",
                                       &record.session_id));
      STRATREC_RETURN_NOT_OK(GetSize(*parsed, "seq", &record.seq));
      const Value* event = parsed->Find("event");
      if (event == nullptr) return MissingField("event");
      auto decoded_event = DecodeStreamEvent(*event);
      if (!decoded_event.ok()) return decoded_event.status();
      record.event = std::move(*decoded_event);
      const Value* status = parsed->Find("status");
      if (status == nullptr) return MissingField("status");
      STRATREC_RETURN_NOT_OK(DecodeStatus(*status, &record.status));
      if (record.status.ok()) {
        const Value* update = parsed->Find("update");
        if (update == nullptr) return MissingField("update");
        auto decoded_update = DecodeStreamUpdate(*update);
        if (!decoded_update.ok()) return decoded_update.status();
        record.update = std::move(*decoded_update);
      }
      trace.stream_events.push_back(std::move(record));
    } else {
      return Status::InvalidArgument(
          "unknown journal record kind '" + kind + "' on line " +
          std::to_string(line_number));
    }
  }
  return trace;
}

Result<JournalTrace> ReadTraceFile(const std::string& path) {
  // Segment-rotation aware: a single-file journal reads as a one-segment
  // chain, a rotated one concatenates `<path>`, `<path>.1`, ... in order.
  auto records = JournalReader::ReadAllSegments(path);
  if (!records.ok()) return records.status();
  return DecodeTrace(*records);
}

std::vector<std::string> CompactRecords(
    const std::vector<std::string>& records) {
  // Single pass, line-level: no decode of record payloads — only the kind
  // discriminant is parsed, so compaction cost is O(bytes), not O(solves).
  std::string last_config;
  std::string last_catalog;
  std::string last_stats;
  std::vector<std::string> kept;  // stream-opens + unrecognized, in order
  for (const std::string& line : records) {
    auto parsed = json::Parse(line);
    std::string kind;
    if (!parsed.ok() || !parsed->is_object() ||
        !GetString(*parsed, "kind", &kind).ok()) {
      // Not a record this codec understands; keep it verbatim rather than
      // silently destroying data (the reader will report it exactly as it
      // would have before compaction).
      kept.push_back(line);
      continue;
    }
    if (kind == kKindConfig) {
      last_config = line;
    } else if (kind == kKindCatalog) {
      last_catalog = line;
    } else if (kind == kKindStats) {
      last_stats = line;
    } else if (kind == kKindStreamOpen) {
      kept.push_back(line);
    } else if (kind == kKindBatch || kind == kKindSweep ||
               kind == kKindStreamEvent) {
      // Replayed-out history: dropping a pair loses nothing a compacted
      // chain promises, and dropping a session's event prefix is what the
      // replay-side seq-gap detection exists for.
    } else {
      kept.push_back(line);
    }
  }
  std::vector<std::string> folded;
  folded.reserve(kept.size() + 3);
  if (!last_config.empty()) folded.push_back(std::move(last_config));
  if (!last_catalog.empty()) folded.push_back(std::move(last_catalog));
  for (std::string& line : kept) folded.push_back(std::move(line));
  if (!last_stats.empty()) folded.push_back(std::move(last_stats));
  return folded;
}

}  // namespace stratrec::wire
