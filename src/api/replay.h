// Trace replay: drive a fresh Service with a recorded journal and check
// that it reproduces the recorded reports bit for bit.
//
// A journal written via ServiceConfig::journal is self-contained — it
// carries the config and the strategy catalog ahead of the (request,
// outcome) pairs — so replay needs nothing but the file:
//
//   auto trace = wire::ReadTraceFile("trace.journal");
//   auto result = wire::ReplayTrace(*trace, options);
//   // result->matched == result->replayed  <=>  deterministic replay
//
// Replay resubmits every successfully-completed pair through
// SubmitBatchAsync / RunSweepAsync with the recorded request id pinned on
// the envelope (the caller-id hook of envelope.h), at whatever pool size
// ReplayOptions picks — the pipeline is deterministic by construction, so
// the reports must be byte-identical to the recorded ones under any
// concurrency. Pairs that did not complete (cancelled tickets, error
// outcomes) are counted as skipped: a cancellation race is not
// reproducible work. Requests whose availability came from a named model
// (registered on the live service, not part of the trace) are replayed at
// the resolved W the recorded report captured.
//
// Stream sessions replay too: every stream-open record reopens a session
// (session id pinned through StreamOptions::session_id, availability
// pinned to the recorded resolution), its stream-event records re-drive it
// in seq order, and each outcome must reproduce the recording byte for
// byte — the StreamUpdate line when the event succeeded, the Status line
// when it failed. A session whose event history has a seq gap (its prefix
// was folded away by journal compaction) is skipped whole and counted in
// stream_skipped_sessions.
#ifndef STRATREC_API_REPLAY_H_
#define STRATREC_API_REPLAY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/api/codec.h"
#include "src/api/service.h"

namespace stratrec::wire {

struct ReplayOptions {
  /// Worker threads of the replaying service; 0 keeps the recorded
  /// ExecutionConfig value.
  size_t worker_threads = 0;
  /// Submit this many copies of the pair list (ids suffixed "#<round>" past
  /// round 0, so tickets stay distinguishable). Rounds > 1 measure
  /// throughput on small traces; every copy is still verified.
  size_t rounds = 1;
};

struct ReplayResult {
  size_t replayed = 0;  ///< pairs resubmitted (across all rounds)
  size_t matched = 0;   ///< replayed pairs whose report was byte-identical
  size_t skipped = 0;   ///< recorded pairs not replayed (cancelled / error)
  /// Stream replay: sessions rebuilt (across all rounds), events re-driven
  /// through them, and events whose recorded outcome — the StreamUpdate
  /// bytes when it succeeded, the Status bytes when it failed — was
  /// reproduced exactly.
  size_t stream_sessions = 0;
  size_t stream_events_replayed = 0;
  size_t stream_matched = 0;
  /// Sessions whose event history starts past seq 0 or has gaps — their
  /// prefix was folded away by journal compaction, so the session cannot be
  /// rebuilt faithfully and is skipped whole (by design, not an error).
  size_t stream_skipped_sessions = 0;
  /// Deployment requests inside replayed batch pairs plus sweep cells
  /// solved — the unit bench_replay_load reports throughput in.
  size_t work_items = 0;
  /// Wall clock of the submit + wait phase (service construction and trace
  /// decoding excluded).
  double seconds = 0.0;
  /// request_ids (round-suffixed) whose replayed report differed.
  std::vector<std::string> mismatched;

  bool ok() const { return mismatched.empty(); }
};

/// Rebuilds the recorded service: recorded config (journaling stripped so
/// replay does not overwrite the trace being replayed) + recorded catalog.
/// Fails with kFailedPrecondition when the trace lacks either record.
Result<api::Service> ServiceFromTrace(const JournalTrace& trace,
                                      size_t worker_threads = 0);

/// Replays `trace` through a fresh service and verifies byte-identical
/// reports. Fails only on infrastructure errors (unbuildable service, a
/// replayed ticket failing where the recording succeeded); mismatches are
/// reported in the result, not as a Status.
Result<ReplayResult> ReplayTrace(const JournalTrace& trace,
                                 const ReplayOptions& options = {});

}  // namespace stratrec::wire

#endif  // STRATREC_API_REPLAY_H_
