// stratrec::wire — the envelope wire codec.
//
// Round-trips the Service API's value types (request/report envelopes, the
// ServiceConfig blocks, the strategy catalog, Status) to JSON with stable,
// versioned field names. Three layers of guarantees:
//
//   * lossless: Decode(Encode(x)) == x for every well-formed value — doubles
//     included, bit for bit (json::FormatNumber emits the shortest exact
//     decimal; NaN is rejected at the JSON layer),
//   * deterministic: Encode emits object members in a fixed order, so equal
//     values produce byte-identical lines — the property the replay harness
//     uses to assert that a replayed report matches a recorded one,
//   * self-describing: the journal record helpers wrap each value in a
//     {"kind": ...} line, and src/common/journal.h stamps the file with a
//     format-version header, so a trace is readable without out-of-band
//     schema knowledge.
//
// The same encoding is the planned gRPC/HTTP front end's body format: an
// out-of-process caller POSTs an encoded BatchRequest and receives an
// encoded BatchReport — which is why this codec lives in src/api/ next to
// the envelopes rather than inside the journal.
//
// Optional envelope fields are omitted when unset and restored as unset;
// conditional fields (e.g. a SweepOutcome's result when its status is an
// error) are omitted and restored as default-constructed. Decoders are
// strict: a missing required field or a type mismatch fails with
// kInvalidArgument naming the field. Integers travel as JSON numbers and
// are therefore exact only up to 2^53; decoders reject anything larger
// (and ValidateConfig rejects over-2^53 config knobs at record time, so
// the mismatch cannot first surface when a journal is read back).
#ifndef STRATREC_API_CODEC_H_
#define STRATREC_API_CODEC_H_

#include <string>
#include <vector>

#include "src/api/config.h"
#include "src/api/envelope.h"
#include "src/common/json.h"
#include "src/core/aggregator.h"

namespace stratrec::wire {

// ---------------------------------------------------------------------------
// Value-level codec: JSON trees with stable field names.
// ---------------------------------------------------------------------------

json::Value Encode(const Status& status);
json::Value Encode(const core::ParamVector& params);
json::Value Encode(const core::DeploymentRequest& request);
json::Value Encode(const core::AdparResult& result);
json::Value Encode(const core::Catalog& catalog);
json::Value Encode(const api::AvailabilitySpec& spec);
json::Value Encode(const api::BatchRequest& request);
json::Value Encode(const api::BatchReport& report);
json::Value Encode(const api::SweepRequest& request);
json::Value Encode(const api::SweepReport& report);
json::Value Encode(const api::StreamOptions& options);
json::Value Encode(const api::StreamEvent& event);
json::Value Encode(const api::StreamUpdate& update);
json::Value Encode(const api::ServiceConfig& config);
json::Value Encode(const api::ServiceStats& stats);

/// Out-parameter shape because Result<Status> would be ambiguous.
Status DecodeStatus(const json::Value& value, Status* out);
Result<core::ParamVector> DecodeParamVector(const json::Value& value);
Result<core::DeploymentRequest> DecodeDeploymentRequest(
    const json::Value& value);
Result<core::AdparResult> DecodeAdparResult(const json::Value& value);
Result<core::Catalog> DecodeCatalog(const json::Value& value);
Result<api::AvailabilitySpec> DecodeAvailabilitySpec(const json::Value& value);
Result<api::BatchRequest> DecodeBatchRequest(const json::Value& value);
Result<api::BatchReport> DecodeBatchReport(const json::Value& value);
Result<api::SweepRequest> DecodeSweepRequest(const json::Value& value);
Result<api::SweepReport> DecodeSweepReport(const json::Value& value);
Result<api::StreamOptions> DecodeStreamOptions(const json::Value& value);
Result<api::StreamEvent> DecodeStreamEvent(const json::Value& value);
Result<api::StreamUpdate> DecodeStreamUpdate(const json::Value& value);
Result<api::ServiceConfig> DecodeServiceConfig(const json::Value& value);
Result<api::ServiceStats> DecodeServiceStats(const json::Value& value);

// ---------------------------------------------------------------------------
// Journal records: one self-describing line per record.
// ---------------------------------------------------------------------------

/// One recorded (request, outcome) pair. `status` is the job's completion
/// status — OK (then the matching report is valid), an error, or kCancelled
/// for a ticket withdrawn before execution.
struct PairRecord {
  enum class Kind { kBatch, kSweep };
  Kind kind = Kind::kBatch;
  /// The id the ticket carried (and the report would have carried).
  std::string request_id;
  Status status;

  api::BatchRequest batch_request;  ///< kBatch
  api::BatchReport batch_report;    ///< kBatch, valid iff status.ok()
  api::SweepRequest sweep_request;  ///< kSweep
  api::SweepReport sweep_report;    ///< kSweep, valid iff status.ok()

  bool operator==(const PairRecord&) const = default;
};

/// One recorded stream-session open: everything replay needs to rebuild the
/// session — the options the caller passed (with session_id pinned to the
/// id the service assigned) plus the availability the spec resolved to, so
/// replay reproduces named/default specs whose backing model has drifted.
struct StreamOpenRecord {
  std::string session_id;
  api::StreamOptions options;
  double availability = 0.0;

  bool operator==(const StreamOpenRecord&) const = default;
};

/// One recorded (StreamEvent, StreamUpdate) pair. `seq` is the per-session
/// submission index — every Submit increments it, failures included — so a
/// replay can detect a compacted-away event prefix as a seq gap.
struct StreamEventRecord {
  std::string session_id;
  size_t seq = 0;
  api::StreamEvent event;
  Status status;
  api::StreamUpdate update;  ///< valid iff status.ok()

  bool operator==(const StreamEventRecord&) const = default;
};

/// Record lines ({"kind":"config"|"catalog"|"batch"|"sweep", ...}), ready
/// for JournalWriter::Append.
std::string EncodeConfigRecord(const api::ServiceConfig& config);
std::string EncodeCatalogRecord(const core::Catalog& catalog);
std::string EncodeBatchRecord(const std::string& request_id,
                              const api::BatchRequest& request,
                              const Result<api::BatchReport>& outcome);
std::string EncodeSweepRecord(const std::string& request_id,
                              const api::SweepRequest& request,
                              const Result<api::SweepReport>& outcome);
/// Stats snapshot record ({"kind":"stats", ...}): a service's lifetime
/// counters plus the executor gauges (queue depth, active workers,
/// steal/local-hit counters), so a trace can carry saturation checkpoints
/// alongside its pairs.
std::string EncodeStatsRecord(const api::ServiceStats& stats);
/// Stats record stamped with a virtual-time instant (journal format v6) —
/// the platform simulator's checkpoint hook: a trace then tells *when* in
/// simulated time each saturation snapshot was taken.
std::string EncodeStatsRecord(const api::ServiceStats& stats,
                              double sim_time);
/// Stream session records ({"kind":"stream-open"|"stream-event", ...}).
std::string EncodeStreamOpenRecord(const StreamOpenRecord& open);
std::string EncodeStreamEventRecord(const StreamEventRecord& record);

/// One decoded stats checkpoint: the counters plus the optional virtual-time
/// stamp (format v6) that simulator-driven traces carry.
struct StatsRecord {
  api::ServiceStats stats;
  bool has_sim_time = false;
  double sim_time = 0.0;

  bool operator==(const StatsRecord&) const = default;
};

/// A fully decoded journal: everything replay needs to rebuild the service
/// and its workload. Pairs keep journal (completion) order.
struct JournalTrace {
  bool has_config = false;
  api::ServiceConfig config;
  bool has_catalog = false;
  core::Catalog catalog;
  std::vector<PairRecord> pairs;
  /// Stats checkpoints, in journal order (may be empty: taps only write
  /// them when asked — see EncodeStatsRecord).
  std::vector<StatsRecord> stats;
  /// Stream sessions: session opens and their (event, update) pairs, each
  /// in journal order. Events of different sessions interleave here exactly
  /// as they completed; within a session, seq orders them.
  std::vector<StreamOpenRecord> stream_opens;
  std::vector<StreamEventRecord> stream_events;
};

/// Decodes record lines (JournalReader::ReadRecords output). Unknown record
/// kinds fail with kInvalidArgument — versioning happens at the file header,
/// not by silently dropping records.
Result<JournalTrace> DecodeTrace(const std::vector<std::string>& records);

/// JournalReader::ReadRecords + DecodeTrace.
Result<JournalTrace> ReadTraceFile(const std::string& path);

/// The journal compaction policy (JournalWriter::Options::compact): folds
/// the records of a cold segment prefix into the minimal list that keeps a
/// compacted chain self-contained — the *last* config, catalog, and stats
/// records, every stream-open (a session may still be live in the retained
/// tail), and any record this codec does not recognize (preserved verbatim,
/// in order). Batch/sweep pairs and stream events are dropped: replay over
/// a compacted chain skips sessions whose event prefix is gone (seq gap)
/// and replays everything that survived unchanged.
std::vector<std::string> CompactRecords(const std::vector<std::string>& records);

}  // namespace stratrec::wire

#endif  // STRATREC_API_CODEC_H_
