#include "src/api/availability.h"

namespace stratrec::api {

AvailabilitySpec AvailabilitySpec::Fixed(double w) {
  AvailabilitySpec spec;
  spec.kind = Kind::kFixed;
  spec.value = w;
  return spec;
}

AvailabilitySpec AvailabilitySpec::FromPmf(std::vector<stats::PmfAtom> atoms) {
  AvailabilitySpec spec;
  spec.kind = Kind::kPmf;
  spec.atoms = std::move(atoms);
  return spec;
}

AvailabilitySpec AvailabilitySpec::FromSamples(std::vector<double> samples) {
  AvailabilitySpec spec;
  spec.kind = Kind::kSamples;
  spec.samples = std::move(samples);
  return spec;
}

AvailabilitySpec AvailabilitySpec::Named(std::string name) {
  AvailabilitySpec spec;
  spec.kind = Kind::kNamed;
  spec.name = std::move(name);
  return spec;
}

Result<double> ResolveAvailability(
    const AvailabilitySpec& spec,
    const std::unordered_map<std::string, core::AvailabilityModel>& models,
    double default_availability) {
  switch (spec.kind) {
    case AvailabilitySpec::Kind::kDefault:
      return default_availability;
    case AvailabilitySpec::Kind::kFixed:
      if (spec.value < 0.0 || spec.value > 1.0) {
        return Status::InvalidArgument("availability must lie in [0, 1]");
      }
      return spec.value;
    case AvailabilitySpec::Kind::kPmf: {
      auto model = core::AvailabilityModel::FromPmf(spec.atoms);
      if (!model.ok()) return model.status();
      return model->ExpectedAvailability();
    }
    case AvailabilitySpec::Kind::kSamples: {
      auto model = core::AvailabilityModel::FromSamples(spec.samples);
      if (!model.ok()) return model.status();
      return model->ExpectedAvailability();
    }
    case AvailabilitySpec::Kind::kNamed: {
      auto it = models.find(spec.name);
      if (it == models.end()) {
        return Status::NotFound("no availability model named '" + spec.name +
                                "'");
      }
      return it->second.ExpectedAvailability();
    }
  }
  return Status::Internal("unhandled availability spec kind");
}

}  // namespace stratrec::api
