#include "src/api/config.h"

#include "src/api/registry.h"

namespace stratrec::api {

Status ValidateConfig(const ServiceConfig& config) {
  auto batch = AlgorithmRegistry::Global().FindBatch(config.batch.algorithm);
  if (!batch.ok()) return batch.status();
  auto adpar = AlgorithmRegistry::Global().FindAdpar(config.batch.adpar_solver);
  if (!adpar.ok()) return adpar.status();
  if (config.availability.kind != AvailabilitySpec::Kind::kNamed) {
    auto resolved = ResolveAvailability(config.availability, {}, 0.5);
    if (!resolved.ok()) return resolved.status();
  }
  if (config.execution.worker_threads > 1024) {
    return Status::InvalidArgument(
        "execution.worker_threads must be <= 1024 (0 means hardware "
        "concurrency)");
  }
  if (config.execution.parallel_grain == 0) {
    return Status::InvalidArgument("execution.parallel_grain must be >= 1");
  }
  // The wire codec carries integers as JSON numbers, exact only up to 2^53;
  // reject larger knobs here so an unserializable config fails at Create
  // (record time), not when a journal is read back.
  constexpr size_t kMaxWireInteger = size_t{1} << 53;
  if (config.stream.max_pending > kMaxWireInteger) {
    return Status::InvalidArgument(
        "stream.max_pending exceeds 2^53 and would not round-trip the wire "
        "codec");
  }
  if (config.execution.parallel_grain > kMaxWireInteger) {
    return Status::InvalidArgument(
        "execution.parallel_grain exceeds 2^53 and would not round-trip the "
        "wire codec");
  }
  if (config.cache.shards == 0 || config.cache.shards > 256) {
    return Status::InvalidArgument("cache.shards must lie in [1, 256]");
  }
  if (config.cache.snapshot_capacity > kMaxWireInteger) {
    return Status::InvalidArgument(
        "cache.snapshot_capacity exceeds 2^53 and would not round-trip the "
        "wire codec");
  }
  if (!(config.cache.availability_quantum >= 0.0) ||
      config.cache.availability_quantum > 1.0) {
    return Status::InvalidArgument(
        "cache.availability_quantum must lie in [0, 1]");
  }
  if (config.journal.compact_after_segments > 0) {
    if (config.journal.max_segment_bytes == 0) {
      return Status::InvalidArgument(
          "journal.compact_after_segments requires segment rotation "
          "(journal.max_segment_bytes > 0)");
    }
    if (config.journal.retain_segments >=
        config.journal.compact_after_segments) {
      return Status::InvalidArgument(
          "journal.retain_segments must be < compact_after_segments, or "
          "compaction would never fold anything");
    }
  }
  if (config.journal.compact_after_segments > kMaxWireInteger ||
      config.journal.retain_segments > kMaxWireInteger) {
    return Status::InvalidArgument(
        "journal compaction knobs exceed 2^53 and would not round-trip the "
        "wire codec");
  }
  return Status::OK();
}

}  // namespace stratrec::api
