#include "src/api/config.h"

#include "src/api/registry.h"

namespace stratrec::api {

Status ValidateConfig(const ServiceConfig& config) {
  auto batch = AlgorithmRegistry::Global().FindBatch(config.batch.algorithm);
  if (!batch.ok()) return batch.status();
  auto adpar = AlgorithmRegistry::Global().FindAdpar(config.batch.adpar_solver);
  if (!adpar.ok()) return adpar.status();
  if (config.availability.kind != AvailabilitySpec::Kind::kNamed) {
    auto resolved = ResolveAvailability(config.availability, {}, 0.5);
    if (!resolved.ok()) return resolved.status();
  }
  if (config.execution.worker_threads > 1024) {
    return Status::InvalidArgument(
        "execution.worker_threads must be <= 1024 (0 means hardware "
        "concurrency)");
  }
  if (config.execution.parallel_grain == 0) {
    return Status::InvalidArgument("execution.parallel_grain must be >= 1");
  }
  return Status::OK();
}

}  // namespace stratrec::api
