#include "src/api/config.h"

#include "src/api/registry.h"

namespace stratrec::api {

Status ValidateConfig(const ServiceConfig& config) {
  auto batch = AlgorithmRegistry::Global().FindBatch(config.batch.algorithm);
  if (!batch.ok()) return batch.status();
  auto adpar = AlgorithmRegistry::Global().FindAdpar(config.batch.adpar_solver);
  if (!adpar.ok()) return adpar.status();
  if (config.availability.kind != AvailabilitySpec::Kind::kNamed) {
    auto resolved = ResolveAvailability(config.availability, {}, 0.5);
    if (!resolved.ok()) return resolved.status();
  }
  return Status::OK();
}

}  // namespace stratrec::api
