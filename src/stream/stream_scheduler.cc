#include "src/stream/stream_scheduler.h"

#include <algorithm>
#include <limits>

#include "src/common/float_compare.h"

namespace stratrec::stream {

Result<StreamScheduler> StreamScheduler::Create(
    const core::CatalogIndex* index, Executor* executor, double availability,
    StreamSchedulerOptions options) {
  if (index == nullptr || index->empty()) {
    return Status::InvalidArgument("scheduler needs at least one strategy");
  }
  if (availability < 0.0 || availability > 1.0) {
    return Status::InvalidArgument("availability must lie in [0, 1]");
  }
  return StreamScheduler(index, executor, availability, options);
}

Result<std::pair<double, std::vector<size_t>>> StreamScheduler::Price(
    const core::DeploymentRequest& request) const {
  STRATREC_RETURN_NOT_OK(core::ValidateRequest(request));
  // The CatalogIndex overload streams the SoA coefficient arrays and
  // partitions the row across the pool — same cells as the serial
  // per-profile fill, computed in parallel.
  const core::WorkforceMatrix matrix = core::WorkforceMatrix::Compute(
      {request}, *index_, options_.policy, executor_, options_.parallel_grain);
  auto requirement =
      matrix.AggregateRequirement(0, request.k, options_.aggregation);
  if (!requirement.ok()) return requirement.status();
  auto strategies = matrix.KBestStrategies(0, request.k);
  if (!strategies.ok()) return strategies.status();
  return std::make_pair(*requirement, std::move(*strategies));
}

double StreamScheduler::Value(const core::DeploymentRequest& request) const {
  return options_.objective == core::Objective::kThroughput ? 1.0
                                                            : request.Payoff();
}

void StreamScheduler::Admit(const core::DeploymentRequest& request,
                            double workforce, double value) {
  used_ += workforce;
  active_.emplace(request.id, Entry{request, workforce, value});
  stats_.admitted += 1;
  stats_.objective += value;
  NoteUtilization();
}

void StreamScheduler::NoteUtilization() {
  if (availability_ <= 0.0) return;
  stats_.peak_utilization =
      std::max(stats_.peak_utilization, used_ / availability_);
}

Result<ArrivalOutcome> StreamScheduler::OnArrival(
    const core::DeploymentRequest& request) {
  stats_.arrivals += 1;
  if (active_.count(request.id) > 0) {
    return Status::InvalidArgument("duplicate active request id: " +
                                   request.id);
  }
  snapshot_.NoteAbsorbedEvent();
  ArrivalOutcome outcome;
  auto priced = Price(request);
  if (!priced.ok()) {
    stats_.rejected += 1;
    outcome.decision.kind = core::AdmissionDecision::Kind::kRejected;
    // The stream twin of the batch pipeline's ADPaR leg: an ineligible
    // request gets the closest satisfiable parameters, served from the
    // incrementally maintained orderings. A failed solve (k > |S|) leaves
    // the plain rejection — same containment as batch adpar_failures.
    if (options_.recommend_alternatives &&
        priced.status().code() == StatusCode::kInfeasible) {
      const core::AdparOrderings& orderings = snapshot_.orderings();
      auto alternative = core::AdparExactOverOrderings(
          snapshot_.params(), orderings.by_cost, orderings.by_quality_desc,
          request.thresholds, request.k);
      if (alternative.ok()) {
        outcome.has_alternative = true;
        outcome.alternative = std::move(*alternative);
      }
    }
    return outcome;
  }
  const double workforce = priced->first;
  if (ApproxLe(used_ + workforce, availability_)) {
    const double value = Value(request);
    Admit(request, workforce, value);
    outcome.decision.kind = core::AdmissionDecision::Kind::kAdmitted;
    outcome.decision.strategies = std::move(priced->second);
    outcome.decision.workforce = workforce;
    return outcome;
  }
  if (pending_.size() < options_.max_pending) {
    pending_.push_back(Entry{request, workforce, Value(request)});
    stats_.queued += 1;
    outcome.decision.kind = core::AdmissionDecision::Kind::kQueued;
    outcome.decision.workforce = workforce;
    return outcome;
  }
  stats_.rejected += 1;
  outcome.decision.kind = core::AdmissionDecision::Kind::kRejected;
  return outcome;
}

void StreamScheduler::DrainPending() {
  if (!options_.readmit_on_release || pending_.empty()) return;
  // Rolling BatchStrat: re-admit pending requests in density order while
  // they fit the freed capacity. Prices were computed at arrival and stay
  // valid — workforce requirements are availability-independent (W is
  // capacity, not a pricing input).
  std::vector<Entry> entries(pending_.begin(), pending_.end());
  pending_.clear();
  std::stable_sort(
      entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
        const double da = a.workforce > 0
                              ? a.value / a.workforce
                              : std::numeric_limits<double>::infinity();
        const double db = b.workforce > 0
                              ? b.value / b.workforce
                              : std::numeric_limits<double>::infinity();
        return da > db;
      });
  for (auto& entry : entries) {
    if (active_.count(entry.request.id) == 0 &&
        ApproxLe(used_ + entry.workforce, availability_)) {
      Admit(entry.request, entry.workforce, entry.value);
      reschedules_ += 1;
    } else {
      pending_.push_back(std::move(entry));
    }
  }
}

Status StreamScheduler::OnRevocation(const std::string& request_id) {
  auto it = active_.find(request_id);
  if (it != active_.end()) {
    snapshot_.NoteAbsorbedEvent();
    used_ -= it->second.workforce;
    stats_.objective -= it->second.value;
    stats_.revoked += 1;
    active_.erase(it);
    DrainPending();
    return Status::OK();
  }
  for (auto pending_it = pending_.begin(); pending_it != pending_.end();
       ++pending_it) {
    if (pending_it->request.id == request_id) {
      snapshot_.NoteAbsorbedEvent();
      pending_.erase(pending_it);
      stats_.revoked += 1;
      return Status::OK();
    }
  }
  return Status::NotFound("unknown request id: " + request_id);
}

Status StreamScheduler::OnCompletion(const std::string& request_id) {
  auto it = active_.find(request_id);
  if (it == active_.end()) {
    return Status::NotFound("request not active: " + request_id);
  }
  snapshot_.NoteAbsorbedEvent();
  used_ -= it->second.workforce;
  stats_.completed += 1;
  active_.erase(it);
  DrainPending();
  return Status::OK();
}

Status StreamScheduler::SetAvailability(double availability) {
  if (availability < 0.0 || availability > 1.0) {
    return Status::InvalidArgument("availability must lie in [0, 1]");
  }
  availability_ = availability;
  snapshot_.Advance(availability);
  NoteUtilization();
  if (availability_ > used_) DrainPending();
  return Status::OK();
}

double StreamScheduler::RemainingCapacity() const {
  return std::max(0.0, availability_ - used_);
}

}  // namespace stratrec::stream
