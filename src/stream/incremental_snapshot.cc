#include "src/stream/incremental_snapshot.h"

#include <cmath>

namespace stratrec::stream {

namespace {

/// Snaps `w` onto the availability grid — the same rounding the Service's
/// snapshot cache applies (src/api/service.cc), so a session's incremental
/// block and a cached batch snapshot at the same W agree bit for bit.
double Quantize(double w, double quantum) {
  if (quantum <= 0.0) return w;
  const double snapped = std::round(w / quantum) * quantum;
  return snapped < 0.0 ? 0.0 : (snapped > 1.0 ? 1.0 : snapped);
}

}  // namespace

IncrementalSnapshot::IncrementalSnapshot(const core::CatalogIndex* index,
                                         Executor* executor,
                                         double initial_availability,
                                         double quantum, size_t grain)
    : index_(index),
      executor_(executor),
      quantum_(quantum),
      grain_(grain),
      quantized_w_(Quantize(initial_availability, quantum)) {
  index_->EstimateParamsInto(quantized_w_, &params_, executor_, grain_);
}

bool IncrementalSnapshot::Advance(double availability) {
  const double next = Quantize(availability, quantum_);
  if (next == quantized_w_) {
    ++delta_updates_;
    return false;
  }
  quantized_w_ = next;
  // In-place re-estimation: the params vector keeps its allocation, the
  // fill partitions across the pool, and the orderings go lazy-dirty so a
  // session that never asks for alternatives never pays the re-sort.
  index_->EstimateParamsInto(quantized_w_, &params_, executor_, grain_);
  orderings_dirty_ = true;
  ++rebuilds_;
  return true;
}

const core::AdparOrderings& IncrementalSnapshot::orderings() {
  if (orderings_dirty_) {
    // Re-sorts the existing permutations in place; BuildAdparOrderings is
    // deterministic over equal params regardless of the previous contents,
    // so this matches a fresh snapshot's orderings byte for byte.
    core::BuildAdparOrderings(params_, &orderings_);
    orderings_dirty_ = false;
  }
  return orderings_;
}

}  // namespace stratrec::stream
