// StreamScheduler: the Section-7 dynamic stream setting on the batch
// path's machinery.
//
// The PR-0 core::OnlineScheduler prices every arrival with a serial
// WorkforceMatrix::Compute over per-profile structs — no executor, no
// CatalogIndex, and nothing for an alternative recommendation to read.
// This scheduler is the batch-parity rewrite behind StreamSession:
//
//   * arrivals are priced through the CatalogIndex overload of
//     WorkforceMatrix::Compute, whose 1 x |S| row partitions across the
//     work-stealing executor via ParallelFor (bit-identical cells to the
//     serial fill — the catalog_index property tests pin that);
//   * per-availability derived state lives in an IncrementalSnapshot:
//     arrivals/revocations/completions are absorbed in O(1), availability
//     changes re-estimate the params block in place only when the
//     quantized W moves, and the ADPaR orderings re-sort lazily;
//   * ineligible arrivals (fewer than k feasible strategies) can carry an
//     alternative recommendation (paper Section 4) served from the
//     snapshot's orderings — the stream twin of the batch pipeline's
//     ADPaR leg, off by default so existing sessions behave identically;
//   * admission, the bounded pending queue, and the density-order drain
//     ("rolling BatchStrat") keep OnlineScheduler's exact semantics —
//     tests/stream_replay_test.cc locks the two schedulers' decisions
//     together.
//
// Not thread-safe; StreamSession drives it under the session mutex. The
// ParallelFor fan-out inside is safe from there: the executor's callers
// participate, so even a single-threaded pool cannot deadlock.
#ifndef STRATREC_STREAM_STREAM_SCHEDULER_H_
#define STRATREC_STREAM_STREAM_SCHEDULER_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/executor.h"
#include "src/core/adpar.h"
#include "src/core/online.h"
#include "src/core/workforce.h"
#include "src/stream/incremental_snapshot.h"

namespace stratrec::stream {

/// Configuration of one scheduler (the Service flattens its StreamDefaults
/// plus the per-session StreamOptions overrides into this).
struct StreamSchedulerOptions {
  core::Objective objective = core::Objective::kThroughput;
  core::AggregationMode aggregation = core::AggregationMode::kSum;
  core::WorkforcePolicy policy = core::WorkforcePolicy::kMinimalWorkforce;
  /// Requests that cannot be admitted immediately wait here; 0 disables
  /// queueing (immediate reject).
  size_t max_pending = 64;
  /// Drain the pending queue greedily whenever capacity frees up.
  bool readmit_on_release = true;
  /// Serve an ADPaR alternative for ineligible arrivals (off by default:
  /// sessions opened without asking behave exactly like the PR-0 path).
  bool recommend_alternatives = false;
  /// Availability grid of the snapshot (matches ServiceConfig::cache).
  double availability_quantum = 0.0;
  /// ParallelFor grain of the pricing row and the params re-estimation.
  size_t parallel_grain = 4096;
};

/// What one arrival produced: the admission decision, plus an alternative
/// recommendation when the request was ineligible and the scheduler was
/// asked for one.
struct ArrivalOutcome {
  core::AdmissionDecision decision;
  bool has_alternative = false;
  core::AdparResult alternative;
};

class StreamScheduler {
 public:
  /// `index` and `executor` must outlive the scheduler (the Service owns
  /// both). Fails on an empty catalog or an out-of-range availability.
  static Result<StreamScheduler> Create(const core::CatalogIndex* index,
                                        Executor* executor,
                                        double availability,
                                        StreamSchedulerOptions options = {});

  /// Handles one arriving request. Request ids must be unique among active
  /// (admitted or queued) requests.
  Result<ArrivalOutcome> OnArrival(const core::DeploymentRequest& request);

  /// Revokes an active or queued request, freeing its capacity. Fails with
  /// kNotFound for unknown ids.
  Status OnRevocation(const std::string& request_id);

  /// Marks an admitted request as finished (its workers are released).
  Status OnCompletion(const std::string& request_id);

  /// Adjusts the workforce capacity. Existing admissions are honored even
  /// if the new capacity is lower; only future admissions see the change.
  Status SetAvailability(double availability);

  double availability() const { return availability_; }
  double used_workforce() const { return used_; }
  double RemainingCapacity() const;
  size_t active() const { return active_.size(); }
  size_t pending() const { return pending_.size(); }
  const core::OnlineStats& stats() const { return stats_; }

  /// Pending requests re-admitted by density-order drains (each one a
  /// rescheduling of earlier-deferred work).
  size_t reschedules() const { return reschedules_; }
  /// Snapshot maintenance counters (see IncrementalSnapshot).
  size_t snapshot_delta_updates() const { return snapshot_.delta_updates(); }
  size_t snapshot_rebuilds() const { return snapshot_.rebuilds(); }

 private:
  /// A priced request, whether serving (active map) or waiting (pending
  /// queue): the admission bookkeeping is identical in both states.
  struct Entry {
    core::DeploymentRequest request;
    double workforce = 0.0;
    double value = 0.0;
  };

  StreamScheduler(const core::CatalogIndex* index, Executor* executor,
                  double availability, StreamSchedulerOptions options)
      : index_(index),
        executor_(executor),
        options_(options),
        availability_(availability),
        snapshot_(index, executor, availability,
                  options.availability_quantum, options.parallel_grain) {}

  /// Prices a request: aggregated workforce + chosen strategies. The
  /// 1 x |S| workforce row partitions across the executor.
  Result<std::pair<double, std::vector<size_t>>> Price(
      const core::DeploymentRequest& request) const;

  double Value(const core::DeploymentRequest& request) const;
  void Admit(const core::DeploymentRequest& request, double workforce,
             double value);
  void DrainPending();
  void NoteUtilization();

  const core::CatalogIndex* index_;
  Executor* executor_;
  StreamSchedulerOptions options_;
  double availability_ = 0.0;
  IncrementalSnapshot snapshot_;
  double used_ = 0.0;
  std::unordered_map<std::string, Entry> active_;
  std::deque<Entry> pending_;
  core::OnlineStats stats_;
  size_t reschedules_ = 0;
};

}  // namespace stratrec::stream

#endif  // STRATREC_STREAM_STREAM_SCHEDULER_H_
