// Incrementally maintained per-availability state for stream sessions.
//
// The batch path computes its per-W derived state (the estimated-params
// block plus ADPaR's orderings and skyline prefilter) once per distinct
// availability and shares it through the Service's snapshot cache. A stream
// session cannot ride that cache alone: its availability drifts event by
// event, and rebuilding the O(|S|) block per event would put the Section-7
// dynamic setting right back on the PR-0 cost model.
//
// IncrementalSnapshot keeps one mutable copy of that state and advances it
// with the session:
//
//   * arrivals / revocations / completions never touch the block (workforce
//     pricing is availability-independent — W is capacity, not a pricing
//     input), so those events are absorbed in O(1) and counted as delta
//     updates;
//   * an availability change re-estimates the params block only when the
//     *quantized* W actually moves (the same grid the Service's cache keys
//     on), reusing the existing buffers and partitioning the fill across
//     the work-stealing executor via ParallelFor — counted as a rebuild;
//   * the ADPaR orderings are marked dirty on a rebuild and lazily
//     re-sorted on the next alternative-recommendation solve, re-sorting
//     the existing permutation in place. core::BuildAdparOrderings is a
//     total order with index tiebreaks, so the re-sort is bit-identical to
//     a fresh CatalogIndex::BuildSnapshot at the same W — the equivalence
//     tests/stream_replay_test.cc property-checks after arbitrary event
//     interleavings.
//
// Not thread-safe: a session drives its snapshot under the session mutex.
#ifndef STRATREC_STREAM_INCREMENTAL_SNAPSHOT_H_
#define STRATREC_STREAM_INCREMENTAL_SNAPSHOT_H_

#include <cstddef>
#include <vector>

#include "src/common/executor.h"
#include "src/core/catalog_index.h"

namespace stratrec::stream {

class IncrementalSnapshot {
 public:
  /// `index` must outlive the snapshot (the Service owns it). A quantum of
  /// 0 disables quantization: every availability change that moves W at all
  /// re-estimates the block.
  IncrementalSnapshot(const core::CatalogIndex* index, Executor* executor,
                      double initial_availability, double quantum = 0.0,
                      size_t grain = 4096);

  /// The quantized availability the params block is estimated at.
  double quantized_availability() const { return quantized_w_; }

  /// Advances to a new availability. Returns true when the quantized W
  /// moved (the params block was re-estimated and the orderings marked
  /// dirty, counted as a rebuild); false when the change was absorbed
  /// without touching the block (counted as a delta update).
  bool Advance(double availability);

  /// Notes one event that needed no block maintenance at all (arrival,
  /// revocation, completion): pure accounting, O(1).
  void NoteAbsorbedEvent() { ++delta_updates_; }

  /// The estimated-params block at quantized_availability(), index-aligned
  /// with the catalog. Bit-identical to
  /// CatalogIndex::BuildSnapshot(quantized_availability())->params().
  const std::vector<core::ParamVector>& params() const { return params_; }

  /// The ADPaR orderings at quantized_availability(), re-sorted lazily
  /// after a rebuild. Bit-identical to the corresponding
  /// AvailabilitySnapshot::orderings().
  const core::AdparOrderings& orderings();

  /// Events absorbed without re-estimating the block (plus availability
  /// changes whose quantized W did not move).
  size_t delta_updates() const { return delta_updates_; }
  /// Availability changes that moved the quantized W and re-estimated the
  /// block in place.
  size_t rebuilds() const { return rebuilds_; }

 private:
  const core::CatalogIndex* index_;
  Executor* executor_;
  double quantum_;
  size_t grain_;

  double quantized_w_ = 0.0;
  std::vector<core::ParamVector> params_;
  core::AdparOrderings orderings_;
  bool orderings_dirty_ = true;

  size_t delta_updates_ = 0;
  size_t rebuilds_ = 0;
};

}  // namespace stratrec::stream

#endif  // STRATREC_STREAM_INCREMENTAL_SNAPSHOT_H_
