// Student's t distribution: CDF and inverse CDF.
//
// Needed for regression confidence intervals (Table 6's 90% CI claim) and the
// significance tests behind Figure 13. Implemented via the regularized
// incomplete beta function; no external math library required.
#ifndef STRATREC_STATS_STUDENT_T_H_
#define STRATREC_STATS_STUDENT_T_H_

namespace stratrec::stats {

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1].
/// Continued-fraction evaluation (Lentz), accurate to ~1e-12.
double RegularizedIncompleteBeta(double a, double b, double x);

/// P(T <= t) for T ~ Student-t with `df` degrees of freedom (df > 0).
double StudentTCdf(double t, double df);

/// Inverse CDF (quantile). p in (0, 1), df > 0. Bisection on the CDF,
/// accurate to ~1e-7 (limited by CDF evaluation noise) — ample for test
/// statistics.
double StudentTQuantile(double p, double df);

/// Two-sided critical value t* with P(|T| <= t*) = confidence.
/// confidence in (0, 1), e.g. 0.90 for the paper's 90% intervals.
double StudentTCriticalTwoSided(double confidence, double df);

}  // namespace stratrec::stats

#endif  // STRATREC_STATS_STUDENT_T_H_
