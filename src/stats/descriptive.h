// Descriptive statistics over double samples.
#ifndef STRATREC_STATS_DESCRIPTIVE_H_
#define STRATREC_STATS_DESCRIPTIVE_H_

#include <vector>

#include "src/common/status.h"

namespace stratrec::stats {

/// Arithmetic mean; requires a non-empty sample.
Result<double> Mean(const std::vector<double>& xs);

/// Unbiased (n-1) sample variance; requires n >= 2.
Result<double> Variance(const std::vector<double>& xs);

/// Square root of Variance().
Result<double> StdDev(const std::vector<double>& xs);

/// Standard error of the mean: stddev / sqrt(n); requires n >= 2.
Result<double> StdError(const std::vector<double>& xs);

/// Sample median (average of middle pair for even n); requires non-empty.
Result<double> Median(std::vector<double> xs);

/// Linear-interpolated quantile, q in [0, 1]; requires non-empty.
Result<double> Quantile(std::vector<double> xs, double q);

/// Smallest element; requires non-empty.
Result<double> Min(const std::vector<double>& xs);

/// Largest element; requires non-empty.
Result<double> Max(const std::vector<double>& xs);

/// Pearson correlation coefficient; requires equally-sized samples with
/// n >= 2 and non-zero variance in both.
Result<double> PearsonCorrelation(const std::vector<double>& xs,
                                  const std::vector<double>& ys);

/// Incremental mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased variance; 0 when count < 2.
  double variance() const;
  double stddev() const;
  /// stddev / sqrt(n); 0 when count < 2.
  double std_error() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace stratrec::stats

#endif  // STRATREC_STATS_DESCRIPTIVE_H_
