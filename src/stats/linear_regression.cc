#include "src/stats/linear_regression.h"

#include <cmath>

#include "src/stats/student_t.h"

namespace stratrec::stats {

Result<double> RegressionFit::AlphaHalfWidth(double confidence) const {
  if (n < 3) {
    return Status::FailedPrecondition("slope CI requires n >= 3");
  }
  const double t = StudentTCriticalTwoSided(confidence,
                                            static_cast<double>(n - 2));
  return t * alpha_std_err;
}

Result<double> RegressionFit::BetaHalfWidth(double confidence) const {
  if (n < 3) {
    return Status::FailedPrecondition("intercept CI requires n >= 3");
  }
  const double t = StudentTCriticalTwoSided(confidence,
                                            static_cast<double>(n - 2));
  return t * beta_std_err;
}

bool RegressionFit::AlphaCiContains(double value, double confidence) const {
  auto hw = AlphaHalfWidth(confidence);
  if (!hw.ok()) return false;
  return std::fabs(value - alpha) <= *hw;
}

bool RegressionFit::BetaCiContains(double value, double confidence) const {
  auto hw = BetaHalfWidth(confidence);
  if (!hw.ok()) return false;
  return std::fabs(value - beta) <= *hw;
}

Result<RegressionFit> FitLinear(const std::vector<double>& xs,
                                const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  const auto n = static_cast<int64_t>(xs.size());
  if (n < 2) return Status::InvalidArgument("regression requires n >= 2");

  double sx = 0.0, sy = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    return Status::InvalidArgument("regression undefined: all x identical");
  }

  RegressionFit fit;
  fit.n = n;
  fit.alpha = sxy / sxx;
  fit.beta = my - fit.alpha * mx;

  double sse = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double r = ys[i] - fit.Predict(xs[i]);
    sse += r * r;
  }
  fit.r_squared = syy > 0.0 ? 1.0 - sse / syy : 1.0;
  if (n > 2) {
    const double mse = sse / static_cast<double>(n - 2);
    fit.residual_std = std::sqrt(mse);
    fit.alpha_std_err = std::sqrt(mse / sxx);
    fit.beta_std_err = std::sqrt(
        mse * (1.0 / static_cast<double>(n) + mx * mx / sxx));
  }
  return fit;
}

}  // namespace stratrec::stats
