// Bootstrap confidence intervals (percentile method).
//
// The paper reports error bars for availability estimates (Figure 11) and
// significance for small mirrored samples (Figure 13); the bootstrap gives
// distribution-free intervals for those small-n statistics.
#ifndef STRATREC_STATS_BOOTSTRAP_H_
#define STRATREC_STATS_BOOTSTRAP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"

namespace stratrec::stats {

/// A two-sided bootstrap interval around a point estimate.
struct BootstrapInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double value) const { return value >= lo && value <= hi; }
};

/// Percentile bootstrap CI for the mean. Requires a non-empty sample,
/// confidence in (0, 1), resamples >= 100. Deterministic given `seed`.
Result<BootstrapInterval> BootstrapMeanCi(const std::vector<double>& sample,
                                          double confidence, int resamples,
                                          uint64_t seed);

/// Percentile bootstrap CI for an arbitrary statistic. The statistic is
/// called on resampled copies of the input.
Result<BootstrapInterval> BootstrapCi(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    double confidence, int resamples, uint64_t seed);

}  // namespace stratrec::stats

#endif  // STRATREC_STATS_BOOTSTRAP_H_
