#include "src/stats/hypothesis.h"

#include <cmath>

#include "src/stats/descriptive.h"
#include "src/stats/student_t.h"

namespace stratrec::stats {
namespace {

double TwoSidedPValue(double t, double df) {
  const double cdf = StudentTCdf(std::fabs(t), df);
  return 2.0 * (1.0 - cdf);
}

}  // namespace

Result<TTestResult> WelchTTest(const std::vector<double>& a,
                               const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) {
    return Status::InvalidArgument("Welch t-test requires n >= 2 per sample");
  }
  const double ma = Mean(a).value();
  const double mb = Mean(b).value();
  const double va = Variance(a).value();
  const double vb = Variance(b).value();
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  const double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    return Status::InvalidArgument("Welch t-test undefined: zero variance");
  }
  TTestResult result;
  result.mean_difference = ma - mb;
  result.t_statistic = (ma - mb) / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0);
  result.degrees_of_freedom = num / den;
  result.p_value_two_sided =
      TwoSidedPValue(result.t_statistic, result.degrees_of_freedom);
  return result;
}

Result<TTestResult> PairedTTest(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired t-test requires equal sizes");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("paired t-test requires n >= 2");
  }
  std::vector<double> diffs(a.size());
  for (size_t i = 0; i < a.size(); ++i) diffs[i] = a[i] - b[i];
  const double md = Mean(diffs).value();
  const double sd = StdDev(diffs).value();
  if (sd <= 0.0) {
    return Status::InvalidArgument("paired t-test undefined: zero variance");
  }
  const double n = static_cast<double>(diffs.size());
  TTestResult result;
  result.mean_difference = md;
  result.t_statistic = md / (sd / std::sqrt(n));
  result.degrees_of_freedom = n - 1.0;
  result.p_value_two_sided =
      TwoSidedPValue(result.t_statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace stratrec::stats
