#include "src/stats/bootstrap.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/stats/descriptive.h"

namespace stratrec::stats {

Result<BootstrapInterval> BootstrapCi(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    double confidence, int resamples, uint64_t seed) {
  if (sample.empty()) {
    return Status::InvalidArgument("bootstrap needs a non-empty sample");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    return Status::InvalidArgument("confidence must lie in (0, 1)");
  }
  if (resamples < 100) {
    return Status::InvalidArgument("bootstrap needs >= 100 resamples");
  }

  Rng rng(seed);
  const auto n = static_cast<int64_t>(sample.size());
  std::vector<double> replicate(sample.size());
  std::vector<double> estimates;
  estimates.reserve(static_cast<size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (size_t i = 0; i < sample.size(); ++i) {
      replicate[i] = sample[static_cast<size_t>(rng.UniformInt(0, n - 1))];
    }
    estimates.push_back(statistic(replicate));
  }
  std::sort(estimates.begin(), estimates.end());

  const double alpha = 1.0 - confidence;
  auto quantile_at = [&](double q) {
    const double pos = q * static_cast<double>(estimates.size() - 1);
    const auto lo_index = static_cast<size_t>(pos);
    const size_t hi_index = std::min(lo_index + 1, estimates.size() - 1);
    const double frac = pos - static_cast<double>(lo_index);
    return estimates[lo_index] * (1.0 - frac) + estimates[hi_index] * frac;
  };

  BootstrapInterval interval;
  interval.point = statistic(sample);
  interval.lo = quantile_at(alpha / 2.0);
  interval.hi = quantile_at(1.0 - alpha / 2.0);
  return interval;
}

Result<BootstrapInterval> BootstrapMeanCi(const std::vector<double>& sample,
                                          double confidence, int resamples,
                                          uint64_t seed) {
  return BootstrapCi(
      sample,
      [](const std::vector<double>& xs) { return Mean(xs).value_or(0.0); },
      confidence, resamples, seed);
}

}  // namespace stratrec::stats
