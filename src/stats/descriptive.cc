#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace stratrec::stats {

Result<double> Mean(const std::vector<double>& xs) {
  if (xs.empty()) return Status::InvalidArgument("Mean of empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

Result<double> Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return Status::InvalidArgument("Variance requires n >= 2");
  }
  const double mu = Mean(xs).value();
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return ss / static_cast<double>(xs.size() - 1);
}

Result<double> StdDev(const std::vector<double>& xs) {
  auto var = Variance(xs);
  if (!var.ok()) return var.status();
  return std::sqrt(*var);
}

Result<double> StdError(const std::vector<double>& xs) {
  auto sd = StdDev(xs);
  if (!sd.ok()) return sd.status();
  return *sd / std::sqrt(static_cast<double>(xs.size()));
}

Result<double> Median(std::vector<double> xs) {
  return Quantile(std::move(xs), 0.5);
}

Result<double> Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return Status::InvalidArgument("Quantile of empty sample");
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile must lie in [0,1]");
  }
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Result<double> Min(const std::vector<double>& xs) {
  if (xs.empty()) return Status::InvalidArgument("Min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

Result<double> Max(const std::vector<double>& xs) {
  if (xs.empty()) return Status::InvalidArgument("Max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

Result<double> PearsonCorrelation(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("correlation requires equal sizes");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument("correlation requires n >= 2");
  }
  const double mx = Mean(xs).value();
  const double my = Mean(ys).value();
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return Status::InvalidArgument("correlation undefined for zero variance");
  }
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::std_error() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace stratrec::stats
