// Empirical discrete distributions.
//
// The paper captures worker availability as a probability distribution
// function over workforce fractions estimated from historical traces, and
// StratRec works with its expectation (Section 2.1). EmpiricalPmf is that
// object; Histogram builds one from raw samples.
#ifndef STRATREC_STATS_EMPIRICAL_H_
#define STRATREC_STATS_EMPIRICAL_H_

#include <vector>

#include "src/common/status.h"

namespace stratrec::stats {

/// One (value, probability) atom of a discrete distribution.
struct PmfAtom {
  double value = 0.0;
  double probability = 0.0;

  bool operator==(const PmfAtom&) const = default;
};

/// Discrete probability mass function over real values.
class EmpiricalPmf {
 public:
  EmpiricalPmf() = default;

  /// Builds a PMF; probabilities must be non-negative and sum to 1 within
  /// 1e-6 (they are re-normalized exactly).
  static Result<EmpiricalPmf> Create(std::vector<PmfAtom> atoms);

  /// Builds the empirical PMF of raw samples (each sample mass 1/n).
  static Result<EmpiricalPmf> FromSamples(const std::vector<double>& samples);

  /// E[X].
  double Expectation() const;

  /// Var(X) (population).
  double Variance() const;

  /// P(X <= x).
  double CdfAt(double x) const;

  const std::vector<PmfAtom>& atoms() const { return atoms_; }

 private:
  explicit EmpiricalPmf(std::vector<PmfAtom> atoms) : atoms_(std::move(atoms)) {}
  std::vector<PmfAtom> atoms_;
};

/// Fixed-width histogram over [lo, hi) used to coarsen availability samples
/// into a PMF with `bins` atoms (atom value = bin center).
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  static Result<Histogram> Create(double lo, double hi, int bins);

  /// Adds a sample; out-of-range samples clamp into the edge bins.
  void Add(double x);

  int64_t total_count() const { return total_; }
  const std::vector<int64_t>& counts() const { return counts_; }

  /// Converts to a PMF over bin centers; requires at least one sample.
  Result<EmpiricalPmf> ToPmf() const;

 private:
  Histogram(double lo, double hi, int bins)
      : lo_(lo), hi_(hi), counts_(static_cast<size_t>(bins), 0) {}
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace stratrec::stats

#endif  // STRATREC_STATS_EMPIRICAL_H_
