// Ordinary least squares simple linear regression y = alpha * x + beta with
// inference (confidence intervals, R^2, residual error).
//
// This is the estimator behind the paper's Equation 4 / Table 6: deployment
// parameters are modeled as linear functions of worker availability and the
// (alpha, beta) coefficients are fitted from historical deployments, with a
// 90% confidence-interval check.
#ifndef STRATREC_STATS_LINEAR_REGRESSION_H_
#define STRATREC_STATS_LINEAR_REGRESSION_H_

#include <vector>

#include "src/common/status.h"

namespace stratrec::stats {

/// A fitted line with its inference byproducts.
struct RegressionFit {
  double alpha = 0.0;        ///< slope
  double beta = 0.0;         ///< intercept
  double r_squared = 0.0;    ///< coefficient of determination
  double residual_std = 0.0; ///< sqrt(SSE / (n - 2)); 0 when n == 2
  double alpha_std_err = 0.0;
  double beta_std_err = 0.0;
  int64_t n = 0;

  /// Predicted y at x.
  double Predict(double x) const { return alpha * x + beta; }

  /// Two-sided CI half-width for the slope at the given confidence level.
  /// Requires n >= 3 (inference needs df = n - 2 >= 1).
  Result<double> AlphaHalfWidth(double confidence) const;

  /// Two-sided CI half-width for the intercept.
  Result<double> BetaHalfWidth(double confidence) const;

  /// True when `value` lies inside the slope's CI at `confidence`.
  bool AlphaCiContains(double value, double confidence) const;

  /// True when `value` lies inside the intercept's CI at `confidence`.
  bool BetaCiContains(double value, double confidence) const;
};

/// Fits y = alpha*x + beta by OLS. Requires xs.size() == ys.size(), n >= 2,
/// and xs not all identical.
Result<RegressionFit> FitLinear(const std::vector<double>& xs,
                                const std::vector<double>& ys);

}  // namespace stratrec::stats

#endif  // STRATREC_STATS_LINEAR_REGRESSION_H_
