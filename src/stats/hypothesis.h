// Hypothesis tests used by the evaluation: Welch's unequal-variance t-test
// (Figure 13's "with statistical significance" comparisons) and the paired
// t-test (mirrored deployments of the same task).
#ifndef STRATREC_STATS_HYPOTHESIS_H_
#define STRATREC_STATS_HYPOTHESIS_H_

#include <vector>

#include "src/common/status.h"

namespace stratrec::stats {

/// Outcome of a two-sample (or paired) t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value_two_sided = 1.0;
  double mean_difference = 0.0;  ///< mean(a) - mean(b)

  /// True when the two-sided p-value is below `alpha` (default 5%).
  bool Significant(double alpha = 0.05) const {
    return p_value_two_sided < alpha;
  }
};

/// Welch's t-test for independent samples with possibly unequal variances.
/// Requires both samples to have n >= 2 and at least one non-zero variance.
Result<TTestResult> WelchTTest(const std::vector<double>& a,
                               const std::vector<double>& b);

/// Paired t-test over equally sized samples (n >= 2); tests whether the mean
/// of a[i] - b[i] differs from zero.
Result<TTestResult> PairedTTest(const std::vector<double>& a,
                                const std::vector<double>& b);

}  // namespace stratrec::stats

#endif  // STRATREC_STATS_HYPOTHESIS_H_
