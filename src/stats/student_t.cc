#include "src/stats/student_t.h"

#include <cassert>
#include <cmath>

namespace stratrec::stats {
namespace {

// ln Gamma via Lanczos approximation (g=7, n=9), |error| < 1e-13.
double LogGamma(double x) {
  static const double kCoefficients[9] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoefficients[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoefficients[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

// Continued fraction for the incomplete beta (Numerical Recipes betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-14;
  constexpr double kFloor = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFloor) d = kFloor;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFloor) d = kFloor;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFloor) c = kFloor;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFloor) d = kFloor;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFloor) c = kFloor;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly where it converges fast, the
  // symmetry transformation elsewhere.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  assert(df > 0.0);
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double StudentTQuantile(double p, double df) {
  assert(p > 0.0 && p < 1.0);
  assert(df > 0.0);
  // Bracket, then bisect. CDF is monotone; 1e3 covers any practical quantile
  // for df >= 1, and we widen if needed.
  double lo = -8.0, hi = 8.0;
  while (StudentTCdf(lo, df) > p) lo *= 2.0;
  while (StudentTCdf(hi, df) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

double StudentTCriticalTwoSided(double confidence, double df) {
  assert(confidence > 0.0 && confidence < 1.0);
  return StudentTQuantile(0.5 + confidence / 2.0, df);
}

}  // namespace stratrec::stats
