#include "src/stats/empirical.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace stratrec::stats {

Result<EmpiricalPmf> EmpiricalPmf::Create(std::vector<PmfAtom> atoms) {
  if (atoms.empty()) return Status::InvalidArgument("PMF needs >= 1 atom");
  double total = 0.0;
  for (const auto& atom : atoms) {
    if (atom.probability < 0.0) {
      return Status::InvalidArgument("negative probability");
    }
    total += atom.probability;
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("probabilities must sum to 1");
  }
  for (auto& atom : atoms) atom.probability /= total;
  std::sort(atoms.begin(), atoms.end(),
            [](const PmfAtom& a, const PmfAtom& b) { return a.value < b.value; });
  return EmpiricalPmf(std::move(atoms));
}

Result<EmpiricalPmf> EmpiricalPmf::FromSamples(
    const std::vector<double>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("PMF from empty sample");
  }
  std::map<double, int64_t> counts;
  for (double s : samples) ++counts[s];
  std::vector<PmfAtom> atoms;
  atoms.reserve(counts.size());
  const double n = static_cast<double>(samples.size());
  for (const auto& [value, count] : counts) {
    atoms.push_back({value, static_cast<double>(count) / n});
  }
  return EmpiricalPmf(std::move(atoms));
}

double EmpiricalPmf::Expectation() const {
  double e = 0.0;
  for (const auto& atom : atoms_) e += atom.value * atom.probability;
  return e;
}

double EmpiricalPmf::Variance() const {
  const double mu = Expectation();
  double v = 0.0;
  for (const auto& atom : atoms_) {
    v += atom.probability * (atom.value - mu) * (atom.value - mu);
  }
  return v;
}

double EmpiricalPmf::CdfAt(double x) const {
  double p = 0.0;
  for (const auto& atom : atoms_) {
    if (atom.value <= x) p += atom.probability;
  }
  return p;
}

Result<Histogram> Histogram::Create(double lo, double hi, int bins) {
  if (!(lo < hi)) return Status::InvalidArgument("histogram needs lo < hi");
  if (bins < 1) return Status::InvalidArgument("histogram needs bins >= 1");
  return Histogram(lo, hi, bins);
}

void Histogram::Add(double x) {
  const auto bins = static_cast<double>(counts_.size());
  double pos = (x - lo_) / (hi_ - lo_) * bins;
  auto idx = static_cast<int64_t>(std::floor(pos));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

Result<EmpiricalPmf> Histogram::ToPmf() const {
  if (total_ == 0) {
    return Status::FailedPrecondition("histogram has no samples");
  }
  std::vector<PmfAtom> atoms;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    PmfAtom atom;
    atom.value = lo_ + (static_cast<double>(b) + 0.5) * width;
    atom.probability =
        static_cast<double>(counts_[b]) / static_cast<double>(total_);
    atoms.push_back(atom);
  }
  return EmpiricalPmf::Create(std::move(atoms));
}

}  // namespace stratrec::stats
