// Fundamental value types of the StratRec data model (paper Section 2.1).
#ifndef STRATREC_CORE_TYPES_H_
#define STRATREC_CORE_TYPES_H_

#include <string>

#include "src/common/float_compare.h"
#include "src/geometry/point.h"

namespace stratrec::core {

/// The three deployment parameters, normalized to [0, 1].
///
/// `quality` is higher-is-better (requests state a lower bound); `cost` and
/// `latency` are lower-is-better (requests state upper bounds). The same
/// struct describes both request thresholds and estimated strategy
/// parameters — Table 1 of the paper lists both in this form.
struct ParamVector {
  double quality = 0.0;
  double cost = 0.0;
  double latency = 0.0;

  bool operator==(const ParamVector& other) const = default;

  /// Squared Euclidean distance to `other` (ADPaR's objective, Equation 3).
  double SquaredDistanceTo(const ParamVector& other) const {
    const double dq = quality - other.quality;
    const double dc = cost - other.cost;
    const double dl = latency - other.latency;
    return dq * dq + dc * dc + dl * dl;
  }

  /// "SEQ-IND-CRO"-style tables print (quality, cost, latency).
  std::string ToString() const;
};

/// Axes of the parameter space, used by ADPaR's sweep machinery and traces.
enum class ParamAxis { kQuality = 0, kCost = 1, kLatency = 2 };

/// Short display name: "Q", "C", or "L" (paper Tables 3-5).
const char* ParamAxisName(ParamAxis axis);

/// True when strategy parameters `s` satisfy request thresholds `d`:
/// s.quality >= d.quality, s.cost <= d.cost, s.latency <= d.latency
/// (Section 2.1, tolerant comparison).
inline bool Satisfies(const ParamVector& s, const ParamVector& d,
                      double eps = kEps) {
  return ApproxGe(s.quality, d.quality, eps) && ApproxLe(s.cost, d.cost, eps) &&
         ApproxLe(s.latency, d.latency, eps);
}

/// Maps parameters into ADPaR's uniform smaller-is-better space
/// (quality inverted to 1 - quality; paper Section 4.1). Coordinates are
/// (x, y, z) = (1 - quality, cost, latency).
inline geo::Point3 ToRelaxSpace(const ParamVector& p) {
  return geo::Point3{1.0 - p.quality, p.cost, p.latency};
}

/// Inverse of ToRelaxSpace().
inline ParamVector FromRelaxSpace(const geo::Point3& p) {
  return ParamVector{1.0 - p.x, p.y, p.z};
}

}  // namespace stratrec::core

#endif  // STRATREC_CORE_TYPES_H_
