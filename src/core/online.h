// Online (stream) deployment recommendation — the paper's closing open
// problem: "how to design StratRec for a fully dynamic stream-like setting
// of incoming deployment requests, where the deployment requests could be
// revoked" (Section 7).
//
// The scheduler maintains a workforce budget W. Arriving requests are
// priced via the workforce matrix machinery (Section 3.2) at the current
// availability; a request is admitted when its aggregated requirement fits
// the remaining capacity, otherwise it waits in a bounded pending queue.
// Revocations (and completions) free capacity and trigger re-admission of
// pending requests in density order, so the stream behaves like a rolling
// BatchStrat.
#ifndef STRATREC_CORE_ONLINE_H_
#define STRATREC_CORE_ONLINE_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/batch_scheduler.h"

namespace stratrec::core {

/// Configuration of the stream scheduler.
struct OnlineOptions {
  BatchOptions batch;
  /// Requests that cannot be admitted immediately wait here; 0 disables
  /// queueing (immediate reject).
  size_t max_pending = 64;
  /// Drain the pending queue greedily whenever capacity frees up.
  bool readmit_on_release = true;
};

/// Admission decision for one arrival.
struct AdmissionDecision {
  enum class Kind {
    kAdmitted,   ///< serving now; `strategies` and `workforce` are set
    kQueued,     ///< waiting for capacity
    kRejected,   ///< ineligible (fewer than k feasible strategies) or queue full
  };
  Kind kind = Kind::kRejected;
  std::vector<size_t> strategies;
  double workforce = 0.0;

  bool operator==(const AdmissionDecision&) const = default;
};

/// Lifetime counters of one scheduler.
struct OnlineStats {
  size_t arrivals = 0;
  size_t admitted = 0;
  size_t queued = 0;
  size_t rejected = 0;
  size_t revoked = 0;
  size_t completed = 0;
  double objective = 0.0;        ///< value accrued from admitted requests
  double peak_utilization = 0.0; ///< max fraction of W ever in use
};

/// The stream scheduler. Not thread-safe; drive it from one event loop.
class OnlineScheduler {
 public:
  /// `profiles` is the strategy catalog; `availability` the expected W in
  /// [0, 1] used both as capacity and for parameter estimation.
  static Result<OnlineScheduler> Create(std::vector<StrategyProfile> profiles,
                                        double availability,
                                        OnlineOptions options = {});

  /// Handles one arriving request. Request ids must be unique among active
  /// (admitted or queued) requests.
  Result<AdmissionDecision> OnArrival(const DeploymentRequest& request);

  /// Revokes an active or queued request, freeing its capacity. Fails with
  /// kNotFound for unknown ids.
  Status OnRevocation(const std::string& request_id);

  /// Marks an admitted request as finished (its workers are released).
  Status OnCompletion(const std::string& request_id);

  /// Adjusts the workforce capacity (e.g. a new availability estimate for
  /// the next window). Existing admissions are honored even if the new
  /// capacity is lower; only future admissions see the change.
  Status SetAvailability(double availability);

  double availability() const { return availability_; }
  double used_workforce() const { return used_; }
  double RemainingCapacity() const;
  size_t active() const { return active_.size(); }
  size_t pending() const { return pending_.size(); }
  const OnlineStats& stats() const { return stats_; }

 private:
  /// A priced request, whether serving (active map) or waiting (pending
  /// queue): the admission bookkeeping is identical in both states.
  struct Entry {
    DeploymentRequest request;
    double workforce = 0.0;
    double value = 0.0;
  };

  OnlineScheduler(std::vector<StrategyProfile> profiles, double availability,
                  OnlineOptions options)
      : profiles_(std::move(profiles)),
        availability_(availability),
        options_(std::move(options)) {}

  /// Prices a request: aggregated workforce + chosen strategies.
  Result<std::pair<double, std::vector<size_t>>> Price(
      const DeploymentRequest& request) const;

  double Value(const DeploymentRequest& request) const;
  void Admit(const DeploymentRequest& request, double workforce, double value);
  void DrainPending();
  void NoteUtilization();

  std::vector<StrategyProfile> profiles_;
  double availability_ = 0.0;
  OnlineOptions options_;
  double used_ = 0.0;
  std::unordered_map<std::string, Entry> active_;
  std::deque<Entry> pending_;
  OnlineStats stats_;
};

}  // namespace stratrec::core

#endif  // STRATREC_CORE_ONLINE_H_
