#include "src/core/types.h"

#include <cstdio>

namespace stratrec::core {

std::string ParamVector::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(q=%.4f, c=%.4f, l=%.4f)", quality, cost,
                latency);
  return buf;
}

const char* ParamAxisName(ParamAxis axis) {
  switch (axis) {
    case ParamAxis::kQuality:
      return "Q";
    case ParamAxis::kCost:
      return "C";
    case ParamAxis::kLatency:
      return "L";
  }
  return "?";
}

}  // namespace stratrec::core
