// CatalogIndex: the catalog-resident acceleration structure behind the
// batch hot path (paper Figure 18's scalability claim).
//
// Everything the per-batch pipeline needs from the strategy catalog splits
// into two tiers of precomputable state:
//
//   * CatalogIndex — availability-independent. The per-axis linear-model
//     coefficients of every StrategyProfile, transposed into flat SoA
//     arrays (alpha[axis][], beta[axis][]) so the m x |S| workforce-matrix
//     fill and the O(|S|) parameter estimation stream through contiguous
//     doubles instead of chasing per-profile structs. Built once per
//     Aggregator/Service (optionally ParallelFor-parallel).
//
//   * AvailabilitySnapshot — keyed on one availability W. The flat
//     ParamVector block EstimateParams(W) produces (shared by every batch,
//     sweep cell, and ADPaR solve at that W), plus the per-axis sorted
//     strategy orderings and a dominance (skyline) prefilter over
//     relaxation space that turn ADPaR's per-request O(|S| log |S|) sort
//     into a one-time cost. The ADPaR block is built lazily on first use,
//     so batch-only workloads never pay for it.
//
// Every indexed path is bit-identical to its unindexed counterpart: the
// SoA estimators evaluate the exact same expressions, the matrix overload
// fills the exact same cells, and the index-accepting AdparExact prunes
// only strategies that provably cannot change the optimum (the k-skyband
// safety argument of src/core/skyline.h, applied with a conservative
// undercount). tests/catalog_index_test.cc property-tests all three.
#ifndef STRATREC_CORE_CATALOG_INDEX_H_
#define STRATREC_CORE_CATALOG_INDEX_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/executor.h"
#include "src/core/adpar.h"
#include "src/core/linear_model.h"
#include "src/core/types.h"

namespace stratrec::core {

/// The ADPaR-facing slice of a snapshot: per-axis orderings plus the
/// skyline-dominator prefilter. Built once per (catalog, W) and reused by
/// every alternative-recommendation solve at that availability.
struct AdparOrderings {
  /// Strategy indices ascending by (cost, index).
  std::vector<size_t> by_cost;
  /// Strategy indices descending by quality (ties ascending by index);
  /// quality-threshold candidates are a filtered scan of this.
  std::vector<size_t> by_quality_desc;
  /// Permuted value copies of the two orderings (by_cost_params[i] =
  /// params[by_cost[i]]; by_quality_desc_quality likewise). The ADPaR sweep
  /// re-scans its ordering per quality candidate and reads only values, so
  /// streaming these contiguous arrays replaces a cache-missing gather per
  /// visited strategy — the values and their order are identical, keeping
  /// the sweep bit-identical to the index-walking form.
  std::vector<ParamVector> by_cost_params;
  std::vector<double> by_quality_desc_quality;
  /// Indices of the relaxation-space skyline (points dominated by nobody),
  /// ascending by coordinate sum. On adversarial catalogs whose true
  /// skyline is huge, the build probes a bounded prefix per point and may
  /// record a superset — harmless, since only genuine dominations are ever
  /// counted from it.
  std::vector<size_t> skyline;
  /// skyline_dominators[j]: how many *skyline* strategies dominate j in
  /// relaxation space, counted against a bounded probe of `skyline` and
  /// capped at kSkylineDominatorCap. A conservative undercount of the true
  /// dominance count, so "skip j when skyline_dominators[j] >= k" only
  /// ever drops strategies the k-skyband argument proves redundant.
  std::vector<uint16_t> skyline_dominators;
};

/// Counting cap for AdparOrderings::skyline_dominators. Solves with
/// k > the cap simply see no pruning (still correct, never wrong).
inline constexpr uint16_t kSkylineDominatorCap = 64;

/// Builds the complete AdparOrderings block for `params`: the by-cost and
/// by-quality-descending index sorts, the bounded-probe skyline, and the
/// capped dominator counts. Deterministic — every comparator is a total
/// order with index tiebreaks — so any two builds over equal params produce
/// identical vectors, regardless of what `out` previously held (the
/// existing buffers are reused, which is what makes the stream layer's
/// incremental re-sorts bit-identical to a fresh snapshot by construction).
/// Shared by AvailabilitySnapshot::orderings() and stream::
/// IncrementalSnapshot.
void BuildAdparOrderings(const std::vector<ParamVector>& params,
                         AdparOrderings* out);

/// The orderings restricted to one cardinality's candidate subset
/// (strategies not known-dominated by >= k others).
struct PrunedOrderings {
  std::vector<size_t> by_cost;
  std::vector<size_t> by_quality_desc;
  /// Permuted value copies, as on AdparOrderings.
  std::vector<ParamVector> by_cost_params;
  std::vector<double> by_quality_desc_quality;
};

/// Immutable per-availability derived state. Obtained from
/// CatalogIndex::BuildSnapshot (uncached) or the Service's snapshot cache;
/// always held via shared_ptr<const ...> so batches, sweep cells, and
/// ADPaR solves at one W share a single block.
class AvailabilitySnapshot {
 public:
  double availability() const { return availability_; }
  size_t size() const { return params_.size(); }

  /// EstimateParams(availability()) for every strategy, index-aligned with
  /// the catalog — bit-identical to StrategyProfile::EstimateParams.
  const std::vector<ParamVector>& params() const { return params_; }

  /// The ADPaR block, built on first use (thread-safe; concurrent callers
  /// block on one build). Batch-only workloads never trigger it.
  const AdparOrderings& orderings() const;

  /// The pruned candidate orderings for cardinality k, computed once per k
  /// and cached for the snapshot's lifetime (a batch's requests typically
  /// share one k, so the filter pass amortizes like the sorts do). Null
  /// when pruning is a no-op for this k — k above the dominator cap,
  /// nothing dominated, or fewer than k survivors — in which case the
  /// sweep uses the full orderings.
  std::shared_ptr<const PrunedOrderings> PrunedFor(int k) const;

 private:
  friend class CatalogIndex;
  AvailabilitySnapshot() = default;

  double availability_ = 0.0;
  std::vector<ParamVector> params_;
  mutable std::once_flag orderings_once_;
  mutable AdparOrderings orderings_;
  /// Guards `pruned_`. Entries may hold null (computed, pruning a no-op).
  mutable std::mutex pruned_mutex_;
  mutable std::map<int, std::shared_ptr<const PrunedOrderings>> pruned_;
};

/// The availability-independent tier: SoA coefficient arrays.
class CatalogIndex {
 public:
  /// An empty index (size() == 0); Build() is the real constructor.
  CatalogIndex() = default;

  /// Transposes `profiles` into the SoA arrays. With a non-null `executor`
  /// the fill partitions across the pool in `grain`-sized chunks (the
  /// arrays are written disjointly, so the result is identical to the
  /// serial build).
  static CatalogIndex Build(const std::vector<StrategyProfile>& profiles,
                            Executor* executor = nullptr, size_t grain = 4096);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Wall-clock nanoseconds the Build() call took (the IndexBuildNanos
  /// counter ServiceStats surfaces).
  uint64_t build_nanos() const { return build_nanos_; }

  /// The flat coefficient arrays, one double per strategy.
  const std::vector<double>& alphas(ParamAxis axis) const {
    return alpha_[static_cast<size_t>(axis)];
  }
  const std::vector<double>& betas(ParamAxis axis) const {
    return beta_[static_cast<size_t>(axis)];
  }

  /// Re-materializes profile j (exactly the coefficients Build consumed).
  StrategyProfile ProfileAt(size_t j) const {
    return StrategyProfile{
        {alpha_[0][j], beta_[0][j]},
        {alpha_[1][j], beta_[1][j]},
        {alpha_[2][j], beta_[2][j]}};
  }

  /// Estimated parameters of strategy j at availability w — the same
  /// clamped per-axis lines StrategyProfile::EstimateParams evaluates,
  /// read from the SoA arrays.
  ParamVector EstimateParams(double w, size_t j) const {
    return ParamVector{ClampUnit(alpha_[0][j] * w + beta_[0][j]),
                       ClampUnit(alpha_[1][j] * w + beta_[1][j]),
                       ClampUnit(alpha_[2][j] * w + beta_[2][j])};
  }

  /// Fills `out` (resized to size()) with EstimateParams(w, j) for every j,
  /// optionally partitioned across `executor`.
  void EstimateParamsInto(double w, std::vector<ParamVector>* out,
                          Executor* executor = nullptr,
                          size_t grain = 4096) const;

  /// Builds the per-availability snapshot: the shared params block now, the
  /// ADPaR orderings lazily on first use. Uncached — the Service layers an
  /// availability-keyed LRU on top of this.
  std::shared_ptr<const AvailabilitySnapshot> BuildSnapshot(
      double w, Executor* executor = nullptr, size_t grain = 4096) const;

 private:
  size_t size_ = 0;
  /// Indexed by ParamAxis: 0 = quality, 1 = cost, 2 = latency.
  std::array<std::vector<double>, 3> alpha_;
  std::array<std::vector<double>, 3> beta_;
  uint64_t build_nanos_ = 0;
};

/// Index-accepting ADPaR: identical results to
/// AdparExact(snapshot.params(), request, k) with the per-request sorts
/// served from the snapshot's prebuilt orderings and skyline-dominated
/// candidates skipped. Defined in src/core/adpar.cc next to the shared
/// sweep core so both entry points run the exact same float operations.
///
/// Equivalence fine print: the optimal *distance* and the feasibility
/// verdict always match the classic solver exactly. The returned
/// alternative vector matches whenever the optimum is unique; when two
/// different tight candidates have exactly equal squared distance (a
/// measure-zero event for continuous parameters), pruning may surface the
/// other — equally optimal — one. Within the snapshot path itself the
/// choice is deterministic (cache hits, pool sizes, and replay all see
/// identical bytes).
Result<AdparResult> AdparExact(const AvailabilitySnapshot& snapshot,
                               const ParamVector& request, int k);

}  // namespace stratrec::core

#endif  // STRATREC_CORE_CATALOG_INDEX_H_
