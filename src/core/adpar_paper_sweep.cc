#include "src/core/adpar_paper_sweep.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "src/common/float_compare.h"

namespace stratrec::core {
namespace {

constexpr int kQuality = 0;
constexpr int kCost = 1;
constexpr int kLatency = 2;

// Relaxation needed per axis for d' (built from `levels`) to admit s.
std::array<double, 3> RelaxationsFor(const ParamVector& s,
                                     const ParamVector& d) {
  return {std::max(0.0, d.quality - s.quality),
          std::max(0.0, s.cost - d.cost),
          std::max(0.0, s.latency - d.latency)};
}

ParamVector Apply(const ParamVector& d, const std::array<double, 3>& levels) {
  return ParamVector{d.quality - levels[kQuality], d.cost + levels[kCost],
                     d.latency + levels[kLatency]};
}

size_t CountCovered(const std::vector<ParamVector>& strategies,
                    const ParamVector& d_prime) {
  size_t covered = 0;
  for (const ParamVector& s : strategies) {
    if (Satisfies(s, d_prime)) ++covered;
  }
  return covered;
}

double Objective(const std::array<double, 3>& levels) {
  return levels[0] * levels[0] + levels[1] * levels[1] + levels[2] * levels[2];
}

// Step-4 projection: repeatedly try to shrink one axis at a time to the
// smallest level that still covers >= k strategies (the paper computes the
// best of the three single-axis improvements; we iterate to a fixpoint).
std::array<double, 3> ShrinkToFixpoint(
    const std::vector<ParamVector>& strategies, std::array<double, 3> levels,
    size_t k, const std::vector<std::array<double, 3>>& needed) {
  bool improved = true;
  while (improved) {
    improved = false;
    for (int axis = 0; axis < 3; ++axis) {
      if (levels[axis] <= 0.0) continue;
      // The tight level for `axis` given the other two: the k-th smallest
      // axis-relaxation among strategies admitted by the other two axes.
      std::vector<double> candidates;
      for (size_t j = 0; j < strategies.size(); ++j) {
        bool admitted_elsewhere = true;
        for (int other = 0; other < 3; ++other) {
          if (other == axis) continue;
          if (needed[j][other] > levels[other] + kEps) {
            admitted_elsewhere = false;
            break;
          }
        }
        if (admitted_elsewhere) candidates.push_back(needed[j][axis]);
      }
      if (candidates.size() < k) continue;
      std::nth_element(candidates.begin(),
                       candidates.begin() + static_cast<long>(k - 1),
                       candidates.end());
      const double tight = candidates[k - 1];
      if (tight < levels[axis] - kEps) {
        levels[axis] = tight;
        improved = true;
      }
    }
  }
  return levels;
}

}  // namespace

Result<AdparResult> AdparPaperSweep(const std::vector<ParamVector>& strategies,
                                    const ParamVector& request, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const size_t n = strategies.size();
  const auto uk = static_cast<size_t>(k);
  if (n < uk) return Status::Infeasible("fewer strategies than k");

  // Step 1: relaxation requirements per strategy and axis.
  std::vector<std::array<double, 3>> needed(n);
  for (size_t j = 0; j < n; ++j) {
    needed[j] = RelaxationsFor(strategies[j], request);
  }

  // Step 2: the global sorted list (R, I, D).
  struct Entry {
    double relaxation;
    size_t strategy;
    int axis;
  };
  std::vector<Entry> sorted;
  sorted.reserve(3 * n);
  for (size_t j = 0; j < n; ++j) {
    for (int axis = 0; axis < 3; ++axis) {
      sorted.push_back(Entry{needed[j][axis], j, axis});
    }
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.relaxation < b.relaxation;
                   });

  // Step 3: initialize each sweep-line at the k-th smallest relaxation of
  // its own axis (Lemma 1: d' must reach at least the k-th value per axis).
  std::array<double, 3> levels = {0.0, 0.0, 0.0};
  for (int axis = 0; axis < 3; ++axis) {
    std::vector<double> axis_values(n);
    for (size_t j = 0; j < n; ++j) axis_values[j] = needed[j][axis];
    std::nth_element(axis_values.begin(),
                     axis_values.begin() + static_cast<long>(uk - 1),
                     axis_values.end());
    levels[axis] = axis_values[uk - 1];
  }

  double best_objective = std::numeric_limits<double>::infinity();
  std::array<double, 3> best_levels = {1.0, 1.0, 1.0};

  // Step 4: advance the cursor through the sorted list, raising one axis at
  // a time; whenever the current box covers k strategies, project it tight
  // and record the candidate. The paper returns at the first covering
  // candidate; we keep its objective but also let the cursor finish the
  // current relaxation value run (ties), which only strengthens the
  // heuristic without changing its character.
  auto consider = [&]() {
    const ParamVector d_prime = Apply(request, levels);
    if (CountCovered(strategies, d_prime) < uk) return false;
    const std::array<double, 3> tight =
        ShrinkToFixpoint(strategies, levels, uk, needed);
    const double objective = Objective(tight);
    if (objective < best_objective) {
      best_objective = objective;
      best_levels = tight;
    }
    return true;
  };

  bool covered = consider();
  for (size_t cursor = 0; cursor < sorted.size() && !covered; ++cursor) {
    const Entry& entry = sorted[cursor];
    if (entry.relaxation <= levels[entry.axis]) continue;
    levels[entry.axis] = entry.relaxation;
    covered = consider();
  }
  if (!std::isfinite(best_objective)) {
    // Full relaxation covers everything (|S| >= k guarantees feasibility).
    std::array<double, 3> full = {0.0, 0.0, 0.0};
    for (size_t j = 0; j < n; ++j) {
      for (int axis = 0; axis < 3; ++axis) {
        full[axis] = std::max(full[axis], needed[j][axis]);
      }
    }
    best_levels = ShrinkToFixpoint(strategies, full, uk, needed);
    best_objective = Objective(best_levels);
  }

  AdparResult result;
  result.alternative = Apply(request, best_levels);
  result.squared_distance = best_objective;
  result.distance = std::sqrt(best_objective);
  auto chosen = SelectCoveredStrategies(strategies, result.alternative, k);
  if (!chosen.ok()) return chosen.status();
  result.strategies = std::move(*chosen);
  return result;
}

}  // namespace stratrec::core
