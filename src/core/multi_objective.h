// Multi-objective batch deployment — the paper's stated future work
// ("adapting batch deployment to optimize additional criteria, such as
// worker-centric goals, or to combine multiple goals inside the same
// optimization function", Section 7).
//
// The combined objective for a served request d_i with aggregated workforce
// requirement w_i is the scalarization
//
//   f_i = throughput_weight * 1
//       + payoff_weight    * d_i.cost
//       - effort_weight    * w_i          (worker-centric: conserve effort)
//
// solved with the same density greedy + single-item guard as BatchStrat
// (the guard preserves the 1/2 bound whenever all f_i are non-negative).
// SweepPareto traces the throughput/pay-off trade-off curve by varying the
// mixing weight.
#ifndef STRATREC_CORE_MULTI_OBJECTIVE_H_
#define STRATREC_CORE_MULTI_OBJECTIVE_H_

#include <vector>

#include "src/core/batch_scheduler.h"

namespace stratrec::core {

/// Scalarization weights; all must be finite and >= 0.
struct ObjectiveWeights {
  double throughput = 1.0;
  double payoff = 0.0;
  /// Penalty per unit of workforce consumed (a worker-centric goal: prefer
  /// serving requests that tie up less of the crowd).
  double effort = 0.0;
};

/// Extended result: the scalarized objective plus its components.
struct MultiObjectiveResult {
  BatchResult batch;
  double throughput = 0.0;  ///< number of satisfied requests
  double payoff = 0.0;      ///< sum of served budgets
  double effort = 0.0;      ///< workforce consumed
  double scalarized = 0.0;  ///< the optimized combination
};

/// Solves the batch problem under the combined objective. `algorithm`
/// kBatchStrat uses the guarded greedy; kBruteForce enumerates (m <= 25);
/// kBaselineG is not supported here (it is defined by the pay-off ordering).
Result<MultiObjectiveResult> SolveBatchWeighted(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<StrategyProfile>& profiles, double available_workforce,
    const ObjectiveWeights& weights, const BatchOptions& options = {},
    BatchAlgorithm algorithm = BatchAlgorithm::kBatchStrat);

/// One point of the throughput/pay-off trade-off curve.
struct ParetoPoint {
  double payoff_weight = 0.0;  ///< throughput weight is (1 - payoff_weight)
  double throughput = 0.0;
  double payoff = 0.0;
};

/// Traces the trade-off curve by sweeping the pay-off mixing weight over
/// [0, 1] in `steps` increments (steps >= 2).
Result<std::vector<ParetoPoint>> SweepPareto(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<StrategyProfile>& profiles, double available_workforce,
    int steps, const BatchOptions& options = {});

}  // namespace stratrec::core

#endif  // STRATREC_CORE_MULTI_OBJECTIVE_H_
