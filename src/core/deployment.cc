#include "src/core/deployment.h"

namespace stratrec::core {

Status ValidateRequest(const DeploymentRequest& request) {
  auto in_unit = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in_unit(request.thresholds.quality) ||
      !in_unit(request.thresholds.cost) ||
      !in_unit(request.thresholds.latency)) {
    return Status::InvalidArgument("request '" + request.id +
                                   "': thresholds must lie in [0, 1]");
  }
  if (request.k < 1) {
    return Status::InvalidArgument("request '" + request.id +
                                   "': k must be >= 1");
  }
  return Status::OK();
}

std::vector<size_t> SuitableStrategies(const std::vector<ParamVector>& params,
                                       const ParamVector& thresholds) {
  std::vector<size_t> out;
  for (size_t j = 0; j < params.size(); ++j) {
    if (Satisfies(params[j], thresholds)) out.push_back(j);
  }
  return out;
}

}  // namespace stratrec::core
