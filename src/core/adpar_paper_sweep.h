// A faithful reconstruction of the paper's Algorithm 2 ("ADPaR-Exact") as
// literally written: three coupled sweep-lines over the globally sorted
// relaxation list (R, I, D), cursor advancement, and the step-4 projection
// that shrinks one axis at a time.
//
// The paper claims this procedure is exact (Theorem 4); implementing it
// verbatim shows it is a good heuristic but *not* exact — its cursor couples
// the three axes through one global ordering, so configurations where the
// optimum trades a large relaxation on one axis against none on the others
// can be skipped (tests/adpar_paper_sweep_test.cc exhibits concrete gaps).
// The repository's default solver (AdparExact in adpar.h) fixes this with a
// per-axis two-level sweep and is verified exact by property tests; this
// module exists to document the paper's algorithm and to measure its
// optimality gap (bench/fig17_adpar_quality adds it as a series).
#ifndef STRATREC_CORE_ADPAR_PAPER_SWEEP_H_
#define STRATREC_CORE_ADPAR_PAPER_SWEEP_H_

#include <vector>

#include "src/core/adpar.h"

namespace stratrec::core {

/// Solves ADPaR with the paper's literal sweep. Always returns a *valid*
/// alternative (covers >= k strategies) when |S| >= k; the objective value
/// is >= AdparExact's (equal on most instances).
Result<AdparResult> AdparPaperSweep(const std::vector<ParamVector>& strategies,
                                    const ParamVector& request, int k);

}  // namespace stratrec::core

#endif  // STRATREC_CORE_ADPAR_PAPER_SWEEP_H_
