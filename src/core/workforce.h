// Workforce-requirement computation (paper Section 3.2, Figure 3).
//
// Step 1 computes the m x |S| matrix W where w_ij is the workforce required
// to deploy request d_i with strategy s_j, obtained by inverting the linear
// parameter models (Equation 4). Step 2 aggregates each row into the
// workforce needed to recommend k strategies — either the sum of the k
// smallest requirements (the requester deploys with all k strategies) or the
// k-th smallest (the requester picks one of the k).
#ifndef STRATREC_CORE_WORKFORCE_H_
#define STRATREC_CORE_WORKFORCE_H_

#include <limits>
#include <vector>

#include "src/common/executor.h"
#include "src/common/status.h"
#include "src/core/deployment.h"
#include "src/core/linear_model.h"

namespace stratrec::core {

class CatalogIndex;

/// How w_ij is derived from the three per-parameter equality solutions.
///
/// The default is kMinimalWorkforce: the least workforce satisfying every
/// threshold, with upper-bound constraints (cost, and any parameter whose
/// slope makes the threshold an upper bound) acting as feasibility caps.
/// This is the only reading consistent with the paper's own walkthrough —
/// under the literal max-of-three rule, Example 1's d3 (cost budget 0.83)
/// would demand the full-budget workforce w = 2.01 (clamped to 1.0) and
/// could not be served at W = 0.8, contradicting Section 2.2.
enum class WorkforcePolicy {
  /// The least workforce meeting all thresholds (recommended, default).
  kMinimalWorkforce,
  /// The paper's literal rule (Figure 3a): w_ij = max(w_q, w_c, w_l),
  /// clamped into the feasible interval. Because cost grows with workforce,
  /// the cost term is the workforce at which the whole budget is spent, so
  /// feasible deployments consume their full budget (maximizing delivered
  /// quality). Kept as an ablation.
  kPaperMaxOfThree,
};

/// How a row of the matrix is folded into one per-request requirement
/// (Section 3.2 step 2).
enum class AggregationMode {
  kSum,  ///< deploy using all k strategies: sum of the k smallest w_ij
  kMax,  ///< deploy one of the k: the k-th smallest w_ij
};

/// One cell of the workforce matrix.
struct WorkforceCell {
  /// Minimum workforce in [0, 1] to deploy (d_i, s_j); +inf when infeasible.
  double requirement = std::numeric_limits<double>::infinity();
  /// Whether any workforce in [0, 1] satisfies all three thresholds.
  bool feasible = false;
};

/// Computes one cell: inverts each parameter model against the request
/// threshold, intersects the resulting feasibility interval with [0, 1], and
/// applies `policy`.
WorkforceCell ComputeWorkforceCell(
    const StrategyProfile& profile, const ParamVector& thresholds,
    WorkforcePolicy policy = WorkforcePolicy::kMinimalWorkforce);

/// The m x |S| workforce-requirement matrix.
class WorkforceMatrix {
 public:
  /// Builds the matrix for all (request, profile) pairs.
  /// `profiles[j]` models strategy j for this task type.
  ///
  /// Cells are independent, so when `executor` is non-null the cell range is
  /// partitioned across it in `grain`-sized chunks (each cell is written by
  /// exactly one chunk; the result is bit-identical to the serial path).
  /// Null `executor` keeps the computation on the calling thread.
  static WorkforceMatrix Compute(
      const std::vector<DeploymentRequest>& requests,
      const std::vector<StrategyProfile>& profiles,
      WorkforcePolicy policy = WorkforcePolicy::kMinimalWorkforce,
      Executor* executor = nullptr, size_t grain = 4096);

  /// Same matrix filled from a CatalogIndex's SoA coefficient arrays
  /// instead of per-profile structs: each cell reads six flat doubles, so
  /// the inner loop streams contiguous memory. Bit-identical to the
  /// profile overload (property-tested in tests/catalog_index_test.cc).
  static WorkforceMatrix Compute(
      const std::vector<DeploymentRequest>& requests,
      const CatalogIndex& index,
      WorkforcePolicy policy = WorkforcePolicy::kMinimalWorkforce,
      Executor* executor = nullptr, size_t grain = 4096);

  size_t num_requests() const { return rows_; }
  size_t num_strategies() const { return cols_; }

  const WorkforceCell& At(size_t request, size_t strategy) const {
    return cells_[request * cols_ + strategy];
  }

  /// Indices of the k cheapest feasible strategies for row `request`,
  /// ascending by requirement (ties by index). Fails with kInfeasible when
  /// fewer than k strategies are feasible.
  Result<std::vector<size_t>> KBestStrategies(size_t request, int k) const;

  /// Aggregated workforce requirement for `request` under the given
  /// cardinality k and mode (Figures 3b/3c). Fails with kInfeasible when
  /// fewer than k strategies are feasible.
  Result<double> AggregateRequirement(size_t request, int k,
                                      AggregationMode mode) const;

  /// Partial view of one row for scatter/gather: the total feasible count
  /// plus the min(k, feasible) cheapest strategies in KBestStrategies order
  /// (ascending requirement, ties by index) with their requirements. Unlike
  /// KBestStrategies this never fails on a short row — a shard cannot know
  /// whether its siblings make up the difference. Merging per-shard rows by
  /// (requirement, global index) reproduces the unsharded KBestStrategies
  /// list exactly, because the global k-best is always contained in the
  /// union of per-shard k-bests.
  struct RowTopK {
    size_t feasible_count = 0;
    std::vector<size_t> strategies;    ///< ascending (requirement, index)
    std::vector<double> requirements;  ///< index-aligned with `strategies`

    bool operator==(const RowTopK&) const = default;
  };
  Result<RowTopK> TopStrategies(size_t request, int k) const;

 private:
  WorkforceMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), cells_(rows * cols) {}
  size_t rows_;
  size_t cols_;
  std::vector<WorkforceCell> cells_;
};

}  // namespace stratrec::core

#endif  // STRATREC_CORE_WORKFORCE_H_
