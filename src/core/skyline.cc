#include "src/core/skyline.h"

#include <algorithm>

#include "src/core/kernels/kernels.h"

namespace stratrec::core {

bool Dominates(const ParamVector& p, const ParamVector& q) {
  const bool no_worse = p.quality >= q.quality && p.cost <= q.cost &&
                        p.latency <= q.latency;
  if (!no_worse) return false;
  return p.quality > q.quality || p.cost < q.cost || p.latency < q.latency;
}

std::vector<int> DominanceCounts(const std::vector<ParamVector>& strategies) {
  const size_t n = strategies.size();
  std::vector<int> counts(n, 0);
  // Sorting by relaxation-space coordinate sum lets the inner loop consider
  // only candidates with smaller sums (a dominator's sum is strictly
  // smaller), halving the quadratic constant.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  auto relax_sum = [&](size_t i) {
    const ParamVector& s = strategies[i];
    return (1.0 - s.quality) + s.cost + s.latency;
  };
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return relax_sum(a) < relax_sum(b); });
  // Permuted SoA copy of the sorted prefix so the quadratic inner loop runs
  // through the dispatched dominance kernel (4 candidates per AVX2 step).
  std::vector<double> quality(n);
  std::vector<double> cost(n);
  std::vector<double> latency(n);
  for (size_t i = 0; i < n; ++i) {
    const ParamVector& s = strategies[order[i]];
    quality[i] = s.quality;
    cost[i] = s.cost;
    latency[i] = s.latency;
  }
  const kernels::PointSoA pts{quality.data(), cost.data(), latency.data()};
  for (size_t a = 0; a < n; ++a) {
    counts[order[a]] = static_cast<int>(
        kernels::CountDominators(pts, a, strategies[order[a]]));
    // Equal-sum points can still dominate only when identical-sum but
    // unequal coordinates — impossible: domination with equal sums requires
    // equality on all axes, which is not domination. So b < a suffices.
  }
  return counts;
}

std::vector<size_t> Skyline(const std::vector<ParamVector>& strategies) {
  auto skyband = KSkyband(strategies, 1);
  return skyband.ok() ? std::move(*skyband) : std::vector<size_t>{};
}

Result<std::vector<size_t>> KSkyband(const std::vector<ParamVector>& strategies,
                                     int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const std::vector<int> counts = DominanceCounts(strategies);
  std::vector<size_t> band;
  for (size_t i = 0; i < strategies.size(); ++i) {
    if (counts[i] < k) band.push_back(i);
  }
  return band;
}

Result<AdparResult> AdparExactSkyband(const std::vector<ParamVector>& strategies,
                                      const ParamVector& request, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (strategies.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer strategies than k");
  }
  auto band = KSkyband(strategies, k);
  if (!band.ok()) return band.status();

  std::vector<ParamVector> pruned;
  pruned.reserve(band->size());
  for (size_t index : *band) pruned.push_back(strategies[index]);

  auto result = AdparExact(pruned, request, k);
  if (!result.ok()) return result.status();
  // Re-select covered strategies against the full catalog so indices refer
  // to the caller's list (the alternative may cover non-skyband strategies
  // too, which is fine — coverage only grows).
  auto covered = SelectCoveredStrategies(strategies, result->alternative, k);
  if (!covered.ok()) return covered.status();
  result->strategies = std::move(*covered);
  return std::move(*result);
}

}  // namespace stratrec::core
