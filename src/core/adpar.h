// ADPaR: Alternative Deployment Parameter Recommendation (paper Section 4).
//
// Given a request d that cannot be served, find the alternative parameters d'
// minimizing the Euclidean distance to d such that at least k strategies
// satisfy d' (Equation 3). Relaxation is one-directional: d'.quality <=
// d.quality (weaker lower bound), d'.cost >= d.cost and d'.latency >=
// d.latency (weaker upper bounds) — tightening any parameter can only lose
// coverage while increasing distance.
//
// AdparExact keeps the paper's discretized sweep-line idea but organizes it
// as a two-level sweep that is provably exact and O(|S|^2 log k) after an
// O(|S| log |S|) sort (the paper quotes O(|S|^3)):
//
//   The optimal d' is component-wise *tight*: every coordinate equals the
//   original coordinate or some strategy's coordinate (Lemma 1/2). So sweep
//   the <= |S|+1 candidate quality thresholds; for each, sweep the candidate
//   cost thresholds in ascending order over the quality-eligible strategies
//   while a bounded max-heap maintains the k-th smallest latency among
//   admitted strategies, which is exactly the tight latency threshold.
#ifndef STRATREC_CORE_ADPAR_H_
#define STRATREC_CORE_ADPAR_H_

#include <array>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"

namespace stratrec::core {

/// Solution of one ADPaR instance.
struct AdparResult {
  /// The recommended alternative deployment parameters d'.
  ParamVector alternative;
  /// k strategies satisfying `alternative` (indices into the input list),
  /// deterministic order (cheapest cost, then latency, then highest quality).
  std::vector<size_t> strategies;
  /// (d'.q - d.q)^2 + (d'.c - d.c)^2 + (d'.l - d.l)^2 — Equation 3.
  double squared_distance = 0.0;
  /// sqrt of the above: the l2 distance the paper plots in Figure 17.
  double distance = 0.0;

  bool operator==(const AdparResult&) const = default;
};

/// Optional execution trace mirroring the paper's worked example
/// (Tables 2-4): per-strategy relaxation requirements and the sorted
/// (R, I, D) lists.
struct AdparTrace {
  /// Step 1: required relaxation per strategy along (quality, cost,
  /// latency); 0 when the strategy already meets that threshold.
  struct Relaxation {
    size_t strategy = 0;
    std::array<double, 3> by_axis = {0.0, 0.0, 0.0};  // indexed by ParamAxis
  };
  std::vector<Relaxation> relaxations;

  /// Step 2: all 3|S| relaxation values sorted ascending; R[j] is the value,
  /// I[j] the strategy index, D[j] the axis.
  struct SortedEntry {
    double relaxation = 0.0;
    size_t strategy = 0;
    ParamAxis axis = ParamAxis::kQuality;
  };
  std::vector<SortedEntry> sorted;

  /// Every candidate d' the sweep evaluated (for the walkthrough figures).
  struct Candidate {
    ParamVector d_prime;
    double squared_distance = 0.0;
  };
  std::vector<Candidate> candidates;
};

/// Exact solver. Fails with kInfeasible when |S| < k and kInvalidArgument on
/// malformed input (k < 1). `trace`, when non-null, is filled with the
/// paper-style execution trace.
Result<AdparResult> AdparExact(const std::vector<ParamVector>& strategies,
                               const ParamVector& request, int k,
                               AdparTrace* trace = nullptr);

/// Exact solver over caller-supplied axis orderings. `strategies` is the
/// full parameter list; `by_cost` (ascending cost, ties by index) and
/// `by_quality_desc` (descending quality, ties by index) are orderings over
/// any candidate subset that provably contains an optimal tight alternative
/// (the whole list, a skyline-pruned subset, or a k-way merge of per-shard
/// skybands). Covered strategies are re-selected against the full list, so
/// every caller reports the same deterministic k-set. This is the funnel the
/// classic and snapshot entry points already share; exporting it lets the
/// shard router run the identical float operations over merged orderings.
Result<AdparResult> AdparExactOverOrderings(
    const std::vector<ParamVector>& strategies,
    const std::vector<size_t>& by_cost,
    const std::vector<size_t>& by_quality_desc, const ParamVector& request,
    int k);

/// A pluggable alternative-recommendation solver (AdparExact, the paper's
/// literal sweep, the baselines, ...). StratRec and the api-layer registry
/// accept any callable with this shape.
using AdparSolverFn = std::function<Result<AdparResult>(
    const std::vector<ParamVector>&, const ParamVector&, int)>;

/// Picks the `k` covered strategies reported for an alternative `d_prime`
/// (shared by all solvers for deterministic, comparable outputs). Requires
/// that at least k strategies satisfy d_prime.
Result<std::vector<size_t>> SelectCoveredStrategies(
    const std::vector<ParamVector>& strategies, const ParamVector& d_prime,
    int k);

}  // namespace stratrec::core

#endif  // STRATREC_CORE_ADPAR_H_
