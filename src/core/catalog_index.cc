#include "src/core/catalog_index.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "src/core/kernels/kernels.h"
#include "src/core/skyline.h"

namespace stratrec::core {

void BuildAdparOrderings(const std::vector<ParamVector>& params,
                         AdparOrderings* out_ptr) {
  const size_t n = params.size();
  AdparOrderings& out = *out_ptr;

  out.by_cost.resize(n);
  std::iota(out.by_cost.begin(), out.by_cost.end(), size_t{0});
  std::sort(out.by_cost.begin(), out.by_cost.end(),
            [&](size_t a, size_t b) {
              if (params[a].cost != params[b].cost) {
                return params[a].cost < params[b].cost;
              }
              return a < b;
            });

  out.by_quality_desc.resize(n);
  std::iota(out.by_quality_desc.begin(), out.by_quality_desc.end(),
            size_t{0});
  std::sort(out.by_quality_desc.begin(), out.by_quality_desc.end(),
            [&](size_t a, size_t b) {
              if (params[a].quality != params[b].quality) {
                return params[a].quality > params[b].quality;
              }
              return a < b;
            });

  // Permuted value arrays for the sweep (see AdparOrderings).
  out.by_cost_params.clear();
  out.by_cost_params.reserve(n);
  for (size_t j : out.by_cost) out.by_cost_params.push_back(params[j]);
  out.by_quality_desc_quality.clear();
  out.by_quality_desc_quality.reserve(n);
  for (size_t j : out.by_quality_desc) {
    out.by_quality_desc_quality.push_back(params[j].quality);
  }

  // Skyline via a relaxation-space coordinate-sum sweep: a dominator's
  // sum is strictly smaller, and domination is transitive, so checking
  // each point against the skyline built so far is exhaustive. Both the
  // membership test and the dominator counting below probe at most
  // kMaxSkylineProbe members, which bounds the build at O(n * probe)
  // even on adversarial (anti-correlated) catalogs whose true skyline is
  // a large fraction of the input. The cap can only make the recorded
  // "skyline" a superset of the true one and the dominator counts an
  // undercount — both directions are safe for the pruning (fewer
  // strategies skipped, never a wrong skip).
  constexpr size_t kMaxSkylineProbe = 1024;
  std::vector<size_t> by_sum(n);
  std::iota(by_sum.begin(), by_sum.end(), size_t{0});
  auto relax_sum = [&](size_t j) {
    return (1.0 - params[j].quality) + params[j].cost + params[j].latency;
  };
  std::sort(by_sum.begin(), by_sum.end(), [&](size_t a, size_t b) {
    if (relax_sum(a) != relax_sum(b)) return relax_sum(a) < relax_sum(b);
    return a < b;
  });
  out.skyline.clear();
  std::vector<double> skyline_sums;  // ascending, parallel to out.skyline
  // SoA mirror of the accepted skyline members so the membership probe and
  // the dominator counts below run through the SIMD dominance kernels.
  std::vector<double> sky_quality;
  std::vector<double> sky_cost;
  std::vector<double> sky_latency;
  for (size_t j : by_sum) {
    const size_t probe = std::min(out.skyline.size(), kMaxSkylineProbe);
    const kernels::PointSoA sky{sky_quality.data(), sky_cost.data(),
                                sky_latency.data()};
    if (!kernels::AnyDominates(sky, probe, params[j])) {
      out.skyline.push_back(j);
      skyline_sums.push_back(relax_sum(j));
      sky_quality.push_back(params[j].quality);
      sky_cost.push_back(params[j].cost);
      sky_latency.push_back(params[j].latency);
    }
  }

  // Capped dominator counts against the skyline only: a strict lower
  // bound of the true dominance count, which is all the k-skyband safety
  // argument needs. A dominator's coordinate sum is strictly smaller and
  // skyline_sums is ascending, so the scan stops at the first member
  // whose sum reaches the probed point's.
  out.skyline_dominators.assign(n, 0);
  const size_t probe_limit = std::min(out.skyline.size(), kMaxSkylineProbe);
  const kernels::PointSoA sky{sky_quality.data(), sky_cost.data(),
                              sky_latency.data()};
  for (size_t j = 0; j < n; ++j) {
    out.skyline_dominators[j] = static_cast<uint16_t>(
        kernels::CountDominatorsBounded(sky, skyline_sums.data(), probe_limit,
                                        relax_sum(j), kSkylineDominatorCap,
                                        params[j]));
  }
}

const AdparOrderings& AvailabilitySnapshot::orderings() const {
  std::call_once(orderings_once_,
                 [this] { BuildAdparOrderings(params_, &orderings_); });
  return orderings_;
}

std::shared_ptr<const PrunedOrderings> AvailabilitySnapshot::PrunedFor(
    int k) const {
  if (k < 1 || static_cast<size_t>(k) > kSkylineDominatorCap) return nullptr;
  {
    std::lock_guard<std::mutex> lock(pruned_mutex_);
    auto it = pruned_.find(k);
    if (it != pruned_.end()) return it->second;
  }
  // Build outside the lock; a racing duplicate build is benign (first
  // insert wins, the loser's copy is dropped).
  const AdparOrderings& full = orderings();
  const std::vector<uint16_t>& dominators = full.skyline_dominators;
  auto keep = [&](size_t j) {
    return dominators[j] < static_cast<uint16_t>(k);
  };
  std::shared_ptr<PrunedOrderings> built;
  std::vector<size_t> by_cost;
  by_cost.reserve(full.by_cost.size());
  for (size_t j : full.by_cost) {
    if (keep(j)) by_cost.push_back(j);
  }
  // The k-skyband always retains at least k strategies (the k smallest
  // relaxation-space sums have fewer than k dominators each), so the
  // pruned sweep stays feasible whenever the full one is; the guard is
  // belt and braces. No survivors removed -> the full orderings are
  // already the candidate set.
  if (by_cost.size() >= static_cast<size_t>(k) &&
      by_cost.size() < full.by_cost.size()) {
    built = std::make_shared<PrunedOrderings>();
    built->by_cost = std::move(by_cost);
    built->by_quality_desc.reserve(built->by_cost.size());
    for (size_t j : full.by_quality_desc) {
      if (keep(j)) built->by_quality_desc.push_back(j);
    }
    built->by_cost_params.reserve(built->by_cost.size());
    for (size_t j : built->by_cost) {
      built->by_cost_params.push_back(params_[j]);
    }
    built->by_quality_desc_quality.reserve(built->by_quality_desc.size());
    for (size_t j : built->by_quality_desc) {
      built->by_quality_desc_quality.push_back(params_[j].quality);
    }
  }
  std::lock_guard<std::mutex> lock(pruned_mutex_);
  return pruned_.emplace(k, std::move(built)).first->second;
}

CatalogIndex CatalogIndex::Build(const std::vector<StrategyProfile>& profiles,
                                 Executor* executor, size_t grain) {
  const auto start = std::chrono::steady_clock::now();
  CatalogIndex index;
  index.size_ = profiles.size();
  for (size_t axis = 0; axis < 3; ++axis) {
    index.alpha_[axis].resize(profiles.size());
    index.beta_[axis].resize(profiles.size());
  }
  auto fill = [&](size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      const StrategyProfile& p = profiles[j];
      index.alpha_[0][j] = p.quality.alpha;
      index.beta_[0][j] = p.quality.beta;
      index.alpha_[1][j] = p.cost.alpha;
      index.beta_[1][j] = p.cost.beta;
      index.alpha_[2][j] = p.latency.alpha;
      index.beta_[2][j] = p.latency.beta;
    }
  };
  if (executor != nullptr) {
    executor->ParallelFor(profiles.size(), grain, fill);
  } else {
    fill(0, profiles.size());
  }
  index.build_nanos_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return index;
}

void CatalogIndex::EstimateParamsInto(double w, std::vector<ParamVector>* out,
                                      Executor* executor, size_t grain) const {
  out->resize(size_);
  const kernels::CoeffSoA soa{alpha_[0].data(), beta_[0].data(),
                              alpha_[1].data(), beta_[1].data(),
                              alpha_[2].data(), beta_[2].data()};
  ParamVector* dst = out->data();
  auto fill = [&](size_t begin, size_t end) {
    kernels::EstimateParams(soa, w, begin, end, dst);
  };
  if (executor != nullptr) {
    executor->ParallelFor(size_, grain, fill);
  } else {
    fill(0, size_);
  }
}

std::shared_ptr<const AvailabilitySnapshot> CatalogIndex::BuildSnapshot(
    double w, Executor* executor, size_t grain) const {
  auto snapshot =
      std::shared_ptr<AvailabilitySnapshot>(new AvailabilitySnapshot());
  snapshot->availability_ = w;
  EstimateParamsInto(w, &snapshot->params_, executor, grain);
  return snapshot;
}

}  // namespace stratrec::core
