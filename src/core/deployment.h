// Deployment requests (paper Section 2.1): the parameters a requester
// desires, plus the number of strategies k to recommend.
#ifndef STRATREC_CORE_DEPLOYMENT_H_
#define STRATREC_CORE_DEPLOYMENT_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"

namespace stratrec::core {

/// A requester's deployment request `d`.
struct DeploymentRequest {
  std::string id;
  /// quality = lower bound on crowd contribution quality; cost & latency =
  /// upper bounds, all normalized to [0, 1].
  ParamVector thresholds;
  /// How many strategies to recommend (cardinality constraint).
  int k = 1;

  /// The platform's pay-off for serving this request: the budget the
  /// requester is willing to expend (paper Section 3.3.2, f_i = d_i.cost).
  double Payoff() const { return thresholds.cost; }

  bool operator==(const DeploymentRequest&) const = default;
};

/// Validates a request: thresholds in [0, 1] and k >= 1.
Status ValidateRequest(const DeploymentRequest& request);

/// Indices of strategies (given their concrete parameters) that satisfy the
/// request's thresholds, in input order.
std::vector<size_t> SuitableStrategies(const std::vector<ParamVector>& params,
                                       const ParamVector& thresholds);

}  // namespace stratrec::core

#endif  // STRATREC_CORE_DEPLOYMENT_H_
