#include "src/core/batch_scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/common/float_compare.h"
#include "src/core/knapsack.h"

namespace stratrec::core {

Result<BatchResult> SolveBatchAggregated(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<AggregatedRequest>& aggregated,
    double available_workforce, const BatchOptions& options,
    BatchAlgorithm algorithm) {
  if (available_workforce < 0.0) {
    return Status::InvalidArgument("available workforce must be >= 0");
  }
  if (aggregated.size() != requests.size()) {
    return Status::InvalidArgument(
        "aggregated rows must be index-aligned with the requests");
  }

  BatchResult result;
  result.outcomes.resize(requests.size());
  std::vector<KnapsackItem> items;
  items.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    STRATREC_RETURN_NOT_OK(ValidateRequest(requests[i]));
    RequestOutcome& outcome = result.outcomes[i];
    outcome.request_index = i;
    outcome.objective_value = options.objective == Objective::kThroughput
                                  ? 1.0
                                  : requests[i].Payoff();
    if (!aggregated[i].eligible) continue;  // fewer than k strategies
    outcome.eligible = true;
    KnapsackItem item;
    item.index = i;
    item.weight = aggregated[i].requirement;
    item.value = outcome.objective_value;
    // BaselineG always ranks by pay-off density, whatever the objective.
    item.sort_value = requests[i].Payoff();
    items.push_back(item);
  }

  std::vector<KnapsackItem> chosen;
  switch (algorithm) {
    case BatchAlgorithm::kBatchStrat: {
      GreedyKnapsackOptions greedy;
      greedy.single_item_guard = true;
      chosen = GreedyKnapsack(std::move(items), available_workforce, greedy);
      break;
    }
    case BatchAlgorithm::kBaselineG: {
      GreedyKnapsackOptions greedy;
      greedy.single_item_guard = false;
      greedy.use_sort_value = true;  // pay-off density, no guard
      chosen = GreedyKnapsack(std::move(items), available_workforce, greedy);
      break;
    }
    case BatchAlgorithm::kBruteForce: {
      auto exact = BruteForceKnapsack(items, available_workforce);
      if (!exact.ok()) return exact.status();
      chosen = std::move(*exact);
      break;
    }
  }

  for (const KnapsackItem& item : chosen) {
    RequestOutcome& outcome = result.outcomes[item.index];
    outcome.satisfied = true;
    outcome.workforce = item.weight;
    outcome.strategies = aggregated[item.index].strategies;
    result.total_objective += item.value;
    result.workforce_used += item.weight;
  }
  for (size_t i = 0; i < result.outcomes.size(); ++i) {
    if (result.outcomes[i].satisfied) {
      result.satisfied.push_back(i);
    } else {
      result.unsatisfied.push_back(i);
    }
  }
  return result;
}

Result<BatchResult> SolveBatch(const std::vector<DeploymentRequest>& requests,
                               const std::vector<StrategyProfile>& profiles,
                               double available_workforce,
                               const BatchOptions& options,
                               BatchAlgorithm algorithm) {
  if (available_workforce < 0.0) {
    return Status::InvalidArgument("available workforce must be >= 0");
  }
  const WorkforceMatrix matrix =
      options.use_catalog_index && options.catalog_index != nullptr
          ? WorkforceMatrix::Compute(requests, *options.catalog_index,
                                     options.policy, options.executor,
                                     options.parallel_grain)
          : WorkforceMatrix::Compute(requests, profiles, options.policy,
                                     options.executor,
                                     options.parallel_grain);

  // Fold each row once: the k-best list doubles as the aggregation order
  // (the sum below visits requirements exactly as AggregateRequirement
  // does) and as the commit-time strategy list.
  std::vector<AggregatedRequest> aggregated(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto best = matrix.KBestStrategies(i, requests[i].k);
    if (!best.ok()) continue;  // not eligible: fewer than k strategies
    AggregatedRequest& row = aggregated[i];
    row.eligible = true;
    if (options.aggregation == AggregationMode::kSum) {
      for (size_t j : *best) row.requirement += matrix.At(i, j).requirement;
    } else {
      row.requirement = matrix.At(i, best->back()).requirement;
    }
    row.strategies = std::move(*best);
  }
  return SolveBatchAggregated(requests, aggregated, available_workforce,
                              options, algorithm);
}

Result<BatchResult> BatchStrat(const std::vector<DeploymentRequest>& requests,
                               const std::vector<StrategyProfile>& profiles,
                               double available_workforce,
                               const BatchOptions& options) {
  return SolveBatch(requests, profiles, available_workforce, options,
                    BatchAlgorithm::kBatchStrat);
}

Result<BatchResult> BaselineG(const std::vector<DeploymentRequest>& requests,
                              const std::vector<StrategyProfile>& profiles,
                              double available_workforce,
                              const BatchOptions& options) {
  return SolveBatch(requests, profiles, available_workforce, options,
                    BatchAlgorithm::kBaselineG);
}

Result<BatchResult> BruteForceBatch(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<StrategyProfile>& profiles, double available_workforce,
    const BatchOptions& options) {
  return SolveBatch(requests, profiles, available_workforce, options,
                    BatchAlgorithm::kBruteForce);
}

const char* BatchAlgorithmName(BatchAlgorithm algorithm) {
  switch (algorithm) {
    case BatchAlgorithm::kBatchStrat:
      return "batchstrat";
    case BatchAlgorithm::kBaselineG:
      return "baseline-g";
    case BatchAlgorithm::kBruteForce:
      return "brute-force";
  }
  return "?";
}

BatchSolverFn SolverForAlgorithm(BatchAlgorithm algorithm) {
  return [algorithm](const std::vector<DeploymentRequest>& requests,
                     const std::vector<StrategyProfile>& profiles,
                     double available_workforce, const BatchOptions& options) {
    return SolveBatch(requests, profiles, available_workforce, options,
                      algorithm);
  };
}

}  // namespace stratrec::core
