#include "src/core/batch_scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/common/float_compare.h"
#include "src/core/knapsack.h"

namespace stratrec::core {
namespace {

// Builds the eligible item list and pre-fills the outcome vector.
Result<std::vector<KnapsackItem>> PrepareItems(
    const std::vector<DeploymentRequest>& requests,
    const WorkforceMatrix& matrix, const BatchOptions& options,
    std::vector<RequestOutcome>* outcomes) {
  std::vector<KnapsackItem> items;
  outcomes->clear();
  outcomes->resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    STRATREC_RETURN_NOT_OK(ValidateRequest(requests[i]));
    RequestOutcome& outcome = (*outcomes)[i];
    outcome.request_index = i;
    outcome.objective_value = options.objective == Objective::kThroughput
                                  ? 1.0
                                  : requests[i].Payoff();
    auto requirement =
        matrix.AggregateRequirement(i, requests[i].k, options.aggregation);
    if (!requirement.ok()) continue;  // not eligible: fewer than k strategies
    outcome.eligible = true;
    KnapsackItem item;
    item.index = i;
    item.weight = *requirement;
    item.value = outcome.objective_value;
    // BaselineG always ranks by pay-off density, whatever the objective.
    item.sort_value = requests[i].Payoff();
    items.push_back(item);
  }
  return items;
}

void CommitSelection(const std::vector<DeploymentRequest>& requests,
                     const WorkforceMatrix& matrix,
                     const std::vector<KnapsackItem>& chosen,
                     BatchResult* result) {
  for (const KnapsackItem& item : chosen) {
    RequestOutcome& outcome = result->outcomes[item.index];
    outcome.satisfied = true;
    outcome.workforce = item.weight;
    auto best = matrix.KBestStrategies(item.index, requests[item.index].k);
    if (best.ok()) outcome.strategies = std::move(*best);
    result->total_objective += item.value;
    result->workforce_used += item.weight;
  }
  for (size_t i = 0; i < result->outcomes.size(); ++i) {
    if (result->outcomes[i].satisfied) {
      result->satisfied.push_back(i);
    } else {
      result->unsatisfied.push_back(i);
    }
  }
}

}  // namespace

Result<BatchResult> SolveBatch(const std::vector<DeploymentRequest>& requests,
                               const std::vector<StrategyProfile>& profiles,
                               double available_workforce,
                               const BatchOptions& options,
                               BatchAlgorithm algorithm) {
  if (available_workforce < 0.0) {
    return Status::InvalidArgument("available workforce must be >= 0");
  }
  const WorkforceMatrix matrix =
      options.use_catalog_index && options.catalog_index != nullptr
          ? WorkforceMatrix::Compute(requests, *options.catalog_index,
                                     options.policy, options.executor,
                                     options.parallel_grain)
          : WorkforceMatrix::Compute(requests, profiles, options.policy,
                                     options.executor,
                                     options.parallel_grain);

  BatchResult result;
  auto items = PrepareItems(requests, matrix, options, &result.outcomes);
  if (!items.ok()) return items.status();

  std::vector<KnapsackItem> chosen;
  switch (algorithm) {
    case BatchAlgorithm::kBatchStrat: {
      GreedyKnapsackOptions greedy;
      greedy.single_item_guard = true;
      chosen = GreedyKnapsack(std::move(*items), available_workforce, greedy);
      break;
    }
    case BatchAlgorithm::kBaselineG: {
      GreedyKnapsackOptions greedy;
      greedy.single_item_guard = false;
      greedy.use_sort_value = true;  // pay-off density, no guard
      chosen = GreedyKnapsack(std::move(*items), available_workforce, greedy);
      break;
    }
    case BatchAlgorithm::kBruteForce: {
      auto exact = BruteForceKnapsack(*items, available_workforce);
      if (!exact.ok()) return exact.status();
      chosen = std::move(*exact);
      break;
    }
  }

  CommitSelection(requests, matrix, chosen, &result);
  return result;
}

Result<BatchResult> BatchStrat(const std::vector<DeploymentRequest>& requests,
                               const std::vector<StrategyProfile>& profiles,
                               double available_workforce,
                               const BatchOptions& options) {
  return SolveBatch(requests, profiles, available_workforce, options,
                    BatchAlgorithm::kBatchStrat);
}

Result<BatchResult> BaselineG(const std::vector<DeploymentRequest>& requests,
                              const std::vector<StrategyProfile>& profiles,
                              double available_workforce,
                              const BatchOptions& options) {
  return SolveBatch(requests, profiles, available_workforce, options,
                    BatchAlgorithm::kBaselineG);
}

Result<BatchResult> BruteForceBatch(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<StrategyProfile>& profiles, double available_workforce,
    const BatchOptions& options) {
  return SolveBatch(requests, profiles, available_workforce, options,
                    BatchAlgorithm::kBruteForce);
}

const char* BatchAlgorithmName(BatchAlgorithm algorithm) {
  switch (algorithm) {
    case BatchAlgorithm::kBatchStrat:
      return "batchstrat";
    case BatchAlgorithm::kBaselineG:
      return "baseline-g";
    case BatchAlgorithm::kBruteForce:
      return "brute-force";
  }
  return "?";
}

BatchSolverFn SolverForAlgorithm(BatchAlgorithm algorithm) {
  return [algorithm](const std::vector<DeploymentRequest>& requests,
                     const std::vector<StrategyProfile>& profiles,
                     double available_workforce, const BatchOptions& options) {
    return SolveBatch(requests, profiles, available_workforce, options,
                      algorithm);
  };
}

}  // namespace stratrec::core
