// Implementation-sharing surface of the kernel layer: the per-element
// scalar helpers (the reference semantics both the scalar range kernels and
// every SIMD tail loop run), plus the per-level entry points the dispatcher
// selects between. Tests include this header to drive one level directly;
// everything else should go through src/core/kernels/kernels.h.
#ifndef STRATREC_CORE_KERNELS_KERNELS_INTERNAL_H_
#define STRATREC_CORE_KERNELS_KERNELS_INTERNAL_H_

#include "src/common/float_compare.h"
#include "src/core/kernels/kernels.h"
#include "src/core/linear_model.h"

namespace stratrec::core::kernels::internal {

// ---------------------------------------------------------------------------
// Per-element reference semantics (shared by scalar kernels and SIMD tails)
// ---------------------------------------------------------------------------

/// EstimateParams for one strategy — the exact expression
/// StrategyProfile::EstimateParams evaluates, read from the SoA arrays.
inline ParamVector EstimateOne(const CoeffSoA& soa, double w, size_t j) {
  return ParamVector{
      ClampUnit(soa.quality_alpha[j] * w + soa.quality_beta[j]),
      ClampUnit(soa.cost_alpha[j] * w + soa.cost_beta[j]),
      ClampUnit(soa.latency_alpha[j] * w + soa.latency_beta[j])};
}

/// One workforce cell from the SoA arrays — delegates to the canonical
/// ComputeWorkforceCell so the scalar path *is* the unindexed path.
inline WorkforceCell CellOne(const CoeffSoA& soa, size_t j,
                             const ParamVector& thresholds,
                             WorkforcePolicy policy) {
  const StrategyProfile profile{
      {soa.quality_alpha[j], soa.quality_beta[j]},
      {soa.cost_alpha[j], soa.cost_beta[j]},
      {soa.latency_alpha[j], soa.latency_beta[j]}};
  return ComputeWorkforceCell(profile, thresholds, policy);
}

/// Dominates() of src/core/skyline.h, read from a PointSoA: comparison for
/// comparison the same expression.
inline bool DominatesOne(const PointSoA& pts, size_t i, const ParamVector& q) {
  const bool no_worse = pts.quality[i] >= q.quality &&
                        pts.cost[i] <= q.cost && pts.latency[i] <= q.latency;
  if (!no_worse) return false;
  return pts.quality[i] > q.quality || pts.cost[i] < q.cost ||
         pts.latency[i] < q.latency;
}

// ---------------------------------------------------------------------------
// Per-level range kernels (dispatch targets)
// ---------------------------------------------------------------------------

void ScalarEstimateParams(const CoeffSoA& soa, double w, size_t begin,
                          size_t end, ParamVector* out);
void ScalarFillWorkforceCells(const CoeffSoA& soa, size_t begin, size_t end,
                              const ParamVector& thresholds,
                              WorkforcePolicy policy, WorkforceCell* cells);
bool ScalarAnyDominates(const PointSoA& pts, size_t n, const ParamVector& q);
uint32_t ScalarCountDominators(const PointSoA& pts, size_t n,
                               const ParamVector& q);
uint32_t ScalarCountDominatorsBounded(const PointSoA& pts, const double* sums,
                                      size_t n, double sum_limit, uint32_t cap,
                                      const ParamVector& q);

/// True when this binary carries real AVX2 kernel bodies (the TU was
/// compiled with -mavx2). When false the Avx2* symbols below exist but
/// forward to the scalar kernels; dispatch never selects them.
bool Avx2CompiledIn();

void Avx2EstimateParams(const CoeffSoA& soa, double w, size_t begin,
                        size_t end, ParamVector* out);
void Avx2FillWorkforceCells(const CoeffSoA& soa, size_t begin, size_t end,
                            const ParamVector& thresholds,
                            WorkforcePolicy policy, WorkforceCell* cells);
bool Avx2AnyDominates(const PointSoA& pts, size_t n, const ParamVector& q);
uint32_t Avx2CountDominators(const PointSoA& pts, size_t n,
                             const ParamVector& q);
uint32_t Avx2CountDominatorsBounded(const PointSoA& pts, const double* sums,
                                    size_t n, double sum_limit, uint32_t cap,
                                    const ParamVector& q);

}  // namespace stratrec::core::kernels::internal

#endif  // STRATREC_CORE_KERNELS_KERNELS_INTERNAL_H_
