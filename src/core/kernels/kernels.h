// Explicit-width SIMD kernels for the SoA hot loops (runtime dispatched).
//
// The CatalogIndex refactor laid the per-axis linear-model coefficients out
// as flat double arrays precisely so the three hot loops of the batch
// pipeline could be vectorized:
//
//   * EstimateParams — the per-availability parameter block re-estimation
//     (CatalogIndex::EstimateParamsInto; stream::IncrementalSnapshot calls
//     it on every quantized-W move, so the streaming tier inherits the win),
//   * FillWorkforceCells — the m x |S| WorkforceMatrix::Compute cell fill,
//   * AnyDominates / CountDominators / CountDominatorsBounded — the
//     relaxation-space dominance tests behind the skyline prefilter
//     (BuildAdparOrderings) and DominanceCounts.
//
// Two implementations exist for every kernel: a portable scalar one
// (always compiled, the reference semantics) and an AVX2 one (4 double
// lanes, compiled only when the toolchain supports -mavx2). The AVX2 path
// is *bit-identical* to the scalar path by construction: it performs the
// exact same IEEE operations in the exact same order per element — FMA
// contraction is disabled on the kernel TU (plain mul + add, matching the
// baseline-ISA scalar code), clamps and min/max chains are replicated with
// compare+blend in scalar comparison order (so NaN/±0.0/denormal inputs
// flow through identically), and every call site keeps a scalar tail loop
// for the trailing n % 4 elements. tests/kernels_test.cc property-tests the
// equivalence on adversarial inputs; the CatalogIndex equivalence suites
// are the end-to-end safety net.
//
// Dispatch is resolved once at startup from CPUID (and can be overridden
// any time): the STRATREC_FORCE_SCALAR environment variable pins the scalar
// path for a whole process, and Configure() / ForceDispatchLevel() is the
// programmatic knob benches and tests use to measure both paths in one run.
#ifndef STRATREC_CORE_KERNELS_KERNELS_H_
#define STRATREC_CORE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "src/core/types.h"
#include "src/core/workforce.h"

namespace stratrec::core::kernels {

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

/// The instruction sets a kernel call may use. Wider levels are only ever
/// selected when both the build compiled them and the CPU reports support.
enum class DispatchLevel {
  kScalar = 0,  ///< portable reference path, always available
  kAvx2 = 1,    ///< 256-bit lanes (4 doubles), x86-64 with AVX2
};

/// Stable short name: "scalar" or "avx2" (ServiceStats::kernel_dispatch and
/// the bench JSON workload blocks carry this).
const char* DispatchLevelName(DispatchLevel level);

/// True when the AVX2 kernels were compiled into this binary *and* the CPU
/// supports them — i.e. kAvx2 is selectable.
bool Avx2Available();

/// The level kernel calls currently use. Resolved once on first use:
/// kAvx2 when Avx2Available() and the STRATREC_FORCE_SCALAR environment
/// variable is unset (or "0"/empty), kScalar otherwise. Configure()
/// overrides it afterwards.
DispatchLevel ActiveDispatchLevel();

/// Programmatic dispatch override (the KernelConfig knob).
struct KernelConfig {
  /// Pin dispatch to this level; nullopt restores the startup resolution
  /// (CPUID + STRATREC_FORCE_SCALAR). Requests for an unavailable level
  /// fall back to kScalar.
  std::optional<DispatchLevel> force_level;
};

/// Applies `config` process-wide. Thread-safe (the level is one atomic);
/// intended for startup, benches, and tests — flipping it mid-flight is
/// safe but makes concurrent results a mix of levels.
void Configure(const KernelConfig& config);

/// One-line description of how the kernels were compiled (compiler version,
/// whether the AVX2 TU was built, the fp-contract stance). Stamped into the
/// bench JSON workload blocks so artifacts from different boxes/toolchains
/// stay distinguishable.
std::string CompileFlags();

// ---------------------------------------------------------------------------
// Kernel 1: per-availability parameter estimation
// ---------------------------------------------------------------------------

/// The six flat coefficient arrays of a CatalogIndex (one double per
/// strategy, index-aligned). Pointers must stay valid for the call.
struct CoeffSoA {
  const double* quality_alpha = nullptr;
  const double* quality_beta = nullptr;
  const double* cost_alpha = nullptr;
  const double* cost_beta = nullptr;
  const double* latency_alpha = nullptr;
  const double* latency_beta = nullptr;
};

/// out[j] = { ClampUnit(qa[j]*w + qb[j]), ClampUnit(ca[j]*w + cb[j]),
///            ClampUnit(la[j]*w + lb[j]) } for j in [begin, end).
/// `out` is the full index-aligned array (the caller may partition the
/// range across an executor; disjoint ranges compose bit-identically).
void EstimateParams(const CoeffSoA& soa, double w, size_t begin, size_t end,
                    ParamVector* out);

// ---------------------------------------------------------------------------
// Kernel 2: workforce-matrix cell fill
// ---------------------------------------------------------------------------

/// cells[j] = ComputeWorkforceCell(profile_j, thresholds, policy) for j in
/// [begin, end), with profile_j read from the SoA arrays. `cells` is the
/// full index-aligned row (typically one WorkforceMatrix row); `thresholds`
/// is loop-invariant — hoist the per-request lookup before calling.
void FillWorkforceCells(const CoeffSoA& soa, size_t begin, size_t end,
                        const ParamVector& thresholds, WorkforcePolicy policy,
                        WorkforceCell* cells);

// ---------------------------------------------------------------------------
// Kernel 3: relaxation-space dominance tests
// ---------------------------------------------------------------------------

/// SoA view of candidate points in parameter space.
struct PointSoA {
  const double* quality = nullptr;
  const double* cost = nullptr;
  const double* latency = nullptr;
};

/// True when any of the first `n` SoA points dominates `q` (Dominates() of
/// src/core/skyline.h). Pure comparisons — trivially bit-identical.
bool AnyDominates(const PointSoA& pts, size_t n, const ParamVector& q);

/// Number of the first `n` SoA points dominating `q` (no early exit).
uint32_t CountDominators(const PointSoA& pts, size_t n, const ParamVector& q);

/// Dominator count with the skyline prefilter's scan semantics: visit
/// points in order, stop at the first i with sums[i] >= sum_limit (sums is
/// ascending, so this is a prefix), stop once `cap` dominators are found.
/// Returns min(count, cap) — exactly the scalar loop's result.
uint32_t CountDominatorsBounded(const PointSoA& pts, const double* sums,
                                size_t n, double sum_limit, uint32_t cap,
                                const ParamVector& q);

}  // namespace stratrec::core::kernels

#endif  // STRATREC_CORE_KERNELS_KERNELS_H_
