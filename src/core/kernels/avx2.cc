// AVX2 kernel bodies: 4 double lanes per step, bit-identical to the scalar
// reference by construction.
//
// Rules that keep the identity exact:
//   * No FMA. Every alpha*w+beta is a separate IEEE multiply and add, like
//     the baseline-ISA scalar code; the TU is compiled with
//     -ffp-contract=off so no compiler re-fuses the intrinsics.
//   * No minpd/maxpd for clamps or min/max chains. Those instructions
//     propagate NaN from a fixed operand position, which is *not* what the
//     scalar `a < b ? b : a` chains do. Every selection is an ordered-quiet
//     compare (false on NaN, like scalar <) plus a blend, replicating the
//     scalar comparison order exactly — so NaN, ±0.0, infinities and
//     denormals flow through identically.
//   * Tails (n % 4) run the same per-element helpers the scalar kernels
//     loop over.
//
// The whole TU is guarded: without STRATREC_KERNELS_AVX2_TU (set by CMake
// only when the compiler accepts -mavx2) the Avx2* symbols forward to the
// scalar kernels and Avx2CompiledIn() reports false, so dispatch never
// selects them.
#include "src/core/kernels/kernels_internal.h"

#if defined(STRATREC_KERNELS_AVX2_TU) && defined(__AVX2__)

#include <immintrin.h>

#include <limits>

namespace stratrec::core::kernels::internal {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline __m256d Not(__m256d m) {
  return _mm256_xor_pd(m, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)));
}

/// ClampUnit replicated in scalar order: t = v > 1 ? 1 : v; v < 0 ? 0 : t.
inline __m256d ClampUnitVec(__m256d v) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d t = _mm256_blendv_pd(v, one, _mm256_cmp_pd(v, one, _CMP_GT_OQ));
  return _mm256_blendv_pd(t, zero, _mm256_cmp_pd(v, zero, _CMP_LT_OQ));
}

/// One axis of ComputeWorkforceCell's AnalyzeConstraint for 4 strategies.
struct AxisVec {
  __m256d has_equality;  ///< alpha != 0 (lane mask)
  __m256d eq;            ///< (t - beta) / alpha; garbage where alpha == 0
  __m256d lo;            ///< interval floor contribution (0 where none)
  __m256d hi;            ///< interval ceiling contribution (+inf where none)
  __m256d feasible;      ///< constant-parameter feasibility (true elsewhere)
};

template <bool kLowerBound>
inline AxisVec AnalyzeAxisVec(const double* alpha, const double* beta,
                              size_t j, double threshold) {
  const __m256d va = _mm256_loadu_pd(alpha + j);
  const __m256d vb = _mm256_loadu_pd(beta + j);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vt = _mm256_set1_pd(threshold);

  AxisVec out;
  const __m256d alpha_zero = _mm256_cmp_pd(va, vzero, _CMP_EQ_OQ);
  out.has_equality = Not(alpha_zero);
  out.eq = _mm256_div_pd(_mm256_sub_pd(vt, vb), va);

  // is_lower = lower_bound_constraint == (alpha > 0).
  const __m256d alpha_pos = _mm256_cmp_pd(va, vzero, _CMP_GT_OQ);
  const __m256d is_lower = kLowerBound ? alpha_pos : Not(alpha_pos);
  out.lo = _mm256_blendv_pd(vzero, out.eq,
                            _mm256_and_pd(out.has_equality, is_lower));
  out.hi = _mm256_blendv_pd(_mm256_set1_pd(kInf), out.eq,
                            _mm256_and_pd(out.has_equality, Not(is_lower)));

  // Constant parameter: ApproxGe(beta, t) / ApproxLe(beta, t), evaluated
  // with the scalar operand shapes (beta + eps vs t; beta vs t + eps).
  __m256d ok;
  if constexpr (kLowerBound) {
    ok = _mm256_cmp_pd(_mm256_add_pd(vb, _mm256_set1_pd(kEps)), vt,
                       _CMP_GE_OQ);
  } else {
    ok = _mm256_cmp_pd(vb, _mm256_set1_pd(threshold + kEps), _CMP_LE_OQ);
  }
  out.feasible = _mm256_or_pd(out.has_equality, ok);
  return out;
}

/// candidate = max(candidate, eq) on lanes with an equality solution,
/// replicating scalar std::max's `(a < b) ? b : a`.
inline __m256d FoldEqualityMax(__m256d candidate, const AxisVec& axis) {
  const __m256d take = _mm256_and_pd(
      axis.has_equality, _mm256_cmp_pd(candidate, axis.eq, _CMP_LT_OQ));
  return _mm256_blendv_pd(candidate, axis.eq, take);
}

/// Lane mask (all-ones / all-zero per lane) -> 4-bit mask.
inline int MaskBits(__m256d m) { return _mm256_movemask_pd(m); }

/// Dominance mask for 4 SoA points against a broadcast query point.
inline int DominatesMask(const PointSoA& pts, size_t i, __m256d qq,
                         __m256d qc, __m256d ql) {
  const __m256d pq = _mm256_loadu_pd(pts.quality + i);
  const __m256d pc = _mm256_loadu_pd(pts.cost + i);
  const __m256d pl = _mm256_loadu_pd(pts.latency + i);
  const __m256d no_worse = _mm256_and_pd(
      _mm256_cmp_pd(pq, qq, _CMP_GE_OQ),
      _mm256_and_pd(_mm256_cmp_pd(pc, qc, _CMP_LE_OQ),
                    _mm256_cmp_pd(pl, ql, _CMP_LE_OQ)));
  const __m256d strict = _mm256_or_pd(
      _mm256_cmp_pd(pq, qq, _CMP_GT_OQ),
      _mm256_or_pd(_mm256_cmp_pd(pc, qc, _CMP_LT_OQ),
                   _mm256_cmp_pd(pl, ql, _CMP_LT_OQ)));
  return MaskBits(_mm256_and_pd(no_worse, strict));
}

}  // namespace

bool Avx2CompiledIn() { return true; }

void Avx2EstimateParams(const CoeffSoA& soa, double w, size_t begin,
                        size_t end, ParamVector* out) {
  const __m256d vw = _mm256_set1_pd(w);
  size_t j = begin;
  alignas(32) double q[4];
  alignas(32) double c[4];
  alignas(32) double l[4];
  for (; j + 4 <= end; j += 4) {
    const __m256d vq = ClampUnitVec(_mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(soa.quality_alpha + j), vw),
        _mm256_loadu_pd(soa.quality_beta + j)));
    const __m256d vc = ClampUnitVec(_mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(soa.cost_alpha + j), vw),
        _mm256_loadu_pd(soa.cost_beta + j)));
    const __m256d vl = ClampUnitVec(_mm256_add_pd(
        _mm256_mul_pd(_mm256_loadu_pd(soa.latency_alpha + j), vw),
        _mm256_loadu_pd(soa.latency_beta + j)));
    _mm256_store_pd(q, vq);
    _mm256_store_pd(c, vc);
    _mm256_store_pd(l, vl);
    for (int lane = 0; lane < 4; ++lane) {
      out[j + static_cast<size_t>(lane)] =
          ParamVector{q[lane], c[lane], l[lane]};
    }
  }
  for (; j < end; ++j) out[j] = EstimateOne(soa, w, j);
}

void Avx2FillWorkforceCells(const CoeffSoA& soa, size_t begin, size_t end,
                            const ParamVector& thresholds,
                            WorkforcePolicy policy, WorkforceCell* cells) {
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vinf = _mm256_set1_pd(kInf);
  const __m256d vneg_inf = _mm256_set1_pd(-kInf);
  const __m256d veps = _mm256_set1_pd(kEps);
  size_t j = begin;
  alignas(32) double req[4];
  for (; j + 4 <= end; j += 4) {
    const AxisVec quality = AnalyzeAxisVec</*kLowerBound=*/true>(
        soa.quality_alpha, soa.quality_beta, j, thresholds.quality);
    const AxisVec cost = AnalyzeAxisVec</*kLowerBound=*/false>(
        soa.cost_alpha, soa.cost_beta, j, thresholds.cost);
    const AxisVec latency = AnalyzeAxisVec</*kLowerBound=*/false>(
        soa.latency_alpha, soa.latency_beta, j, thresholds.latency);

    // lo = max{quality.lo, cost.lo, latency.lo, 0}, hi = min{..., 1} in the
    // scalar chain order (see ComputeWorkforceCell).
    __m256d lo = quality.lo;
    lo = _mm256_blendv_pd(lo, cost.lo, _mm256_cmp_pd(lo, cost.lo, _CMP_LT_OQ));
    lo = _mm256_blendv_pd(lo, latency.lo,
                          _mm256_cmp_pd(lo, latency.lo, _CMP_LT_OQ));
    lo = _mm256_blendv_pd(lo, vzero, _mm256_cmp_pd(lo, vzero, _CMP_LT_OQ));
    __m256d hi = quality.hi;
    hi = _mm256_blendv_pd(hi, cost.hi, _mm256_cmp_pd(cost.hi, hi, _CMP_LT_OQ));
    hi = _mm256_blendv_pd(hi, latency.hi,
                          _mm256_cmp_pd(latency.hi, hi, _CMP_LT_OQ));
    hi = _mm256_blendv_pd(hi, vone, _mm256_cmp_pd(vone, hi, _CMP_LT_OQ));

    // feasible = all three constraints satisfiable && ApproxLe(lo, hi).
    const __m256d interval_ok =
        _mm256_cmp_pd(lo, _mm256_add_pd(hi, veps), _CMP_LE_OQ);
    const __m256d feasible = _mm256_and_pd(
        _mm256_and_pd(quality.feasible, cost.feasible),
        _mm256_and_pd(latency.feasible, interval_ok));

    __m256d requirement;
    if (policy == WorkforcePolicy::kMinimalWorkforce) {
      requirement = lo;
    } else {
      // kPaperMaxOfThree: max over the equality solutions, clamped into
      // [lo, hi]; the interval floor when no model is invertible.
      __m256d candidate = vneg_inf;
      candidate = FoldEqualityMax(candidate, quality);
      candidate = FoldEqualityMax(candidate, cost);
      candidate = FoldEqualityMax(candidate, latency);
      // Clamp(candidate, lo, hi) = v < lo ? lo : (v > hi ? hi : v).
      __m256d clamped = _mm256_blendv_pd(
          candidate, hi, _mm256_cmp_pd(candidate, hi, _CMP_GT_OQ));
      clamped = _mm256_blendv_pd(clamped, lo,
                                 _mm256_cmp_pd(candidate, lo, _CMP_LT_OQ));
      requirement = _mm256_blendv_pd(
          clamped, lo, _mm256_cmp_pd(candidate, vneg_inf, _CMP_EQ_OQ));
    }
    requirement = _mm256_blendv_pd(vinf, requirement, feasible);

    _mm256_store_pd(req, requirement);
    const int feasible_bits = MaskBits(feasible);
    for (int lane = 0; lane < 4; ++lane) {
      WorkforceCell& cell = cells[j + static_cast<size_t>(lane)];
      cell.requirement = req[lane];
      cell.feasible = ((feasible_bits >> lane) & 1) != 0;
    }
  }
  for (; j < end; ++j) cells[j] = CellOne(soa, j, thresholds, policy);
}

bool Avx2AnyDominates(const PointSoA& pts, size_t n, const ParamVector& q) {
  const __m256d qq = _mm256_set1_pd(q.quality);
  const __m256d qc = _mm256_set1_pd(q.cost);
  const __m256d ql = _mm256_set1_pd(q.latency);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (DominatesMask(pts, i, qq, qc, ql) != 0) return true;
  }
  for (; i < n; ++i) {
    if (DominatesOne(pts, i, q)) return true;
  }
  return false;
}

uint32_t Avx2CountDominators(const PointSoA& pts, size_t n,
                             const ParamVector& q) {
  const __m256d qq = _mm256_set1_pd(q.quality);
  const __m256d qc = _mm256_set1_pd(q.cost);
  const __m256d ql = _mm256_set1_pd(q.latency);
  uint32_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    count += static_cast<uint32_t>(
        __builtin_popcount(static_cast<unsigned>(DominatesMask(pts, i, qq, qc, ql))));
  }
  for (; i < n; ++i) {
    if (DominatesOne(pts, i, q)) ++count;
  }
  return count;
}

uint32_t Avx2CountDominatorsBounded(const PointSoA& pts, const double* sums,
                                    size_t n, double sum_limit, uint32_t cap,
                                    const ParamVector& q) {
  const __m256d qq = _mm256_set1_pd(q.quality);
  const __m256d qc = _mm256_set1_pd(q.cost);
  const __m256d ql = _mm256_set1_pd(q.latency);
  const __m256d vlimit = _mm256_set1_pd(sum_limit);
  uint32_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // sums is ascending, so lanes with sums[i] < sum_limit form a prefix;
    // the scalar loop stops at the first lane outside it.
    const int in_prefix = MaskBits(
        _mm256_cmp_pd(_mm256_loadu_pd(sums + i), vlimit, _CMP_LT_OQ));
    const int dominates = DominatesMask(pts, i, qq, qc, ql);
    count += static_cast<uint32_t>(
        __builtin_popcount(static_cast<unsigned>(dominates & in_prefix)));
    if (in_prefix != 0xF) return count < cap ? count : cap;
    if (count >= cap) return cap;
  }
  for (; i < n; ++i) {
    if (sums[i] >= sum_limit) break;
    if (DominatesOne(pts, i, q)) {
      if (++count >= cap) break;
    }
  }
  return count < cap ? count : cap;
}

}  // namespace stratrec::core::kernels::internal

#else  // !(STRATREC_KERNELS_AVX2_TU && __AVX2__)

namespace stratrec::core::kernels::internal {

// No AVX2 in this build: keep the symbols (the dispatcher references them)
// but forward to the scalar kernels. Avx2CompiledIn() == false guarantees
// dispatch never selects this level, so the forwards are belt and braces.
bool Avx2CompiledIn() { return false; }

void Avx2EstimateParams(const CoeffSoA& soa, double w, size_t begin,
                        size_t end, ParamVector* out) {
  ScalarEstimateParams(soa, w, begin, end, out);
}

void Avx2FillWorkforceCells(const CoeffSoA& soa, size_t begin, size_t end,
                            const ParamVector& thresholds,
                            WorkforcePolicy policy, WorkforceCell* cells) {
  ScalarFillWorkforceCells(soa, begin, end, thresholds, policy, cells);
}

bool Avx2AnyDominates(const PointSoA& pts, size_t n, const ParamVector& q) {
  return ScalarAnyDominates(pts, n, q);
}

uint32_t Avx2CountDominators(const PointSoA& pts, size_t n,
                             const ParamVector& q) {
  return ScalarCountDominators(pts, n, q);
}

uint32_t Avx2CountDominatorsBounded(const PointSoA& pts, const double* sums,
                                    size_t n, double sum_limit, uint32_t cap,
                                    const ParamVector& q) {
  return ScalarCountDominatorsBounded(pts, sums, n, sum_limit, cap, q);
}

}  // namespace stratrec::core::kernels::internal

#endif
