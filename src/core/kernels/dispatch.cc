// Runtime dispatch for the SoA kernels: the level is resolved once (CPUID +
// STRATREC_FORCE_SCALAR) into one relaxed atomic, then every kernel call is
// a load + branch. Configure() overwrites the atomic; tests and benches use
// it to measure both levels inside one process.
#include <atomic>
#include <cstdlib>
#include <string>

#include "src/core/kernels/kernels_internal.h"

namespace stratrec::core::kernels {

namespace {

constexpr int kUnresolved = -1;

std::atomic<int> g_level{kUnresolved};

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// STRATREC_FORCE_SCALAR set to anything but "" or "0" pins scalar.
bool ForceScalarFromEnv() {
  const char* value = std::getenv("STRATREC_FORCE_SCALAR");
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

DispatchLevel ResolveStartupLevel() {
  if (ForceScalarFromEnv()) return DispatchLevel::kScalar;
  return Avx2Available() ? DispatchLevel::kAvx2 : DispatchLevel::kScalar;
}

DispatchLevel Level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kUnresolved) {
    level = static_cast<int>(ResolveStartupLevel());
    // Concurrent first calls resolve to the same value; last store wins.
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<DispatchLevel>(level);
}

}  // namespace

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool Avx2Available() { return internal::Avx2CompiledIn() && CpuHasAvx2(); }

DispatchLevel ActiveDispatchLevel() { return Level(); }

void Configure(const KernelConfig& config) {
  if (!config.force_level.has_value()) {
    g_level.store(static_cast<int>(ResolveStartupLevel()),
                  std::memory_order_relaxed);
    return;
  }
  DispatchLevel level = *config.force_level;
  if (level == DispatchLevel::kAvx2 && !Avx2Available()) {
    level = DispatchLevel::kScalar;
  }
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string CompileFlags() {
  std::string flags = "cxx=";
#if defined(__VERSION__)
  flags += __VERSION__;
#else
  flags += "unknown";
#endif
  flags += internal::Avx2CompiledIn()
               ? "; avx2-tu=-mavx2 -ffp-contract=off"
               : "; avx2-tu=absent";
  return flags;
}

void EstimateParams(const CoeffSoA& soa, double w, size_t begin, size_t end,
                    ParamVector* out) {
  if (Level() == DispatchLevel::kAvx2) {
    internal::Avx2EstimateParams(soa, w, begin, end, out);
  } else {
    internal::ScalarEstimateParams(soa, w, begin, end, out);
  }
}

void FillWorkforceCells(const CoeffSoA& soa, size_t begin, size_t end,
                        const ParamVector& thresholds, WorkforcePolicy policy,
                        WorkforceCell* cells) {
  if (Level() == DispatchLevel::kAvx2) {
    internal::Avx2FillWorkforceCells(soa, begin, end, thresholds, policy,
                                     cells);
  } else {
    internal::ScalarFillWorkforceCells(soa, begin, end, thresholds, policy,
                                       cells);
  }
}

bool AnyDominates(const PointSoA& pts, size_t n, const ParamVector& q) {
  if (Level() == DispatchLevel::kAvx2) {
    return internal::Avx2AnyDominates(pts, n, q);
  }
  return internal::ScalarAnyDominates(pts, n, q);
}

uint32_t CountDominators(const PointSoA& pts, size_t n, const ParamVector& q) {
  if (Level() == DispatchLevel::kAvx2) {
    return internal::Avx2CountDominators(pts, n, q);
  }
  return internal::ScalarCountDominators(pts, n, q);
}

uint32_t CountDominatorsBounded(const PointSoA& pts, const double* sums,
                                size_t n, double sum_limit, uint32_t cap,
                                const ParamVector& q) {
  if (Level() == DispatchLevel::kAvx2) {
    return internal::Avx2CountDominatorsBounded(pts, sums, n, sum_limit, cap,
                                                q);
  }
  return internal::ScalarCountDominatorsBounded(pts, sums, n, sum_limit, cap,
                                                q);
}

}  // namespace stratrec::core::kernels
