// Portable scalar kernels: the reference semantics every SIMD level must
// reproduce bit for bit. These are deliberately plain loops over the
// per-element helpers in kernels_internal.h — the same helpers the SIMD
// tail loops run — so "scalar kernel", "SIMD tail", and the historical
// unindexed code paths are one implementation.
#include "src/core/kernels/kernels_internal.h"

namespace stratrec::core::kernels::internal {

void ScalarEstimateParams(const CoeffSoA& soa, double w, size_t begin,
                          size_t end, ParamVector* out) {
  for (size_t j = begin; j < end; ++j) {
    out[j] = EstimateOne(soa, w, j);
  }
}

void ScalarFillWorkforceCells(const CoeffSoA& soa, size_t begin, size_t end,
                              const ParamVector& thresholds,
                              WorkforcePolicy policy, WorkforceCell* cells) {
  for (size_t j = begin; j < end; ++j) {
    cells[j] = CellOne(soa, j, thresholds, policy);
  }
}

bool ScalarAnyDominates(const PointSoA& pts, size_t n, const ParamVector& q) {
  for (size_t i = 0; i < n; ++i) {
    if (DominatesOne(pts, i, q)) return true;
  }
  return false;
}

uint32_t ScalarCountDominators(const PointSoA& pts, size_t n,
                               const ParamVector& q) {
  uint32_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (DominatesOne(pts, i, q)) ++count;
  }
  return count;
}

uint32_t ScalarCountDominatorsBounded(const PointSoA& pts, const double* sums,
                                      size_t n, double sum_limit, uint32_t cap,
                                      const ParamVector& q) {
  uint32_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (sums[i] >= sum_limit) break;
    if (DominatesOne(pts, i, q)) {
      if (++count >= cap) break;
    }
  }
  return count;
}

}  // namespace stratrec::core::kernels::internal
