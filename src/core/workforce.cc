#include "src/core/workforce.h"

#include <algorithm>
#include <cmath>

#include "src/common/float_compare.h"
#include "src/core/catalog_index.h"
#include "src/core/kernels/kernels.h"

namespace stratrec::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Feasible workforce interval [lo, hi] for one constraint, and the equality
// solution (where defined). `lower_bound_constraint` is true for quality
// (param must be >= threshold), false for cost/latency (param <= threshold).
struct ConstraintInterval {
  double lo = 0.0;
  double hi = kInf;
  bool has_equality = false;
  double equality = 0.0;
  bool feasible = true;
};

ConstraintInterval AnalyzeConstraint(const LinearModel& model, double threshold,
                                     bool lower_bound_constraint) {
  ConstraintInterval out;
  if (model.alpha == 0.0) {
    // Constant parameter: either every workforce level works or none does.
    const bool ok = lower_bound_constraint ? ApproxGe(model.beta, threshold)
                                           : ApproxLe(model.beta, threshold);
    out.feasible = ok;
    return out;
  }
  out.has_equality = true;
  out.equality = (threshold - model.beta) / model.alpha;
  // param >= t with alpha > 0  -> w >= eq ; with alpha < 0 -> w <= eq.
  // param <= t with alpha > 0  -> w <= eq ; with alpha < 0 -> w >= eq.
  const bool is_lower = lower_bound_constraint == (model.alpha > 0.0);
  if (is_lower) {
    out.lo = out.equality;
  } else {
    out.hi = out.equality;
  }
  return out;
}

}  // namespace

WorkforceCell ComputeWorkforceCell(const StrategyProfile& profile,
                                   const ParamVector& thresholds,
                                   WorkforcePolicy policy) {
  const ConstraintInterval quality =
      AnalyzeConstraint(profile.quality, thresholds.quality,
                        /*lower_bound_constraint=*/true);
  const ConstraintInterval cost =
      AnalyzeConstraint(profile.cost, thresholds.cost,
                        /*lower_bound_constraint=*/false);
  const ConstraintInterval latency =
      AnalyzeConstraint(profile.latency, thresholds.latency,
                        /*lower_bound_constraint=*/false);

  WorkforceCell cell;
  if (!quality.feasible || !cost.feasible || !latency.feasible) return cell;

  // Intersect the three half-lines with the physical range [0, 1]. Explicit
  // comparison chains (not std::max({...})) pin the comparison order, so the
  // SIMD kernels can replicate the fold compare-for-compare.
  double lo = quality.lo;
  if (lo < cost.lo) lo = cost.lo;
  if (lo < latency.lo) lo = latency.lo;
  if (lo < 0.0) lo = 0.0;
  double hi = quality.hi;
  if (cost.hi < hi) hi = cost.hi;
  if (latency.hi < hi) hi = latency.hi;
  if (1.0 < hi) hi = 1.0;
  if (!ApproxLe(lo, hi)) return cell;

  cell.feasible = true;
  switch (policy) {
    case WorkforcePolicy::kMinimalWorkforce:
      cell.requirement = lo;
      break;
    case WorkforcePolicy::kPaperMaxOfThree: {
      // max over the equality solutions (Figure 3a), clamped into the
      // feasible interval; with no invertible model the interval floor
      // applies.
      double candidate = -kInf;
      for (const ConstraintInterval* c : {&quality, &cost, &latency}) {
        if (c->has_equality && candidate < c->equality) {
          candidate = c->equality;
        }
      }
      cell.requirement =
          candidate == -kInf ? lo : Clamp(candidate, lo, hi);
      break;
    }
  }
  return cell;
}

WorkforceMatrix WorkforceMatrix::Compute(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<StrategyProfile>& profiles, WorkforcePolicy policy,
    Executor* executor, size_t grain) {
  WorkforceMatrix matrix(requests.size(), profiles.size());
  const size_t cols = matrix.cols_;
  // Row-major fill with the per-request thresholds hoisted out of the inner
  // loop (loop-invariant per row). An executor partition may start or end
  // mid-row, so each chunk walks row segments.
  auto fill = [&](size_t begin, size_t end) {
    while (begin < end) {
      const size_t row = begin / cols;
      const size_t row_end = std::min(end, (row + 1) * cols);
      const ParamVector& thresholds = requests[row].thresholds;
      for (size_t cell = begin, j = begin - row * cols; cell < row_end;
           ++cell, ++j) {
        matrix.cells_[cell] = ComputeWorkforceCell(profiles[j], thresholds,
                                                   policy);
      }
      begin = row_end;
    }
  };
  const size_t total = matrix.rows_ * cols;
  if (executor != nullptr) {
    executor->ParallelFor(total, grain, fill);
  } else {
    fill(0, total);
  }
  return matrix;
}

WorkforceMatrix WorkforceMatrix::Compute(
    const std::vector<DeploymentRequest>& requests, const CatalogIndex& index,
    WorkforcePolicy policy, Executor* executor, size_t grain) {
  WorkforceMatrix matrix(requests.size(), index.size());
  const size_t cols = matrix.cols_;
  const kernels::CoeffSoA soa{index.alphas(ParamAxis::kQuality).data(),
                              index.betas(ParamAxis::kQuality).data(),
                              index.alphas(ParamAxis::kCost).data(),
                              index.betas(ParamAxis::kCost).data(),
                              index.alphas(ParamAxis::kLatency).data(),
                              index.betas(ParamAxis::kLatency).data()};
  // Row-major fill through the dispatched kernel, thresholds hoisted per
  // row. An executor partition may start or end mid-row, so each chunk is
  // split into row segments before the kernel call.
  auto fill = [&](size_t begin, size_t end) {
    while (begin < end) {
      const size_t row = begin / cols;
      const size_t row_end = std::min(end, (row + 1) * cols);
      kernels::FillWorkforceCells(soa, begin - row * cols,
                                  row_end - row * cols,
                                  requests[row].thresholds, policy,
                                  matrix.cells_.data() + row * cols);
      begin = row_end;
    }
  };
  const size_t total = matrix.rows_ * cols;
  if (executor != nullptr) {
    executor->ParallelFor(total, grain, fill);
  } else {
    fill(0, total);
  }
  return matrix;
}

Result<std::vector<size_t>> WorkforceMatrix::KBestStrategies(size_t request,
                                                             int k) const {
  if (request >= rows_) return Status::OutOfRange("request index");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  std::vector<size_t> feasible;
  feasible.reserve(cols_);
  for (size_t j = 0; j < cols_; ++j) {
    if (At(request, j).feasible) feasible.push_back(j);
  }
  if (feasible.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer than k feasible strategies");
  }
  // Partial sort: the k cheapest requirements, ties broken by index for
  // determinism.
  auto cheaper = [this, request](size_t a, size_t b) {
    const double wa = At(request, a).requirement;
    const double wb = At(request, b).requirement;
    if (wa != wb) return wa < wb;
    return a < b;
  };
  std::partial_sort(feasible.begin(), feasible.begin() + k, feasible.end(),
                    cheaper);
  feasible.resize(static_cast<size_t>(k));
  return feasible;
}

Result<WorkforceMatrix::RowTopK> WorkforceMatrix::TopStrategies(size_t request,
                                                                int k) const {
  if (request >= rows_) return Status::OutOfRange("request index");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  std::vector<size_t> feasible;
  feasible.reserve(cols_);
  for (size_t j = 0; j < cols_; ++j) {
    if (At(request, j).feasible) feasible.push_back(j);
  }
  RowTopK row;
  row.feasible_count = feasible.size();
  const size_t take = std::min(feasible.size(), static_cast<size_t>(k));
  auto cheaper = [this, request](size_t a, size_t b) {
    const double wa = At(request, a).requirement;
    const double wb = At(request, b).requirement;
    if (wa != wb) return wa < wb;
    return a < b;
  };
  std::partial_sort(feasible.begin(),
                    feasible.begin() + static_cast<ptrdiff_t>(take),
                    feasible.end(), cheaper);
  feasible.resize(take);
  row.strategies = std::move(feasible);
  row.requirements.reserve(take);
  for (size_t j : row.strategies) {
    row.requirements.push_back(At(request, j).requirement);
  }
  return row;
}

Result<double> WorkforceMatrix::AggregateRequirement(size_t request, int k,
                                                     AggregationMode mode) const {
  auto best = KBestStrategies(request, k);
  if (!best.ok()) return best.status();
  if (mode == AggregationMode::kSum) {
    double total = 0.0;
    for (size_t j : *best) total += At(request, j).requirement;
    return total;
  }
  // kMax: the k-th smallest requirement — the last of the sorted k-best.
  return At(request, best->back()).requirement;
}

}  // namespace stratrec::core
