// Deployment strategies (paper Section 2.1, Figure 2).
//
// A strategy instantiates three dimensions — Structure (sequential or
// simultaneous), Organization (independent or collaborative) and Style
// (crowd-only or hybrid) — and, in general, is a *workflow*: a sequence of
// such stages (the paper notes Turkomatic-style workflows yield 8^x possible
// strategies for x stages).
#ifndef STRATREC_CORE_STRATEGY_H_
#define STRATREC_CORE_STRATEGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace stratrec::core {

/// Whether workers are solicited one after another or in parallel.
enum class Structure { kSequential = 0, kSimultaneous = 1 };

/// Whether workers work on their own copies or on a shared artifact.
enum class Organization { kIndependent = 0, kCollaborative = 1 };

/// Whether the crowd works alone or is combined with machine algorithms.
enum class WorkStyle { kCrowdOnly = 0, kHybrid = 1 };

/// One stage of a deployment strategy, e.g. SEQ-IND-CRO.
struct StageSpec {
  Structure structure = Structure::kSequential;
  Organization organization = Organization::kIndependent;
  WorkStyle style = WorkStyle::kCrowdOnly;

  bool operator==(const StageSpec&) const = default;
};

/// Canonical name, e.g. "SIM-COL-HYB".
std::string StageName(const StageSpec& spec);

/// Parses "SEQ-IND-CRO"-style names (case-insensitive).
Result<StageSpec> ParseStageName(const std::string& name);

/// All 8 single-stage specs in canonical order (SEQ before SIM, IND before
/// COL, CRO before HYB).
std::vector<StageSpec> AllStageSpecs();

/// A deployment strategy: a named workflow of one or more stages.
class Strategy {
 public:
  Strategy() = default;
  Strategy(std::string id, std::vector<StageSpec> stages)
      : id_(std::move(id)), stages_(std::move(stages)) {}

  /// Convenience for the common single-stage case.
  Strategy(std::string id, StageSpec stage)
      : id_(std::move(id)), stages_{stage} {}

  const std::string& id() const { return id_; }
  const std::vector<StageSpec>& stages() const { return stages_; }
  size_t num_stages() const { return stages_.size(); }

  /// "SEQ-IND-CRO>SIM-COL-HYB" for multi-stage workflows.
  std::string Describe() const;

  bool operator==(const Strategy&) const = default;

 private:
  std::string id_;
  std::vector<StageSpec> stages_;
};

/// Number of distinct workflows with exactly `num_stages` stages (8^x).
/// Fails with kOutOfRange when the count would overflow uint64.
Result<uint64_t> CountWorkflows(int num_stages);

/// Materializes every workflow with exactly `num_stages` stages, in
/// lexicographic stage order. Fails with kOutOfRange when the enumeration
/// would exceed `max_results` (guard against 8^x blow-up).
Result<std::vector<Strategy>> EnumerateWorkflows(int num_stages,
                                                 uint64_t max_results = 1u << 20);

}  // namespace stratrec::core

#endif  // STRATREC_CORE_STRATEGY_H_
