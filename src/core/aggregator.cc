#include "src/core/aggregator.h"

namespace stratrec::core {

Result<Aggregator> Aggregator::Create(std::vector<Strategy> strategies,
                                      std::vector<StrategyProfile> profiles) {
  if (strategies.size() != profiles.size()) {
    return Status::InvalidArgument(
        "strategy and profile lists must be index-aligned");
  }
  if (strategies.empty()) {
    return Status::InvalidArgument("aggregator needs at least one strategy");
  }
  return Aggregator(std::move(strategies), std::move(profiles));
}

Result<Aggregator> Aggregator::Create(Catalog catalog) {
  return Create(std::move(catalog.strategies), std::move(catalog.profiles));
}

Result<AggregatorReport> Aggregator::Run(
    const std::vector<DeploymentRequest>& requests,
    const AvailabilityModel& availability, const BatchOptions& options,
    BatchAlgorithm algorithm) const {
  return RunAtAvailability(requests, availability.ExpectedAvailability(),
                           options, algorithm);
}

Result<AggregatorReport> Aggregator::RunAtAvailability(
    const std::vector<DeploymentRequest>& requests, double availability,
    const BatchOptions& options, BatchAlgorithm algorithm) const {
  return RunAtAvailability(requests, availability, options,
                           SolverForAlgorithm(algorithm));
}

Result<AggregatorReport> Aggregator::RunAtAvailability(
    const std::vector<DeploymentRequest>& requests, double availability,
    const BatchOptions& options, const BatchSolverFn& solver) const {
  if (availability < 0.0 || availability > 1.0) {
    return Status::InvalidArgument("availability must lie in [0, 1]");
  }
  if (!solver) {
    return Status::InvalidArgument("batch solver must be non-null");
  }
  AggregatorReport report;
  report.availability = availability;
  report.strategy_params.reserve(profiles_.size());
  for (const StrategyProfile& profile : profiles_) {
    report.strategy_params.push_back(profile.EstimateParams(availability));
  }
  auto batch = solver(requests, profiles_, availability, options);
  if (!batch.ok()) return batch.status();
  report.batch = std::move(*batch);
  return report;
}

}  // namespace stratrec::core
