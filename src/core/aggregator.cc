#include "src/core/aggregator.h"

namespace stratrec::core {

Result<Aggregator> Aggregator::Create(std::vector<Strategy> strategies,
                                      std::vector<StrategyProfile> profiles) {
  if (strategies.size() != profiles.size()) {
    return Status::InvalidArgument(
        "strategy and profile lists must be index-aligned");
  }
  if (strategies.empty()) {
    return Status::InvalidArgument("aggregator needs at least one strategy");
  }
  return Aggregator(std::move(strategies), std::move(profiles));
}

Result<Aggregator> Aggregator::Create(Catalog catalog) {
  return Create(std::move(catalog.strategies), std::move(catalog.profiles));
}

Result<AggregatorReport> Aggregator::Run(
    const std::vector<DeploymentRequest>& requests,
    const AvailabilityModel& availability, const BatchOptions& options,
    BatchAlgorithm algorithm) const {
  return RunAtAvailability(requests, availability.ExpectedAvailability(),
                           options, algorithm);
}

Result<AggregatorReport> Aggregator::RunAtAvailability(
    const std::vector<DeploymentRequest>& requests, double availability,
    const BatchOptions& options, BatchAlgorithm algorithm) const {
  return RunAtAvailability(requests, availability, options,
                           SolverForAlgorithm(algorithm));
}

Result<AggregatorReport> Aggregator::RunAtAvailability(
    const std::vector<DeploymentRequest>& requests, double availability,
    const BatchOptions& options, const BatchSolverFn& solver) const {
  return RunAtAvailability(requests, availability, options, solver,
                           /*materialize_params=*/true, /*snapshot=*/nullptr);
}

Result<AggregatorReport> Aggregator::RunAtAvailability(
    const std::vector<DeploymentRequest>& requests, double availability,
    const BatchOptions& options, const BatchSolverFn& solver,
    bool materialize_params,
    const std::shared_ptr<const AvailabilitySnapshot>& snapshot) const {
  if (availability < 0.0 || availability > 1.0) {
    return Status::InvalidArgument("availability must lie in [0, 1]");
  }
  if (!solver) {
    return Status::InvalidArgument("batch solver must be non-null");
  }
  if (snapshot != nullptr && (snapshot->availability() != availability ||
                              snapshot->size() != profiles_.size())) {
    return Status::InvalidArgument(
        "availability snapshot does not match this run (wrong W or catalog)");
  }

  BatchOptions run_options = options;
  if (run_options.use_catalog_index && run_options.catalog_index == nullptr) {
    run_options.catalog_index = &index(options.executor, options.parallel_grain);
  }

  AggregatorReport report;
  report.availability = availability;
  if (materialize_params) {
    if (snapshot != nullptr) {
      // The shared per-W block; one memcpy instead of |S| estimations.
      report.strategy_params = snapshot->params();
    } else if (run_options.catalog_index != nullptr) {
      run_options.catalog_index->EstimateParamsInto(
          availability, &report.strategy_params, options.executor,
          options.parallel_grain);
    } else {
      report.strategy_params.reserve(profiles_.size());
      for (const StrategyProfile& profile : profiles_) {
        report.strategy_params.push_back(profile.EstimateParams(availability));
      }
    }
  }
  auto batch = solver(requests, profiles_, availability, run_options);
  if (!batch.ok()) return batch.status();
  report.batch = std::move(*batch);
  return report;
}

const CatalogIndex& Aggregator::index(Executor* executor, size_t grain) const {
  std::call_once(lazy_index_->once, [&] {
    lazy_index_->index = CatalogIndex::Build(profiles_, executor, grain);
    lazy_index_->build_nanos.store(lazy_index_->index.build_nanos(),
                                   std::memory_order_relaxed);
  });
  return lazy_index_->index;
}

uint64_t Aggregator::index_build_nanos() const {
  return lazy_index_->build_nanos.load(std::memory_order_relaxed);
}

Result<std::shared_ptr<const AvailabilitySnapshot>> Aggregator::BuildSnapshot(
    double availability, Executor* executor, size_t grain) const {
  if (availability < 0.0 || availability > 1.0) {
    return Status::InvalidArgument("availability must lie in [0, 1]");
  }
  return index(executor, grain).BuildSnapshot(availability, executor, grain);
}

}  // namespace stratrec::core
