#include "src/core/linear_model.h"

namespace stratrec::core {

Result<double> LinearModel::SolveForWorkforce(double target) const {
  if (alpha == 0.0) {
    return Status::FailedPrecondition(
        "constant model (alpha = 0) cannot be inverted");
  }
  return (target - beta) / alpha;
}

Result<FittedProfile> FitProfile(const std::vector<Observation>& observations) {
  if (observations.size() < 2) {
    return Status::InvalidArgument("profile fitting requires >= 2 observations");
  }
  std::vector<double> w, q, c, l;
  w.reserve(observations.size());
  q.reserve(observations.size());
  c.reserve(observations.size());
  l.reserve(observations.size());
  for (const Observation& obs : observations) {
    w.push_back(obs.availability);
    q.push_back(obs.outcome.quality);
    c.push_back(obs.outcome.cost);
    l.push_back(obs.outcome.latency);
  }
  auto quality_fit = stats::FitLinear(w, q);
  if (!quality_fit.ok()) return quality_fit.status();
  auto cost_fit = stats::FitLinear(w, c);
  if (!cost_fit.ok()) return cost_fit.status();
  auto latency_fit = stats::FitLinear(w, l);
  if (!latency_fit.ok()) return latency_fit.status();

  FittedProfile fitted;
  fitted.quality_fit = *quality_fit;
  fitted.cost_fit = *cost_fit;
  fitted.latency_fit = *latency_fit;
  fitted.profile.quality = {quality_fit->alpha, quality_fit->beta};
  fitted.profile.cost = {cost_fit->alpha, cost_fit->beta};
  fitted.profile.latency = {latency_fit->alpha, latency_fit->beta};
  return fitted;
}

}  // namespace stratrec::core
