// Worker availability (paper Section 2.1).
//
// Availability is a discrete random variable over workforce *fractions*
// estimated from historical arrival/departure data; StratRec works with its
// expectation. Example from the paper: a 70% chance of 7% of workers and a
// 30% chance of 2% gives an expected availability of 5.5%.
#ifndef STRATREC_CORE_AVAILABILITY_H_
#define STRATREC_CORE_AVAILABILITY_H_

#include <vector>

#include "src/common/status.h"
#include "src/stats/empirical.h"

namespace stratrec::core {

/// The availability distribution for one (task type, time window).
class AvailabilityModel {
 public:
  /// Builds from explicit (fraction, probability) atoms; fractions must lie
  /// in [0, 1] and probabilities must sum to 1.
  static Result<AvailabilityModel> FromPmf(
      std::vector<stats::PmfAtom> atoms);

  /// Builds the empirical distribution of observed availability fractions.
  static Result<AvailabilityModel> FromSamples(
      const std::vector<double>& fractions);

  /// Expected available workforce W in [0, 1] — the value all of StratRec's
  /// optimization consumes.
  double ExpectedAvailability() const { return pmf_.Expectation(); }

  /// Spread of the availability distribution.
  double Variance() const { return pmf_.Variance(); }

  const stats::EmpiricalPmf& pmf() const { return pmf_; }

 private:
  explicit AvailabilityModel(stats::EmpiricalPmf pmf) : pmf_(std::move(pmf)) {}
  stats::EmpiricalPmf pmf_;
};

}  // namespace stratrec::core

#endif  // STRATREC_CORE_AVAILABILITY_H_
