// The comparison algorithms evaluated against ADPaR-Exact in the paper's
// Figure 17 (Section 5.2.1): the exponential exact enumerator ADPaRB, the
// one-dimension-at-a-time query-refinement baseline (Baseline2, inspired by
// Mishra et al.), and the R-tree MBB baseline (Baseline3).
#ifndef STRATREC_CORE_ADPAR_BASELINES_H_
#define STRATREC_CORE_ADPAR_BASELINES_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/adpar.h"

namespace stratrec::core {

/// ADPaRB: enumerates every k-subset of strategies, computes the tight
/// alternative for each (component-wise clamp of the request against the
/// subset), and returns the best. Exact but exponential; fails with
/// kOutOfRange when C(|S|, k) exceeds `max_combinations`.
Result<AdparResult> AdparBrute(const std::vector<ParamVector>& strategies,
                               const ParamVector& request, int k,
                               uint64_t max_combinations = 20'000'000);

/// Baseline2: relaxes one parameter at a time. First tries each single-axis
/// relaxation that alone reaches k coverage (keeping the other two at the
/// requested values) and returns the cheapest; if no single axis suffices,
/// greedily relaxes the cheapest next axis step (to the next blocking
/// strategy coordinate) and repeats. Always returns a covering alternative,
/// but — unlike ADPaR-Exact — not an optimal one.
Result<AdparResult> AdparBaseline2(const std::vector<ParamVector>& strategies,
                                   const ParamVector& request, int k);

/// Baseline3: indexes strategies in an R-tree (in the smaller-is-better
/// relaxation space), scans node MBBs for one containing exactly k
/// strategies and returns its top corner (clamped against the request) as
/// the alternative; falls back to the best node with more than k. Fast but
/// oblivious to the distance objective.
Result<AdparResult> AdparBaseline3(const std::vector<ParamVector>& strategies,
                                   const ParamVector& request, int k);

}  // namespace stratrec::core

#endif  // STRATREC_CORE_ADPAR_BASELINES_H_
