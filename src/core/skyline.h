// Skyline and k-skyband computation over strategy parameter vectors.
//
// The paper positions ADPaR relative to skyline/skyband queries (Section 6:
// Borzsony et al., Chomicki et al., Mouratidis & Tang). Beyond reproducing
// that machinery, the k-skyband yields a *provably safe pruning pass* for
// ADPaR: in the smaller-is-better relaxation space, if a strategy p is
// dominated by at least k others, any k-subset containing p can swap p for a
// dominator not already in the subset without increasing the tight
// alternative's distance (the dominator needs component-wise no more
// relaxation). Iterating the swap argument shows some optimal k-subset lies
// entirely within the k-skyband, so ADPaR may discard everything else.
#ifndef STRATREC_CORE_SKYLINE_H_
#define STRATREC_CORE_SKYLINE_H_

#include <vector>

#include "src/core/adpar.h"
#include "src/core/types.h"

namespace stratrec::core {

/// True when `p` dominates `q` in relaxation space: component-wise <= and
/// strictly < on at least one axis (both points given as ParamVector;
/// quality higher-is-better, so p dominates with higher-or-equal quality and
/// lower-or-equal cost/latency).
bool Dominates(const ParamVector& p, const ParamVector& q);

/// Number of input points dominating each point (O(n^2)).
std::vector<int> DominanceCounts(const std::vector<ParamVector>& strategies);

/// Indices of the skyline (points dominated by nobody), in input order.
std::vector<size_t> Skyline(const std::vector<ParamVector>& strategies);

/// Indices of the k-skyband: points dominated by fewer than k others, in
/// input order. KSkyband(s, 1) == Skyline(s). Requires k >= 1.
Result<std::vector<size_t>> KSkyband(const std::vector<ParamVector>& strategies,
                                     int k);

/// ADPaR-Exact with k-skyband pre-pruning: identical result to
/// AdparExact(strategies, request, k) (property-tested), often on a much
/// smaller candidate set. Returned strategy indices refer to the original
/// input list.
Result<AdparResult> AdparExactSkyband(const std::vector<ParamVector>& strategies,
                                      const ParamVector& request, int k);

}  // namespace stratrec::core

#endif  // STRATREC_CORE_SKYLINE_H_
