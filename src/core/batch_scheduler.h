// Optimization-guided batch deployment (paper Section 3.3).
//
// Given per-request aggregated workforce requirements and the available
// workforce W, select the subset of requests to satisfy. Throughput
// maximization (count of satisfied requests) is solved exactly by the greedy
// (Theorem 2); pay-off maximization (sum of request budgets) is NP-hard by
// reduction from 0/1-Knapsack (Theorem 1) and the greedy achieves a
// 1/2-approximation (Theorem 3).
#ifndef STRATREC_CORE_BATCH_SCHEDULER_H_
#define STRATREC_CORE_BATCH_SCHEDULER_H_

#include <functional>
#include <vector>

#include "src/common/executor.h"
#include "src/common/status.h"
#include "src/core/deployment.h"
#include "src/core/workforce.h"

namespace stratrec::core {

class CatalogIndex;

/// Platform-centric optimization goal F (Section 2.3, Equation 2).
enum class Objective { kThroughput, kPayoff };

/// Knobs of the batch deployment problem.
struct BatchOptions {
  Objective objective = Objective::kThroughput;
  AggregationMode aggregation = AggregationMode::kSum;
  WorkforcePolicy policy = WorkforcePolicy::kMinimalWorkforce;
  /// When set, the embarrassingly-parallel stages (the m x |S| workforce
  /// matrix, the per-request ADPaR fan-out) partition across this pool.
  /// Null keeps every stage on the calling thread. Not owned; results are
  /// bit-identical either way.
  Executor* executor = nullptr;
  /// Minimum work items per chunk when `executor` is set.
  size_t parallel_grain = 4096;
  /// Ride the catalog's SoA CatalogIndex in the built-in solvers' hot
  /// loops. Results are bit-identical either way; off is the reference
  /// path bench/catalog_index.cc compares against.
  bool use_catalog_index = true;
  /// The index itself, set by Aggregator::RunAtAvailability when
  /// `use_catalog_index` is on (not owned). Solvers fall back to the
  /// profile list when null.
  const CatalogIndex* catalog_index = nullptr;
};

/// Per-request outcome of a batch run.
struct RequestOutcome {
  size_t request_index = 0;
  /// True when the scheduler allocated workforce and k strategies to it.
  bool satisfied = false;
  /// True when k strategies are feasible at all (regardless of W); requests
  /// with eligible == false can only be helped by ADPaR.
  bool eligible = false;
  /// Aggregated workforce this request consumes when satisfied.
  double workforce = 0.0;
  /// f_i: 1 for throughput, the request budget for pay-off.
  double objective_value = 0.0;
  /// The k recommended strategies (indices into the profile/strategy list),
  /// ascending by workforce requirement; empty unless satisfied.
  std::vector<size_t> strategies;

  bool operator==(const RequestOutcome&) const = default;
};

/// Result of one batch optimization.
struct BatchResult {
  std::vector<RequestOutcome> outcomes;  ///< index-aligned with the requests
  double total_objective = 0.0;
  double workforce_used = 0.0;
  std::vector<size_t> satisfied;    ///< request indices served
  std::vector<size_t> unsatisfied;  ///< request indices to forward to ADPaR

  bool operator==(const BatchResult&) const = default;
};

/// The three implemented algorithms (Section 5.2.1).
enum class BatchAlgorithm {
  kBatchStrat,  ///< the paper's greedy with the best-single-item guard
  kBaselineG,   ///< plain density greedy without the guard
  kBruteForce,  ///< exponential exact enumeration (m <= 25)
};

/// Stable lower-case name ("batchstrat", "baseline-g", "brute-force") used
/// by the api-layer algorithm registry and sweep reports.
const char* BatchAlgorithmName(BatchAlgorithm algorithm);

/// A pluggable batch solver: anything with the SolveBatch signature. The
/// Aggregator/StratRec pipeline accepts one of these so backends beyond the
/// built-in enum (api-layer registry entries) slot in without core changes.
using BatchSolverFn = std::function<Result<BatchResult>(
    const std::vector<DeploymentRequest>&, const std::vector<StrategyProfile>&,
    double, const BatchOptions&)>;

/// The built-in solver for `algorithm`, as a BatchSolverFn.
BatchSolverFn SolverForAlgorithm(BatchAlgorithm algorithm);

/// Solves the batch deployment recommendation problem.
///
/// `requests[i].k` is each request's cardinality constraint; `profiles[j]`
/// models strategy j; `available_workforce` is W in [0, 1].
Result<BatchResult> SolveBatch(const std::vector<DeploymentRequest>& requests,
                               const std::vector<StrategyProfile>& profiles,
                               double available_workforce,
                               const BatchOptions& options,
                               BatchAlgorithm algorithm);

/// One request's precomputed row aggregate: the input to the
/// matrix-independent half of SolveBatch. `strategies` is the request's
/// k-best list in WorkforceMatrix::KBestStrategies order (ascending
/// requirement, ties by strategy index) and `requirement` the aggregated
/// workforce over exactly that list; both are meaningless when `eligible`
/// is false. The shard router assembles these by merging per-shard
/// WorkforceMatrix::TopStrategies rows, which reproduces the unsharded
/// values bit for bit.
struct AggregatedRequest {
  bool eligible = false;
  double requirement = 0.0;
  std::vector<size_t> strategies;

  bool operator==(const AggregatedRequest&) const = default;
};

/// The selection half of SolveBatch: validation, the knapsack, and the
/// outcome commit, over caller-supplied row aggregates instead of a
/// WorkforceMatrix. SolveBatch itself funnels here after aggregating its
/// matrix, so a caller that supplies the same aggregates gets a bit-identical
/// BatchResult. `aggregated` must be index-aligned with `requests`.
Result<BatchResult> SolveBatchAggregated(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<AggregatedRequest>& aggregated,
    double available_workforce, const BatchOptions& options,
    BatchAlgorithm algorithm);

/// Convenience wrappers.
Result<BatchResult> BatchStrat(const std::vector<DeploymentRequest>& requests,
                               const std::vector<StrategyProfile>& profiles,
                               double available_workforce,
                               const BatchOptions& options = {});
Result<BatchResult> BaselineG(const std::vector<DeploymentRequest>& requests,
                              const std::vector<StrategyProfile>& profiles,
                              double available_workforce,
                              const BatchOptions& options = {});
Result<BatchResult> BruteForceBatch(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<StrategyProfile>& profiles, double available_workforce,
    const BatchOptions& options = {});

}  // namespace stratrec::core

#endif  // STRATREC_CORE_BATCH_SCHEDULER_H_
