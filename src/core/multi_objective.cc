#include "src/core/multi_objective.h"

#include <cmath>

#include "src/core/knapsack.h"

namespace stratrec::core {

Result<MultiObjectiveResult> SolveBatchWeighted(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<StrategyProfile>& profiles, double available_workforce,
    const ObjectiveWeights& weights, const BatchOptions& options,
    BatchAlgorithm algorithm) {
  if (available_workforce < 0.0) {
    return Status::InvalidArgument("available workforce must be >= 0");
  }
  if (weights.throughput < 0.0 || weights.payoff < 0.0 || weights.effort < 0.0 ||
      !std::isfinite(weights.throughput + weights.payoff + weights.effort)) {
    return Status::InvalidArgument("weights must be finite and >= 0");
  }
  if (algorithm == BatchAlgorithm::kBaselineG) {
    return Status::InvalidArgument(
        "BaselineG is defined by the pay-off ordering; use SolveBatch");
  }

  const WorkforceMatrix matrix =
      WorkforceMatrix::Compute(requests, profiles, options.policy,
                               options.executor, options.parallel_grain);

  MultiObjectiveResult result;
  result.batch.outcomes.resize(requests.size());
  std::vector<KnapsackItem> items;
  for (size_t i = 0; i < requests.size(); ++i) {
    STRATREC_RETURN_NOT_OK(ValidateRequest(requests[i]));
    RequestOutcome& outcome = result.batch.outcomes[i];
    outcome.request_index = i;
    auto requirement =
        matrix.AggregateRequirement(i, requests[i].k, options.aggregation);
    if (!requirement.ok()) continue;
    outcome.eligible = true;
    KnapsackItem item;
    item.index = i;
    item.weight = *requirement;
    // The effort penalty can make an item's value negative; such items can
    // never improve the objective, so they are dropped up front (the greedy
    // guard requires non-negative values for its approximation bound).
    item.value = weights.throughput + weights.payoff * requests[i].Payoff() -
                 weights.effort * item.weight;
    outcome.objective_value = item.value;
    if (item.value <= 0.0) continue;
    item.sort_value = item.value;
    items.push_back(item);
  }

  std::vector<KnapsackItem> chosen;
  if (algorithm == BatchAlgorithm::kBruteForce) {
    auto exact = BruteForceKnapsack(items, available_workforce);
    if (!exact.ok()) return exact.status();
    chosen = std::move(*exact);
  } else {
    GreedyKnapsackOptions greedy;
    greedy.single_item_guard = true;
    chosen = GreedyKnapsack(std::move(items), available_workforce, greedy);
  }

  for (const KnapsackItem& item : chosen) {
    RequestOutcome& outcome = result.batch.outcomes[item.index];
    outcome.satisfied = true;
    outcome.workforce = item.weight;
    auto best = matrix.KBestStrategies(item.index, requests[item.index].k);
    if (best.ok()) outcome.strategies = std::move(*best);
    result.batch.total_objective += item.value;
    result.batch.workforce_used += item.weight;
    result.throughput += 1.0;
    result.payoff += requests[item.index].Payoff();
    result.effort += item.weight;
  }
  for (size_t i = 0; i < result.batch.outcomes.size(); ++i) {
    if (result.batch.outcomes[i].satisfied) {
      result.batch.satisfied.push_back(i);
    } else {
      result.batch.unsatisfied.push_back(i);
    }
  }
  result.scalarized = result.batch.total_objective;
  return result;
}

Result<std::vector<ParetoPoint>> SweepPareto(
    const std::vector<DeploymentRequest>& requests,
    const std::vector<StrategyProfile>& profiles, double available_workforce,
    int steps, const BatchOptions& options) {
  if (steps < 2) return Status::InvalidArgument("sweep needs >= 2 steps");
  std::vector<ParetoPoint> curve;
  curve.reserve(static_cast<size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    const double lambda =
        static_cast<double>(s) / static_cast<double>(steps - 1);
    ObjectiveWeights weights;
    weights.throughput = 1.0 - lambda;
    weights.payoff = lambda;
    auto result = SolveBatchWeighted(requests, profiles, available_workforce,
                                     weights, options);
    if (!result.ok()) return result.status();
    curve.push_back(ParetoPoint{lambda, result->throughput, result->payoff});
  }
  return curve;
}

}  // namespace stratrec::core
