#include "src/core/stratrec.h"

namespace stratrec::core {

Result<StratRec> StratRec::Create(std::vector<Strategy> strategies,
                                  std::vector<StrategyProfile> profiles) {
  auto aggregator =
      Aggregator::Create(std::move(strategies), std::move(profiles));
  if (!aggregator.ok()) return aggregator.status();
  return StratRec(std::move(*aggregator));
}

Result<StratRec> StratRec::Create(Catalog catalog) {
  auto aggregator = Aggregator::Create(std::move(catalog));
  if (!aggregator.ok()) return aggregator.status();
  return StratRec(std::move(*aggregator));
}

Result<StratRecReport> StratRec::ProcessBatch(
    const std::vector<DeploymentRequest>& requests,
    const AvailabilityModel& availability,
    const StratRecOptions& options) const {
  return ProcessBatchAtAvailability(
      requests, availability.ExpectedAvailability(), options);
}

Result<StratRecReport> StratRec::ProcessBatchAtAvailability(
    const std::vector<DeploymentRequest>& requests, double availability,
    const StratRecOptions& options) const {
  // The O(|S|) parameter block is only materialized when something reads
  // it: the report's alternatives refer into it, or the caller asked.
  const bool materialize =
      options.materialize_params || options.recommend_alternatives;
  auto report = aggregator_.RunAtAvailability(
      requests, availability, options.batch,
      options.batch_solver ? options.batch_solver
                           : SolverForAlgorithm(options.algorithm),
      materialize, options.snapshot);
  if (!report.ok()) return report.status();

  StratRecReport out;
  out.aggregator = std::move(*report);
  if (!options.recommend_alternatives) return out;

  // Default solver: the snapshot-riding AdparExact when a snapshot is
  // available (prebuilt orderings + skyline pruning, bit-identical
  // results), the classic per-request one otherwise.
  const AvailabilitySnapshot* snapshot = options.snapshot.get();
  const AdparSolverFn adpar =
      options.adpar_solver
          ? options.adpar_solver
          : (snapshot != nullptr
                 ? AdparSolverFn([snapshot](const std::vector<ParamVector>&,
                                            const ParamVector& d, int k) {
                     return AdparExact(*snapshot, d, k);
                   })
                 : AdparSolverFn([](const std::vector<ParamVector>& params,
                                    const ParamVector& d, int k) {
                     return AdparExact(params, d, k, nullptr);
                   }));

  // Unsatisfied requests are forwarded to ADPaR (Section 2.2), against the
  // concrete strategy parameters estimated at W. Each solve is independent,
  // so with an executor the fan-out partitions across the pool; solutions
  // land in a per-request slot and are folded back in request order, keeping
  // the report identical to the serial path.
  const std::vector<size_t>& unsatisfied = out.aggregator.batch.unsatisfied;
  const std::vector<ParamVector>& params_at_w =
      snapshot != nullptr ? snapshot->params()
                          : out.aggregator.strategy_params;
  std::vector<Result<AdparResult>> solved(
      unsatisfied.size(), Result<AdparResult>(Status::Internal("unset")));
  auto solve = [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      const size_t index = unsatisfied[u];
      solved[u] = adpar(params_at_w, requests[index].thresholds,
                        requests[index].k);
    }
  };
  if (options.batch.executor != nullptr) {
    // ADPaR solves are orders of magnitude heavier than a matrix cell; use
    // a one-request grain so every solve can run on its own worker.
    options.batch.executor->ParallelFor(unsatisfied.size(), 1, solve);
  } else {
    solve(0, unsatisfied.size());
  }
  for (size_t u = 0; u < unsatisfied.size(); ++u) {
    if (solved[u].ok()) {
      out.alternatives.push_back(
          AlternativeRecommendation{unsatisfied[u], std::move(*solved[u])});
    } else {
      out.adpar_failures.push_back(unsatisfied[u]);
    }
  }
  return out;
}

}  // namespace stratrec::core
