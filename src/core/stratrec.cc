#include "src/core/stratrec.h"

namespace stratrec::core {

Result<StratRec> StratRec::Create(std::vector<Strategy> strategies,
                                  std::vector<StrategyProfile> profiles) {
  auto aggregator =
      Aggregator::Create(std::move(strategies), std::move(profiles));
  if (!aggregator.ok()) return aggregator.status();
  return StratRec(std::move(*aggregator));
}

Result<StratRec> StratRec::Create(Catalog catalog) {
  auto aggregator = Aggregator::Create(std::move(catalog));
  if (!aggregator.ok()) return aggregator.status();
  return StratRec(std::move(*aggregator));
}

Result<StratRecReport> StratRec::ProcessBatch(
    const std::vector<DeploymentRequest>& requests,
    const AvailabilityModel& availability,
    const StratRecOptions& options) const {
  return ProcessBatchAtAvailability(
      requests, availability.ExpectedAvailability(), options);
}

Result<StratRecReport> StratRec::ProcessBatchAtAvailability(
    const std::vector<DeploymentRequest>& requests, double availability,
    const StratRecOptions& options) const {
  auto report = aggregator_.RunAtAvailability(
      requests, availability, options.batch,
      options.batch_solver ? options.batch_solver
                           : SolverForAlgorithm(options.algorithm));
  if (!report.ok()) return report.status();

  StratRecReport out;
  out.aggregator = std::move(*report);
  if (!options.recommend_alternatives) return out;

  const AdparSolverFn& adpar =
      options.adpar_solver
          ? options.adpar_solver
          : [](const std::vector<ParamVector>& params, const ParamVector& d,
               int k) { return AdparExact(params, d, k, nullptr); };

  // Unsatisfied requests are forwarded to ADPaR one by one (Section 2.2),
  // against the concrete strategy parameters estimated at W.
  for (size_t index : out.aggregator.batch.unsatisfied) {
    auto alternative = adpar(out.aggregator.strategy_params,
                             requests[index].thresholds, requests[index].k);
    if (alternative.ok()) {
      out.alternatives.push_back(
          AlternativeRecommendation{index, std::move(*alternative)});
    } else {
      out.adpar_failures.push_back(index);
    }
  }
  return out;
}

}  // namespace stratrec::core
