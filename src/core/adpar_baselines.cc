#include "src/core/adpar_baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/float_compare.h"
#include "src/geometry/rtree.h"

namespace stratrec::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The tight alternative covering every strategy in `subset`: each request
// threshold is relaxed exactly as far as the worst subset member requires.
ParamVector ClampAgainstSubset(const std::vector<ParamVector>& strategies,
                               const std::vector<size_t>& subset,
                               const ParamVector& request) {
  ParamVector d = request;
  for (size_t j : subset) {
    d.quality = std::min(d.quality, strategies[j].quality);
    d.cost = std::max(d.cost, strategies[j].cost);
    d.latency = std::max(d.latency, strategies[j].latency);
  }
  return d;
}

Result<AdparResult> MakeResult(const std::vector<ParamVector>& strategies,
                               const ParamVector& request,
                               const ParamVector& d_prime, int k) {
  AdparResult result;
  result.alternative = d_prime;
  result.squared_distance = d_prime.SquaredDistanceTo(request);
  result.distance = std::sqrt(result.squared_distance);
  auto covered = SelectCoveredStrategies(strategies, d_prime, k);
  if (!covered.ok()) return covered.status();
  result.strategies = std::move(*covered);
  return result;
}

size_t CountCovered(const std::vector<ParamVector>& strategies,
                    const ParamVector& d_prime) {
  size_t covered = 0;
  for (const ParamVector& s : strategies) {
    if (Satisfies(s, d_prime)) ++covered;
  }
  return covered;
}

Result<uint64_t> Combinations(uint64_t n, uint64_t k, uint64_t cap) {
  if (k > n) return static_cast<uint64_t>(0);
  k = std::min(k, n - k);
  // Track a floating-point shadow to detect blow-ups before the exact
  // integer product (which stays integral at every step) can overflow.
  long double approx = 1.0L;
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    approx = approx * static_cast<long double>(n - k + i) /
             static_cast<long double>(i);
    if (approx > 2.0L * static_cast<long double>(cap)) {
      return Status::OutOfRange("combination count exceeds cap");
    }
    result = result * (n - k + i) / i;
  }
  if (result > cap) {
    return Status::OutOfRange("combination count exceeds cap");
  }
  return result;
}

}  // namespace

Result<AdparResult> AdparBrute(const std::vector<ParamVector>& strategies,
                               const ParamVector& request, int k,
                               uint64_t max_combinations) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const size_t n = strategies.size();
  if (n < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer strategies than k");
  }
  auto combos = Combinations(n, static_cast<uint64_t>(k), max_combinations);
  if (!combos.ok()) return combos.status();

  const auto uk = static_cast<size_t>(k);
  std::vector<size_t> subset(uk);
  for (size_t i = 0; i < uk; ++i) subset[i] = i;

  double best_sq = kInf;
  ParamVector best{};
  while (true) {
    const ParamVector d = ClampAgainstSubset(strategies, subset, request);
    const double sq = d.SquaredDistanceTo(request);
    if (sq < best_sq) {
      best_sq = sq;
      best = d;
    }
    // Next combination in lexicographic order.
    size_t pos = uk;
    while (pos > 0 && subset[pos - 1] == n - uk + pos - 1) --pos;
    if (pos == 0) break;
    ++subset[pos - 1];
    for (size_t i = pos; i < uk; ++i) subset[i] = subset[i - 1] + 1;
  }
  return MakeResult(strategies, request, best, k);
}

Result<AdparResult> AdparBaseline2(const std::vector<ParamVector>& strategies,
                                   const ParamVector& request, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const size_t n = strategies.size();
  const auto uk = static_cast<size_t>(k);
  if (n < uk) return Status::Infeasible("fewer strategies than k");

  ParamVector current = request;
  // Bounded by the number of distinct strategy coordinates: each greedy step
  // relaxes one axis to a new strategy coordinate.
  for (size_t step = 0; step <= 3 * n + 3; ++step) {
    if (CountCovered(strategies, current) >= uk) {
      return MakeResult(strategies, request, current, k);
    }

    // Try every single-axis relaxation that alone reaches k coverage, with
    // the other two axes fixed at their current values.
    double best_sq = kInf;
    ParamVector best{};
    for (int axis = 0; axis < 3; ++axis) {
      // Strategies eligible on the other two axes.
      std::vector<double> coords;
      for (const ParamVector& s : strategies) {
        const bool quality_ok = axis == 0 || ApproxGe(s.quality, current.quality);
        const bool cost_ok = axis == 1 || ApproxLe(s.cost, current.cost);
        const bool latency_ok = axis == 2 || ApproxLe(s.latency, current.latency);
        if (quality_ok && cost_ok && latency_ok) {
          coords.push_back(axis == 0 ? s.quality
                                     : (axis == 1 ? s.cost : s.latency));
        }
      }
      if (coords.size() < uk) continue;
      ParamVector candidate = current;
      if (axis == 0) {
        // k-th largest quality is the weakest lower bound covering k.
        std::nth_element(coords.begin(), coords.begin() + (uk - 1), coords.end(),
                         std::greater<>());
        candidate.quality = std::min(current.quality, coords[uk - 1]);
      } else {
        std::nth_element(coords.begin(), coords.begin() + (uk - 1), coords.end());
        double& field = axis == 1 ? candidate.cost : candidate.latency;
        field = std::max(field, coords[uk - 1]);
      }
      const double sq = candidate.SquaredDistanceTo(request);
      if (sq < best_sq) {
        best_sq = sq;
        best = candidate;
      }
    }
    if (std::isfinite(best_sq)) {
      return MakeResult(strategies, request, best, k);
    }

    // No single axis suffices: take the cheapest one-axis step to the next
    // blocking strategy coordinate and loop.
    double step_best_sq = kInf;
    ParamVector step_best = current;
    for (int axis = 0; axis < 3; ++axis) {
      double next = axis == 0 ? -kInf : kInf;
      bool found = false;
      for (const ParamVector& s : strategies) {
        if (axis == 0 && s.quality < current.quality - kEps) {
          next = std::max(next, s.quality);
          found = true;
        } else if (axis == 1 && s.cost > current.cost + kEps) {
          next = std::min(next, s.cost);
          found = true;
        } else if (axis == 2 && s.latency > current.latency + kEps) {
          next = std::min(next, s.latency);
          found = true;
        }
      }
      if (!found) continue;
      ParamVector candidate = current;
      (axis == 0 ? candidate.quality
                 : (axis == 1 ? candidate.cost : candidate.latency)) = next;
      const double sq = candidate.SquaredDistanceTo(request);
      if (sq < step_best_sq) {
        step_best_sq = sq;
        step_best = candidate;
      }
    }
    if (!std::isfinite(step_best_sq)) {
      // Nothing left to relax, yet coverage < k: impossible when |S| >= k.
      return Status::Internal("Baseline2 exhausted relaxations below k");
    }
    current = step_best;
  }
  return Status::Internal("Baseline2 failed to converge");
}

Result<AdparResult> AdparBaseline3(const std::vector<ParamVector>& strategies,
                                   const ParamVector& request, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const size_t n = strategies.size();
  const auto uk = static_cast<size_t>(k);
  if (n < uk) return Status::Infeasible("fewer strategies than k");

  // Index strategies as points in the smaller-is-better relaxation space.
  geo::RTree tree;
  for (size_t j = 0; j < n; ++j) {
    tree.Insert(ToRelaxSpace(strategies[j]), static_cast<int64_t>(j));
  }
  const geo::Point3 origin = ToRelaxSpace(request);

  // Scan node MBBs in tree order, exactly as the paper describes: return
  // the top corner of the first node holding exactly k points; when no such
  // node exists, fall back to the smallest node holding more than k (the
  // root always holds n >= k). Unlike ADPaR-Exact, the scan is oblivious to
  // the distance objective — which is why this baseline fares worst in the
  // paper's Figure 17.
  bool found_exact = false;
  ParamVector exact_candidate{};
  size_t best_over_count = n + 1;
  ParamVector over_candidate{};
  tree.VisitNodes([&](const geo::NodeSummary& node) {
    if (node.count < uk || found_exact) return;
    geo::Point3 corner = node.mbb.TopCorner();
    corner.x = std::max(corner.x, origin.x);
    corner.y = std::max(corner.y, origin.y);
    corner.z = std::max(corner.z, origin.z);
    const ParamVector candidate = FromRelaxSpace(corner);
    if (node.count == uk) {
      found_exact = true;
      exact_candidate = candidate;
    } else if (node.count < best_over_count) {
      best_over_count = node.count;
      over_candidate = candidate;
    }
  });

  return MakeResult(strategies, request,
                    found_exact ? exact_candidate : over_candidate, k);
}

}  // namespace stratrec::core
