// The Aggregator module of Figure 1: the pipeline that turns a batch of
// deployment requests into recommendations.
//
// Steps (Section 2.2): (1) estimate worker availability from the worker
// pool, (2) estimate per-strategy deployment parameters via the linear
// models, (3) compute workforce requirements, and (4) run the
// optimization-guided batch deployment.
#ifndef STRATREC_CORE_AGGREGATOR_H_
#define STRATREC_CORE_AGGREGATOR_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/availability.h"
#include "src/core/batch_scheduler.h"
#include "src/core/strategy.h"

namespace stratrec::core {

/// A platform's strategy catalog: `profiles[j]` models `strategies[j]`.
/// The unit every facade (Aggregator, StratRec, api::Service) is built from.
struct Catalog {
  std::vector<Strategy> strategies;
  std::vector<StrategyProfile> profiles;

  bool operator==(const Catalog&) const = default;
};

/// Everything the Aggregator derives for one batch.
struct AggregatorReport {
  /// Expected availability W consumed by the optimization.
  double availability = 0.0;
  /// Concrete per-strategy parameters estimated at W (Table 1 style),
  /// index-aligned with the strategy/profile lists.
  std::vector<ParamVector> strategy_params;
  /// The batch optimization outcome.
  BatchResult batch;

  bool operator==(const AggregatorReport&) const = default;
};

/// Owns the platform's strategy catalog and parameter models.
class Aggregator {
 public:
  /// `strategies` provides naming/metadata; `profiles[j]` models
  /// `strategies[j]`. Both must be index-aligned and equally sized.
  static Result<Aggregator> Create(std::vector<Strategy> strategies,
                                   std::vector<StrategyProfile> profiles);
  static Result<Aggregator> Create(Catalog catalog);

  const std::vector<Strategy>& strategies() const { return strategies_; }
  const std::vector<StrategyProfile>& profiles() const { return profiles_; }

  /// Runs the full pipeline at the expectation of `availability`.
  Result<AggregatorReport> Run(const std::vector<DeploymentRequest>& requests,
                               const AvailabilityModel& availability,
                               const BatchOptions& options,
                               BatchAlgorithm algorithm =
                                   BatchAlgorithm::kBatchStrat) const;

  /// Runs the pipeline at a known expected availability W in [0, 1].
  Result<AggregatorReport> RunAtAvailability(
      const std::vector<DeploymentRequest>& requests, double availability,
      const BatchOptions& options,
      BatchAlgorithm algorithm = BatchAlgorithm::kBatchStrat) const;

  /// Same pipeline with a pluggable batch solver (api-layer registry
  /// backends). `solver` must be non-null.
  Result<AggregatorReport> RunAtAvailability(
      const std::vector<DeploymentRequest>& requests, double availability,
      const BatchOptions& options, const BatchSolverFn& solver) const;

 private:
  Aggregator(std::vector<Strategy> strategies,
             std::vector<StrategyProfile> profiles)
      : strategies_(std::move(strategies)), profiles_(std::move(profiles)) {}

  std::vector<Strategy> strategies_;
  std::vector<StrategyProfile> profiles_;
};

}  // namespace stratrec::core

#endif  // STRATREC_CORE_AGGREGATOR_H_
