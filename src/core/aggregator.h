// The Aggregator module of Figure 1: the pipeline that turns a batch of
// deployment requests into recommendations.
//
// Steps (Section 2.2): (1) estimate worker availability from the worker
// pool, (2) estimate per-strategy deployment parameters via the linear
// models, (3) compute workforce requirements, and (4) run the
// optimization-guided batch deployment.
#ifndef STRATREC_CORE_AGGREGATOR_H_
#define STRATREC_CORE_AGGREGATOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/core/availability.h"
#include "src/core/batch_scheduler.h"
#include "src/core/catalog_index.h"
#include "src/core/strategy.h"

namespace stratrec::core {

/// A platform's strategy catalog: `profiles[j]` models `strategies[j]`.
/// The unit every facade (Aggregator, StratRec, api::Service) is built from.
struct Catalog {
  std::vector<Strategy> strategies;
  std::vector<StrategyProfile> profiles;

  bool operator==(const Catalog&) const = default;
};

/// Everything the Aggregator derives for one batch.
struct AggregatorReport {
  /// Expected availability W consumed by the optimization.
  double availability = 0.0;
  /// Concrete per-strategy parameters estimated at W (Table 1 style),
  /// index-aligned with the strategy/profile lists. Empty when the run was
  /// asked not to materialize them (see RunAtAvailability's
  /// `materialize_params`): re-estimating O(|S|) parameters per batch is
  /// pure waste for callers that never read them.
  std::vector<ParamVector> strategy_params;
  /// The batch optimization outcome.
  BatchResult batch;

  bool operator==(const AggregatorReport&) const = default;
};

/// Owns the platform's strategy catalog and parameter models.
class Aggregator {
 public:
  /// `strategies` provides naming/metadata; `profiles[j]` models
  /// `strategies[j]`. Both must be index-aligned and equally sized.
  static Result<Aggregator> Create(std::vector<Strategy> strategies,
                                   std::vector<StrategyProfile> profiles);
  static Result<Aggregator> Create(Catalog catalog);

  const std::vector<Strategy>& strategies() const { return strategies_; }
  const std::vector<StrategyProfile>& profiles() const { return profiles_; }

  /// Runs the full pipeline at the expectation of `availability`.
  Result<AggregatorReport> Run(const std::vector<DeploymentRequest>& requests,
                               const AvailabilityModel& availability,
                               const BatchOptions& options,
                               BatchAlgorithm algorithm =
                                   BatchAlgorithm::kBatchStrat) const;

  /// Runs the pipeline at a known expected availability W in [0, 1].
  Result<AggregatorReport> RunAtAvailability(
      const std::vector<DeploymentRequest>& requests, double availability,
      const BatchOptions& options,
      BatchAlgorithm algorithm = BatchAlgorithm::kBatchStrat) const;

  /// Same pipeline with a pluggable batch solver (api-layer registry
  /// backends). `solver` must be non-null.
  Result<AggregatorReport> RunAtAvailability(
      const std::vector<DeploymentRequest>& requests, double availability,
      const BatchOptions& options, const BatchSolverFn& solver) const;

  /// The full-control overload the StratRec / Service layers drive.
  /// `materialize_params` toggles the O(|S|) strategy_params block in the
  /// report; `snapshot`, when non-null, must have been built for exactly
  /// this catalog and `availability` (bit for bit) and then supplies the
  /// pre-estimated parameters instead of re-deriving them.
  Result<AggregatorReport> RunAtAvailability(
      const std::vector<DeploymentRequest>& requests, double availability,
      const BatchOptions& options, const BatchSolverFn& solver,
      bool materialize_params,
      const std::shared_ptr<const AvailabilitySnapshot>& snapshot) const;

  /// The catalog's SoA index, built on first use and shared by every run
  /// (and by copies of this aggregator). Thread-safe; `executor`, when
  /// non-null, parallelizes a build that happens to be triggered here.
  const CatalogIndex& index(Executor* executor = nullptr,
                            size_t grain = 4096) const;

  /// Nanoseconds the index build took; 0 while the index is unbuilt.
  uint64_t index_build_nanos() const;

  /// Builds an (uncached) availability snapshot over the index. The
  /// Service facade layers its availability-keyed LRU cache on top.
  Result<std::shared_ptr<const AvailabilitySnapshot>> BuildSnapshot(
      double availability, Executor* executor = nullptr,
      size_t grain = 4096) const;

 private:
  /// Lazily-built shared index: one build per catalog, shared across
  /// aggregator copies (the catalog they index is identical).
  /// `build_nanos` mirrors index.build_nanos() behind an atomic so the
  /// stats path can read it without synchronizing with a concurrent build.
  struct LazyIndex {
    std::once_flag once;
    CatalogIndex index;
    std::atomic<uint64_t> build_nanos{0};
  };

  Aggregator(std::vector<Strategy> strategies,
             std::vector<StrategyProfile> profiles)
      : strategies_(std::move(strategies)),
        profiles_(std::move(profiles)),
        lazy_index_(std::make_shared<LazyIndex>()) {}

  std::vector<Strategy> strategies_;
  std::vector<StrategyProfile> profiles_;
  std::shared_ptr<LazyIndex> lazy_index_;
};

}  // namespace stratrec::core

#endif  // STRATREC_CORE_AGGREGATOR_H_
