#include "src/core/online.h"

#include <algorithm>

#include "src/common/float_compare.h"

namespace stratrec::core {

Result<OnlineScheduler> OnlineScheduler::Create(
    std::vector<StrategyProfile> profiles, double availability,
    OnlineOptions options) {
  if (profiles.empty()) {
    return Status::InvalidArgument("scheduler needs at least one strategy");
  }
  if (availability < 0.0 || availability > 1.0) {
    return Status::InvalidArgument("availability must lie in [0, 1]");
  }
  return OnlineScheduler(std::move(profiles), availability,
                         std::move(options));
}

Result<std::pair<double, std::vector<size_t>>> OnlineScheduler::Price(
    const DeploymentRequest& request) const {
  STRATREC_RETURN_NOT_OK(ValidateRequest(request));
  const WorkforceMatrix matrix =
      WorkforceMatrix::Compute({request}, profiles_, options_.batch.policy);
  auto requirement =
      matrix.AggregateRequirement(0, request.k, options_.batch.aggregation);
  if (!requirement.ok()) return requirement.status();
  auto strategies = matrix.KBestStrategies(0, request.k);
  if (!strategies.ok()) return strategies.status();
  return std::make_pair(*requirement, std::move(*strategies));
}

double OnlineScheduler::Value(const DeploymentRequest& request) const {
  return options_.batch.objective == Objective::kThroughput ? 1.0
                                                            : request.Payoff();
}

void OnlineScheduler::Admit(const DeploymentRequest& request, double workforce,
                            double value) {
  used_ += workforce;
  active_.emplace(request.id, Entry{request, workforce, value});
  stats_.admitted += 1;
  stats_.objective += value;
  NoteUtilization();
}

void OnlineScheduler::NoteUtilization() {
  if (availability_ <= 0.0) return;
  stats_.peak_utilization =
      std::max(stats_.peak_utilization, used_ / availability_);
}

Result<AdmissionDecision> OnlineScheduler::OnArrival(
    const DeploymentRequest& request) {
  stats_.arrivals += 1;
  if (active_.count(request.id) > 0) {
    return Status::InvalidArgument("duplicate active request id: " +
                                   request.id);
  }
  auto priced = Price(request);
  AdmissionDecision decision;
  if (!priced.ok()) {
    stats_.rejected += 1;
    decision.kind = AdmissionDecision::Kind::kRejected;
    return decision;
  }
  const double workforce = priced->first;
  if (ApproxLe(used_ + workforce, availability_)) {
    const double value = Value(request);
    Admit(request, workforce, value);
    decision.kind = AdmissionDecision::Kind::kAdmitted;
    decision.strategies = std::move(priced->second);
    decision.workforce = workforce;
    return decision;
  }
  if (pending_.size() < options_.max_pending) {
    pending_.push_back(Entry{request, workforce, Value(request)});
    stats_.queued += 1;
    decision.kind = AdmissionDecision::Kind::kQueued;
    decision.workforce = workforce;
    return decision;
  }
  stats_.rejected += 1;
  decision.kind = AdmissionDecision::Kind::kRejected;
  return decision;
}

void OnlineScheduler::DrainPending() {
  if (!options_.readmit_on_release || pending_.empty()) return;
  // Rolling BatchStrat: re-admit pending requests in density order while
  // they fit the freed capacity.
  std::vector<Entry> entries(pending_.begin(), pending_.end());
  pending_.clear();
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     const double da = a.workforce > 0
                                           ? a.value / a.workforce
                                           : std::numeric_limits<double>::infinity();
                     const double db = b.workforce > 0
                                           ? b.value / b.workforce
                                           : std::numeric_limits<double>::infinity();
                     return da > db;
                   });
  for (auto& entry : entries) {
    if (active_.count(entry.request.id) == 0 &&
        ApproxLe(used_ + entry.workforce, availability_)) {
      Admit(entry.request, entry.workforce, entry.value);
    } else {
      pending_.push_back(std::move(entry));
    }
  }
}

Status OnlineScheduler::OnRevocation(const std::string& request_id) {
  auto it = active_.find(request_id);
  if (it != active_.end()) {
    used_ -= it->second.workforce;
    stats_.objective -= it->second.value;
    stats_.revoked += 1;
    active_.erase(it);
    DrainPending();
    return Status::OK();
  }
  for (auto pending_it = pending_.begin(); pending_it != pending_.end();
       ++pending_it) {
    if (pending_it->request.id == request_id) {
      pending_.erase(pending_it);
      stats_.revoked += 1;
      return Status::OK();
    }
  }
  return Status::NotFound("unknown request id: " + request_id);
}

Status OnlineScheduler::OnCompletion(const std::string& request_id) {
  auto it = active_.find(request_id);
  if (it == active_.end()) {
    return Status::NotFound("request not active: " + request_id);
  }
  used_ -= it->second.workforce;
  stats_.completed += 1;
  active_.erase(it);
  DrainPending();
  return Status::OK();
}

Status OnlineScheduler::SetAvailability(double availability) {
  if (availability < 0.0 || availability > 1.0) {
    return Status::InvalidArgument("availability must lie in [0, 1]");
  }
  availability_ = availability;
  NoteUtilization();
  if (availability_ > used_) DrainPending();
  return Status::OK();
}

double OnlineScheduler::RemainingCapacity() const {
  return std::max(0.0, availability_ - used_);
}

}  // namespace stratrec::core
