// Generic 0/1-knapsack selection machinery shared by the batch schedulers
// (Section 3.3) and the multi-objective extension. The paper's reduction
// (Theorem 1, Figure 4) maps deployment requests to knapsack items: weight =
// aggregated workforce requirement, value = the platform's objective.
#ifndef STRATREC_CORE_KNAPSACK_H_
#define STRATREC_CORE_KNAPSACK_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace stratrec::core {

/// One selectable item.
struct KnapsackItem {
  size_t index = 0;   ///< caller-defined identity
  double weight = 0.0;
  double value = 0.0;
  /// Optional secondary key used instead of `value` for the greedy ordering
  /// (BaselineG ranks by pay-off density regardless of the objective).
  double sort_value = 0.0;
};

/// Knobs of the greedy solver.
struct GreedyKnapsackOptions {
  /// Return max(greedy set, best single item) — the classic trick that
  /// turns density greedy into a 1/2-approximation (Theorem 3).
  bool single_item_guard = true;
  /// Rank by sort_value/weight instead of value/weight.
  bool use_sort_value = false;
};

/// Density greedy with first-fit scanning. Deterministic: ties break by
/// smaller weight, then smaller index. Zero-weight items have infinite
/// density and are always taken first.
std::vector<KnapsackItem> GreedyKnapsack(std::vector<KnapsackItem> items,
                                         double capacity,
                                         const GreedyKnapsackOptions& options);

/// Exact exponential enumeration; fails with kOutOfRange above `max_items`.
Result<std::vector<KnapsackItem>> BruteForceKnapsack(
    const std::vector<KnapsackItem>& items, double capacity,
    size_t max_items = 25);

/// Total value of a selection.
double TotalValue(const std::vector<KnapsackItem>& items);

/// Total weight of a selection.
double TotalWeight(const std::vector<KnapsackItem>& items);

}  // namespace stratrec::core

#endif  // STRATREC_CORE_KNAPSACK_H_
