#include "src/core/availability.h"

namespace stratrec::core {

Result<AvailabilityModel> AvailabilityModel::FromPmf(
    std::vector<stats::PmfAtom> atoms) {
  for (const auto& atom : atoms) {
    if (atom.value < 0.0 || atom.value > 1.0) {
      return Status::InvalidArgument(
          "availability fractions must lie in [0, 1]");
    }
  }
  auto pmf = stats::EmpiricalPmf::Create(std::move(atoms));
  if (!pmf.ok()) return pmf.status();
  return AvailabilityModel(std::move(*pmf));
}

Result<AvailabilityModel> AvailabilityModel::FromSamples(
    const std::vector<double>& fractions) {
  for (double f : fractions) {
    if (f < 0.0 || f > 1.0) {
      return Status::InvalidArgument(
          "availability fractions must lie in [0, 1]");
    }
  }
  auto pmf = stats::EmpiricalPmf::FromSamples(fractions);
  if (!pmf.ok()) return pmf.status();
  return AvailabilityModel(std::move(*pmf));
}

}  // namespace stratrec::core
