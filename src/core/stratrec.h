// StratRec: the end-to-end optimization-driven middle layer (Figure 1).
//
// ProcessBatch() runs the Aggregator over a batch of deployment requests;
// every request the batch optimizer could not serve is forwarded to ADPaR,
// which recommends the closest alternative parameters for which k strategies
// exist. This mirrors the paper's Section 2.2 walkthrough: with Example 1's
// data, d3 is served with {s2, s3, s4} and d1/d2 receive alternatives.
#ifndef STRATREC_CORE_STRATREC_H_
#define STRATREC_CORE_STRATREC_H_

#include <vector>

#include "src/core/adpar.h"
#include "src/core/aggregator.h"

namespace stratrec::core {

/// Configuration of one ProcessBatch() run.
struct StratRecOptions {
  BatchOptions batch;
  BatchAlgorithm algorithm = BatchAlgorithm::kBatchStrat;
  /// When false, unsatisfied requests are reported without alternatives.
  bool recommend_alternatives = true;
  /// Pluggable backends (api-layer registry). When set, `batch_solver`
  /// overrides `algorithm` and `adpar_solver` overrides the default
  /// AdparExact for alternative recommendation.
  BatchSolverFn batch_solver;
  AdparSolverFn adpar_solver;
  /// Force report.strategy_params even when nothing in the run reads them.
  /// By default the O(|S|) block is materialized only when
  /// `recommend_alternatives` is on (the alternatives refer into it);
  /// batch-only runs skip it entirely.
  bool materialize_params = false;
  /// Reuse of per-availability state across batches: when set (and built
  /// for this catalog at exactly the run's W), strategy parameters come
  /// from the snapshot's shared block, and — unless `adpar_solver`
  /// overrides it — unsatisfied requests are solved by the index-accepting
  /// AdparExact overload, which serves its sorts and candidate pruning
  /// from the snapshot. The Service facade passes its cached snapshot
  /// here; results are bit-identical with or without one.
  std::shared_ptr<const AvailabilitySnapshot> snapshot;
};

/// ADPaR's output for one unsatisfied request.
///
/// A zero-distance alternative is meaningful: it signals the request was
/// *capacity-blocked* — k suitable strategies exist at the current
/// availability, but the batch optimizer spent the workforce on other
/// requests — rather than parameter-infeasible. Requesters can resubmit the
/// unchanged parameters in a later batch.
struct AlternativeRecommendation {
  size_t request_index = 0;
  AdparResult result;

  bool operator==(const AlternativeRecommendation&) const = default;
};

/// Everything StratRec returns for a batch.
struct StratRecReport {
  /// The Aggregator stage (availability, strategy params, batch outcome).
  AggregatorReport aggregator;
  /// Alternatives for the requests the batch stage could not serve.
  std::vector<AlternativeRecommendation> alternatives;
  /// Requests ADPaR itself could not help (k exceeds the catalog size).
  std::vector<size_t> adpar_failures;

  bool operator==(const StratRecReport&) const = default;
};

/// The middle layer. Construct once per (platform, task type) with the
/// strategy catalog; run per incoming batch.
class StratRec {
 public:
  /// See Aggregator::Create for the alignment requirements.
  static Result<StratRec> Create(std::vector<Strategy> strategies,
                                 std::vector<StrategyProfile> profiles);
  static Result<StratRec> Create(Catalog catalog);

  const Aggregator& aggregator() const { return aggregator_; }

  /// Full pipeline with availability estimated from a distribution.
  Result<StratRecReport> ProcessBatch(
      const std::vector<DeploymentRequest>& requests,
      const AvailabilityModel& availability,
      const StratRecOptions& options = {}) const;

  /// Full pipeline at a known expected availability W.
  Result<StratRecReport> ProcessBatchAtAvailability(
      const std::vector<DeploymentRequest>& requests, double availability,
      const StratRecOptions& options = {}) const;

 private:
  explicit StratRec(Aggregator aggregator)
      : aggregator_(std::move(aggregator)) {}
  Aggregator aggregator_;
};

}  // namespace stratrec::core

#endif  // STRATREC_CORE_STRATREC_H_
