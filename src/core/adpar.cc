#include "src/core/adpar.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/float_compare.h"
#include "src/core/catalog_index.h"
#include "src/geometry/k_smallest.h"

namespace stratrec::core {
namespace {

void FillTraceSteps(const std::vector<ParamVector>& strategies,
                    const ParamVector& request, AdparTrace* trace) {
  trace->relaxations.clear();
  trace->sorted.clear();
  trace->candidates.clear();
  for (size_t j = 0; j < strategies.size(); ++j) {
    AdparTrace::Relaxation rel;
    rel.strategy = j;
    // Quality needs lowering when the strategy quality is below the bound;
    // cost/latency need raising when the strategy exceeds them.
    rel.by_axis[static_cast<int>(ParamAxis::kQuality)] =
        std::max(0.0, request.quality - strategies[j].quality);
    rel.by_axis[static_cast<int>(ParamAxis::kCost)] =
        std::max(0.0, strategies[j].cost - request.cost);
    rel.by_axis[static_cast<int>(ParamAxis::kLatency)] =
        std::max(0.0, strategies[j].latency - request.latency);
    trace->relaxations.push_back(rel);
  }
  for (const auto& rel : trace->relaxations) {
    for (int axis = 0; axis < 3; ++axis) {
      AdparTrace::SortedEntry entry;
      entry.relaxation = rel.by_axis[axis];
      entry.strategy = rel.strategy;
      entry.axis = static_cast<ParamAxis>(axis);
      trace->sorted.push_back(entry);
    }
  }
  std::stable_sort(trace->sorted.begin(), trace->sorted.end(),
                   [](const AdparTrace::SortedEntry& a,
                      const AdparTrace::SortedEntry& b) {
                     return a.relaxation < b.relaxation;
                   });
}

/// The two-level sweep over a candidate subset, reading *values* only:
/// `cost_sorted` holds the candidate parameter vectors ascending by cost and
/// `quality_desc` their qualities descending — permuted contiguous copies of
/// the ordering (AdparOrderings::by_cost_params / by_quality_desc_quality
/// on the indexed path, built on the fly on the classic one). The sweep
/// re-scans these arrays per quality candidate, so streaming contiguous
/// memory instead of gathering through the index permutation is what makes
/// large |S| affordable; the float operations per evaluated candidate are
/// literally the same either way, which is what keeps the indexed path
/// bit-identical to the unindexed one.
///
/// Returns the best tight alternative, or +inf squared distance when no
/// candidate covers k subset strategies.
struct SweepBest {
  double squared = std::numeric_limits<double>::infinity();
  ParamVector alternative{};
};

SweepBest SweepValues(const std::vector<ParamVector>& cost_sorted,
                      const std::vector<double>& quality_desc,
                      const ParamVector& request, size_t uk,
                      AdparTrace* trace) {
  // Candidate quality thresholds: the original bound plus every strictly
  // weaker subset quality (tightness — Lemma 1/2), descending and deduped.
  std::vector<double> quality_candidates = {request.quality};
  quality_candidates.reserve(quality_desc.size() + 1);
  for (double q : quality_desc) {
    if (q >= request.quality) continue;
    if (q != quality_candidates.back()) quality_candidates.push_back(q);
  }

  SweepBest best;
  for (double q : quality_candidates) {
    const double dq = q - request.quality;  // <= 0
    const double qd2 = dq * dq;
    // Candidates are sorted descending, so qd2 grows monotonically; once it
    // alone exceeds the incumbent, no later candidate can win.
    if (qd2 >= best.squared) break;

    // Cost sweep over quality-eligible strategies in ascending cost order.
    // A bounded max-heap yields the k-th smallest latency among admitted
    // strategies — the tight latency threshold for the current cost bound.
    geo::KSmallestTracker latencies(uk);
    size_t cursor = 0;
    auto admit_up_to = [&](double cost_bound) {
      while (cursor < cost_sorted.size()) {
        const ParamVector& s = cost_sorted[cursor];
        if (s.cost > cost_bound + kEps) break;
        if (ApproxGe(s.quality, q)) latencies.Push(s.latency);
        ++cursor;
      }
    };

    // Candidate cost thresholds: the original bound plus every strictly
    // larger subset cost (ascending; the sweep only ever relaxes).
    std::vector<double> cost_candidates = {request.cost};
    for (const ParamVector& s : cost_sorted) {
      if (s.cost > request.cost && ApproxGe(s.quality, q)) {
        cost_candidates.push_back(s.cost);
      }
    }

    for (double c : cost_candidates) {
      admit_up_to(c);
      if (!latencies.Full()) continue;
      const double tight_latency =
          std::max(latencies.KthSmallest(), request.latency);
      const double dc = c - request.cost;
      const double dl = tight_latency - request.latency;
      const double sq = qd2 + dc * dc + dl * dl;
      if (trace != nullptr) {
        trace->candidates.push_back({ParamVector{q, c, tight_latency}, sq});
      }
      if (sq < best.squared) {
        best.squared = sq;
        best.alternative = ParamVector{q, c, tight_latency};
        // A zero-distance alternative (the request is capacity-blocked,
        // not parameter-infeasible) is unbeatable: squared distances are
        // non-negative and later candidates only replace on strict
        // improvement, so cutting the sweep here cannot change the result.
        // Trace-enabled calls keep sweeping — the paper-style trace records
        // every evaluated candidate.
        if (best.squared == 0.0 && trace == nullptr) return best;
      }
    }
  }
  return best;
}

/// Builds the permuted value arrays SweepValues wants from an index-based
/// ordering pair — one O(n) gather, paid once per call instead of once per
/// quality candidate inside the sweep. The snapshot path skips even this
/// (the arrays are cached on AdparOrderings / PrunedOrderings).
SweepBest SweepOrderings(const std::vector<ParamVector>& strategies,
                         const std::vector<size_t>& by_cost,
                         const std::vector<size_t>& by_quality_desc,
                         const ParamVector& request, size_t uk,
                         AdparTrace* trace) {
  std::vector<ParamVector> cost_sorted;
  cost_sorted.reserve(by_cost.size());
  for (size_t j : by_cost) cost_sorted.push_back(strategies[j]);
  std::vector<double> quality_desc;
  quality_desc.reserve(by_quality_desc.size());
  for (size_t j : by_quality_desc) {
    quality_desc.push_back(strategies[j].quality);
  }
  return SweepValues(cost_sorted, quality_desc, request, uk, trace);
}

Result<AdparResult> FinishSweep(const std::vector<ParamVector>& strategies,
                                const SweepBest& best, int k) {
  if (!std::isfinite(best.squared)) {
    return Status::Internal("sweep found no covering alternative");
  }
  AdparResult result;
  result.alternative = best.alternative;
  result.squared_distance = best.squared;
  result.distance = std::sqrt(best.squared);
  // Covered strategies are always re-selected against the full list, so
  // subset sweeps report the same deterministic k-set as the classic one.
  auto covered = SelectCoveredStrategies(strategies, best.alternative, k);
  if (!covered.ok()) return covered.status();
  result.strategies = std::move(*covered);
  return result;
}

}  // namespace

Result<std::vector<size_t>> SelectCoveredStrategies(
    const std::vector<ParamVector>& strategies, const ParamVector& d_prime,
    int k) {
  std::vector<size_t> covered;
  for (size_t j = 0; j < strategies.size(); ++j) {
    if (Satisfies(strategies[j], d_prime)) covered.push_back(j);
  }
  if (covered.size() < static_cast<size_t>(k)) {
    return Status::Internal("alternative does not cover k strategies");
  }
  // Only the k cheapest survive; the comparator is a total order (index
  // tiebreak), so the k-prefix partial_sort yields is exactly the prefix a
  // full sort would — at O(n log k) instead of O(n log n) over a covered
  // set that can be most of the catalog.
  std::partial_sort(covered.begin(),
                    covered.begin() + static_cast<ptrdiff_t>(k),
                    covered.end(), [&](size_t a, size_t b) {
                      const ParamVector& pa = strategies[a];
                      const ParamVector& pb = strategies[b];
                      if (pa.cost != pb.cost) return pa.cost < pb.cost;
                      if (pa.latency != pb.latency) {
                        return pa.latency < pb.latency;
                      }
                      if (pa.quality != pb.quality) {
                        return pa.quality > pb.quality;
                      }
                      return a < b;
                    });
  covered.resize(static_cast<size_t>(k));
  return covered;
}

Result<AdparResult> AdparExact(const std::vector<ParamVector>& strategies,
                               const ParamVector& request, int k,
                               AdparTrace* trace) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (strategies.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer strategies than k");
  }
  if (trace != nullptr) FillTraceSteps(strategies, request, trace);

  const size_t n = strategies.size();

  // Per-request orderings (ties by index, which never affects the outcome:
  // equal keys contribute identical candidate values either way). The
  // index-accepting overload serves these from the availability snapshot.
  std::vector<size_t> by_cost(n);
  std::iota(by_cost.begin(), by_cost.end(), size_t{0});
  std::sort(by_cost.begin(), by_cost.end(), [&](size_t a, size_t b) {
    if (strategies[a].cost != strategies[b].cost) {
      return strategies[a].cost < strategies[b].cost;
    }
    return a < b;
  });
  std::vector<size_t> by_quality_desc(n);
  std::iota(by_quality_desc.begin(), by_quality_desc.end(), size_t{0});
  std::sort(by_quality_desc.begin(), by_quality_desc.end(),
            [&](size_t a, size_t b) {
              if (strategies[a].quality != strategies[b].quality) {
                return strategies[a].quality > strategies[b].quality;
              }
              return a < b;
            });

  const SweepBest best =
      SweepOrderings(strategies, by_cost, by_quality_desc, request,
                     static_cast<size_t>(k), trace);
  return FinishSweep(strategies, best, k);
}

Result<AdparResult> AdparExactOverOrderings(
    const std::vector<ParamVector>& strategies,
    const std::vector<size_t>& by_cost,
    const std::vector<size_t>& by_quality_desc, const ParamVector& request,
    int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (strategies.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer strategies than k");
  }
  const SweepBest best =
      SweepOrderings(strategies, by_cost, by_quality_desc, request,
                     static_cast<size_t>(k), /*trace=*/nullptr);
  return FinishSweep(strategies, best, k);
}

Result<AdparResult> AdparExact(const AvailabilitySnapshot& snapshot,
                               const ParamVector& request, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const std::vector<ParamVector>& strategies = snapshot.params();
  if (strategies.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer strategies than k");
  }
  const AdparOrderings& orderings = snapshot.orderings();

  // Candidate pruning: a strategy dominated (in relaxation space) by >= k
  // others can be swapped out of any covering k-subset for a dominator
  // without increasing the tight alternative's distance (skyline.h), so the
  // sweep may skip it. The per-k filtered orderings are computed once and
  // cached on the snapshot; null means pruning is a no-op for this k.
  const auto pruned = snapshot.PrunedFor(k);
  const std::vector<ParamVector>& cost_sorted =
      pruned != nullptr ? pruned->by_cost_params : orderings.by_cost_params;
  const std::vector<double>& quality_desc =
      pruned != nullptr ? pruned->by_quality_desc_quality
                        : orderings.by_quality_desc_quality;

  // The snapshot caches the permuted value arrays, so the sweep starts
  // without the per-call gather AdparExactOverOrderings pays.
  const SweepBest best = SweepValues(cost_sorted, quality_desc, request,
                                     static_cast<size_t>(k),
                                     /*trace=*/nullptr);
  return FinishSweep(strategies, best, k);
}

}  // namespace stratrec::core
