#include "src/core/adpar.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/float_compare.h"
#include "src/geometry/k_smallest.h"

namespace stratrec::core {
namespace {

void FillTraceSteps(const std::vector<ParamVector>& strategies,
                    const ParamVector& request, AdparTrace* trace) {
  trace->relaxations.clear();
  trace->sorted.clear();
  trace->candidates.clear();
  for (size_t j = 0; j < strategies.size(); ++j) {
    AdparTrace::Relaxation rel;
    rel.strategy = j;
    // Quality needs lowering when the strategy quality is below the bound;
    // cost/latency need raising when the strategy exceeds them.
    rel.by_axis[static_cast<int>(ParamAxis::kQuality)] =
        std::max(0.0, request.quality - strategies[j].quality);
    rel.by_axis[static_cast<int>(ParamAxis::kCost)] =
        std::max(0.0, strategies[j].cost - request.cost);
    rel.by_axis[static_cast<int>(ParamAxis::kLatency)] =
        std::max(0.0, strategies[j].latency - request.latency);
    trace->relaxations.push_back(rel);
  }
  for (const auto& rel : trace->relaxations) {
    for (int axis = 0; axis < 3; ++axis) {
      AdparTrace::SortedEntry entry;
      entry.relaxation = rel.by_axis[axis];
      entry.strategy = rel.strategy;
      entry.axis = static_cast<ParamAxis>(axis);
      trace->sorted.push_back(entry);
    }
  }
  std::stable_sort(trace->sorted.begin(), trace->sorted.end(),
                   [](const AdparTrace::SortedEntry& a,
                      const AdparTrace::SortedEntry& b) {
                     return a.relaxation < b.relaxation;
                   });
}

}  // namespace

Result<std::vector<size_t>> SelectCoveredStrategies(
    const std::vector<ParamVector>& strategies, const ParamVector& d_prime,
    int k) {
  std::vector<size_t> covered;
  for (size_t j = 0; j < strategies.size(); ++j) {
    if (Satisfies(strategies[j], d_prime)) covered.push_back(j);
  }
  if (covered.size() < static_cast<size_t>(k)) {
    return Status::Internal("alternative does not cover k strategies");
  }
  std::sort(covered.begin(), covered.end(), [&](size_t a, size_t b) {
    const ParamVector& pa = strategies[a];
    const ParamVector& pb = strategies[b];
    if (pa.cost != pb.cost) return pa.cost < pb.cost;
    if (pa.latency != pb.latency) return pa.latency < pb.latency;
    if (pa.quality != pb.quality) return pa.quality > pb.quality;
    return a < b;
  });
  covered.resize(static_cast<size_t>(k));
  return covered;
}

Result<AdparResult> AdparExact(const std::vector<ParamVector>& strategies,
                               const ParamVector& request, int k,
                               AdparTrace* trace) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (strategies.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer strategies than k");
  }
  if (trace != nullptr) FillTraceSteps(strategies, request, trace);

  const size_t n = strategies.size();
  const auto uk = static_cast<size_t>(k);

  // Strategies sorted by cost once; every per-quality sweep walks this order.
  std::vector<size_t> by_cost(n);
  for (size_t j = 0; j < n; ++j) by_cost[j] = j;
  std::sort(by_cost.begin(), by_cost.end(), [&](size_t a, size_t b) {
    return strategies[a].cost < strategies[b].cost;
  });

  // Candidate quality thresholds: the original bound plus every strictly
  // weaker strategy quality (tightness — Lemma 1/2).
  std::vector<double> quality_candidates = {request.quality};
  for (const ParamVector& s : strategies) {
    if (s.quality < request.quality) quality_candidates.push_back(s.quality);
  }
  std::sort(quality_candidates.begin(), quality_candidates.end(),
            std::greater<>());
  quality_candidates.erase(
      std::unique(quality_candidates.begin(), quality_candidates.end()),
      quality_candidates.end());

  double best_sq = std::numeric_limits<double>::infinity();
  ParamVector best{};

  for (double q : quality_candidates) {
    const double dq = q - request.quality;  // <= 0
    const double qd2 = dq * dq;
    // Candidates are sorted descending, so qd2 grows monotonically; once it
    // alone exceeds the incumbent, no later candidate can win.
    if (qd2 >= best_sq) break;

    // Cost sweep over quality-eligible strategies in ascending cost order.
    // A bounded max-heap yields the k-th smallest latency among admitted
    // strategies — the tight latency threshold for the current cost bound.
    geo::KSmallestTracker latencies(uk);
    size_t cursor = 0;
    auto admit_up_to = [&](double cost_bound) {
      while (cursor < n) {
        const ParamVector& s = strategies[by_cost[cursor]];
        if (s.cost > cost_bound + kEps) break;
        if (ApproxGe(s.quality, q)) latencies.Push(s.latency);
        ++cursor;
      }
    };

    // Candidate cost thresholds: the original bound plus every strictly
    // larger strategy cost (ascending; the sweep only ever relaxes).
    std::vector<double> cost_candidates = {request.cost};
    for (size_t j : by_cost) {
      const ParamVector& s = strategies[j];
      if (s.cost > request.cost && ApproxGe(s.quality, q)) {
        cost_candidates.push_back(s.cost);
      }
    }

    for (double c : cost_candidates) {
      admit_up_to(c);
      if (!latencies.Full()) continue;
      const double tight_latency =
          std::max(latencies.KthSmallest(), request.latency);
      const double dc = c - request.cost;
      const double dl = tight_latency - request.latency;
      const double sq = qd2 + dc * dc + dl * dl;
      if (trace != nullptr) {
        trace->candidates.push_back({ParamVector{q, c, tight_latency}, sq});
      }
      if (sq < best_sq) {
        best_sq = sq;
        best = ParamVector{q, c, tight_latency};
      }
    }
  }

  if (!std::isfinite(best_sq)) {
    return Status::Internal("sweep found no covering alternative");
  }

  AdparResult result;
  result.alternative = best;
  result.squared_distance = best_sq;
  result.distance = std::sqrt(best_sq);
  auto covered = SelectCoveredStrategies(strategies, best, k);
  if (!covered.ok()) return covered.status();
  result.strategies = std::move(*covered);
  return result;
}

}  // namespace stratrec::core
