// Linear deployment-strategy parameter models (paper Equation 4).
//
// For a (strategy, deployment) pair, each parameter is modeled as a linear
// function of worker availability w:  param(w) = alpha * w + beta. Quality
// and cost typically increase with availability (alpha > 0), latency
// decreases (alpha < 0) — Table 6 of the paper reports fitted coefficients of
// exactly this form. The inverse direction ("what workforce achieves this
// threshold?") powers the workforce-requirement computation of Section 3.2.
#ifndef STRATREC_CORE_LINEAR_MODEL_H_
#define STRATREC_CORE_LINEAR_MODEL_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"
#include "src/stats/linear_regression.h"

namespace stratrec::core {

/// param(w) = alpha * w + beta.
struct LinearModel {
  double alpha = 0.0;
  double beta = 0.0;

  /// Evaluates the raw line (no clamping).
  double Eval(double w) const { return alpha * w + beta; }

  /// Evaluates and clamps into [0, 1] (normalized parameter space).
  double EvalClamped(double w) const { return ClampUnit(Eval(w)); }

  /// Solves target = alpha * w + beta for w. Fails when alpha == 0.
  Result<double> SolveForWorkforce(double target) const;

  bool operator==(const LinearModel&) const = default;
};

/// The three per-parameter models of one (strategy, task-type) pair.
struct StrategyProfile {
  LinearModel quality;
  LinearModel cost;
  LinearModel latency;

  /// Estimated deployment parameters at availability `w` (Equation 4),
  /// clamped into the normalized space.
  ParamVector EstimateParams(double w) const {
    return ParamVector{quality.EvalClamped(w), cost.EvalClamped(w),
                       latency.EvalClamped(w)};
  }

  bool operator==(const StrategyProfile&) const = default;
};

/// One historical observation used for model fitting: a deployment executed
/// at a known availability with measured outcomes.
struct Observation {
  double availability = 0.0;
  ParamVector outcome;
};

/// A fitted profile together with the per-parameter regression diagnostics
/// (confidence intervals for the Table 6 experiment).
struct FittedProfile {
  StrategyProfile profile;
  stats::RegressionFit quality_fit;
  stats::RegressionFit cost_fit;
  stats::RegressionFit latency_fit;
};

/// Fits the three linear models by OLS from historical observations.
/// Requires >= 2 observations with non-constant availability.
Result<FittedProfile> FitProfile(const std::vector<Observation>& observations);

}  // namespace stratrec::core

#endif  // STRATREC_CORE_LINEAR_MODEL_H_
