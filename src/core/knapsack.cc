#include "src/core/knapsack.h"

#include <algorithm>
#include <limits>

#include "src/common/float_compare.h"

namespace stratrec::core {

std::vector<KnapsackItem> GreedyKnapsack(std::vector<KnapsackItem> items,
                                         double capacity,
                                         const GreedyKnapsackOptions& options) {
  const bool use_sort_value = options.use_sort_value;
  std::sort(items.begin(), items.end(),
            [use_sort_value](const KnapsackItem& a, const KnapsackItem& b) {
              const double ka = use_sort_value ? a.sort_value : a.value;
              const double kb = use_sort_value ? b.sort_value : b.value;
              const double da =
                  a.weight > 0 ? ka / a.weight
                               : std::numeric_limits<double>::infinity();
              const double db =
                  b.weight > 0 ? kb / b.weight
                               : std::numeric_limits<double>::infinity();
              if (da != db) return da > db;
              if (a.weight != b.weight) return a.weight < b.weight;
              return a.index < b.index;
            });

  std::vector<KnapsackItem> chosen;
  double used = 0.0;
  double chosen_value = 0.0;
  for (const KnapsackItem& item : items) {
    if (ApproxLe(used + item.weight, capacity)) {
      chosen.push_back(item);
      used += item.weight;
      chosen_value += item.value;
    }
  }

  if (options.single_item_guard) {
    const KnapsackItem* best_single = nullptr;
    for (const KnapsackItem& item : items) {
      if (!ApproxLe(item.weight, capacity)) continue;
      if (best_single == nullptr || item.value > best_single->value) {
        best_single = &item;
      }
    }
    if (best_single != nullptr && best_single->value > chosen_value) {
      return {*best_single};
    }
  }
  return chosen;
}

Result<std::vector<KnapsackItem>> BruteForceKnapsack(
    const std::vector<KnapsackItem>& items, double capacity,
    size_t max_items) {
  if (items.size() > max_items || items.size() > 63) {
    return Status::OutOfRange("brute-force knapsack item limit exceeded");
  }
  const size_t n = items.size();
  uint64_t best_mask = 0;
  double best_value = 0.0;
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    double weight = 0.0, value = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) {
        weight += items[i].weight;
        value += items[i].value;
      }
    }
    if (!ApproxLe(weight, capacity)) continue;
    if (value > best_value) {
      best_value = value;
      best_mask = mask;
    }
  }
  std::vector<KnapsackItem> chosen;
  for (size_t i = 0; i < n; ++i) {
    if (best_mask & (1ull << i)) chosen.push_back(items[i]);
  }
  return chosen;
}

double TotalValue(const std::vector<KnapsackItem>& items) {
  double total = 0.0;
  for (const KnapsackItem& item : items) total += item.value;
  return total;
}

double TotalWeight(const std::vector<KnapsackItem>& items) {
  double total = 0.0;
  for (const KnapsackItem& item : items) total += item.weight;
  return total;
}

}  // namespace stratrec::core
