#include "src/core/knapsack.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "src/common/float_compare.h"

namespace stratrec::core {

std::vector<KnapsackItem> GreedyKnapsack(std::vector<KnapsackItem> items,
                                         double capacity,
                                         const GreedyKnapsackOptions& options) {
  const bool use_sort_value = options.use_sort_value;
  std::sort(items.begin(), items.end(),
            [use_sort_value](const KnapsackItem& a, const KnapsackItem& b) {
              const double ka = use_sort_value ? a.sort_value : a.value;
              const double kb = use_sort_value ? b.sort_value : b.value;
              const double da =
                  a.weight > 0 ? ka / a.weight
                               : std::numeric_limits<double>::infinity();
              const double db =
                  b.weight > 0 ? kb / b.weight
                               : std::numeric_limits<double>::infinity();
              if (da != db) return da > db;
              if (a.weight != b.weight) return a.weight < b.weight;
              return a.index < b.index;
            });

  std::vector<KnapsackItem> chosen;
  chosen.reserve(items.size());
  double used = 0.0;
  double chosen_value = 0.0;
  for (const KnapsackItem& item : items) {
    if (ApproxLe(used + item.weight, capacity)) {
      chosen.push_back(item);
      used += item.weight;
      chosen_value += item.value;
    }
  }

  if (options.single_item_guard) {
    const KnapsackItem* best_single = nullptr;
    for (const KnapsackItem& item : items) {
      if (!ApproxLe(item.weight, capacity)) continue;
      if (best_single == nullptr || item.value > best_single->value) {
        best_single = &item;
      }
    }
    if (best_single != nullptr && best_single->value > chosen_value) {
      return {*best_single};
    }
  }
  return chosen;
}

Result<std::vector<KnapsackItem>> BruteForceKnapsack(
    const std::vector<KnapsackItem>& items, double capacity,
    size_t max_items) {
  if (items.size() > max_items || items.size() > 63) {
    return Status::OutOfRange("brute-force knapsack item limit exceeded");
  }
  const size_t n = items.size();
  uint64_t best_mask = 0;
  double best_value = 0.0;
  // Gray-code walk: consecutive subsets differ by exactly one item, so the
  // running weight/value update in O(1) per subset instead of O(n). Over-
  // capacity subsets exit before any scoring. Ties keep the numerically
  // smallest mask — the subset an ascending-mask scan settles on. The
  // running sums are re-anchored from scratch every kReanchorPeriod steps,
  // which bounds the incremental drift to a few thousand rounding errors
  // (~1e-12 in this normalized space, far inside the 1e-9 capacity
  // tolerance); only a comparison decided by less than that residual —
  // an exact value tie between different subsets — can break toward a
  // different, equally optimal subset.
  constexpr uint64_t kReanchorPeriod = 4096;
  uint64_t gray = 0;
  double weight = 0.0;
  double value = 0.0;
  for (uint64_t i = 1; i < (1ull << n); ++i) {
    const size_t bit = static_cast<size_t>(std::countr_zero(i));
    const uint64_t flipped = 1ull << bit;
    gray ^= flipped;
    if (gray & flipped) {
      weight += items[bit].weight;
      value += items[bit].value;
    } else {
      weight -= items[bit].weight;
      value -= items[bit].value;
    }
    if ((i & (kReanchorPeriod - 1)) == 0) {
      weight = 0.0;
      value = 0.0;
      for (size_t b = 0; b < n; ++b) {
        if (gray & (1ull << b)) {
          weight += items[b].weight;
          value += items[b].value;
        }
      }
    }
    if (!ApproxLe(weight, capacity)) continue;
    if (value > best_value || (value == best_value && gray < best_mask)) {
      best_value = value;
      best_mask = gray;
    }
  }
  std::vector<KnapsackItem> chosen;
  for (size_t i = 0; i < n; ++i) {
    if (best_mask & (1ull << i)) chosen.push_back(items[i]);
  }
  return chosen;
}

double TotalValue(const std::vector<KnapsackItem>& items) {
  double total = 0.0;
  for (const KnapsackItem& item : items) total += item.value;
  return total;
}

double TotalWeight(const std::vector<KnapsackItem>& items) {
  double total = 0.0;
  for (const KnapsackItem& item : items) total += item.weight;
  return total;
}

}  // namespace stratrec::core
