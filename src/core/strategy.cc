#include "src/core/strategy.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace stratrec::core {
namespace {

std::string ToUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

}  // namespace

std::string StageName(const StageSpec& spec) {
  std::string name;
  name += spec.structure == Structure::kSequential ? "SEQ" : "SIM";
  name += '-';
  name += spec.organization == Organization::kIndependent ? "IND" : "COL";
  name += '-';
  name += spec.style == WorkStyle::kCrowdOnly ? "CRO" : "HYB";
  return name;
}

Result<StageSpec> ParseStageName(const std::string& name) {
  const std::string upper = ToUpper(name);
  if (upper.size() != 11 || upper[3] != '-' || upper[7] != '-') {
    return Status::InvalidArgument("malformed stage name: " + name);
  }
  StageSpec spec;
  const std::string structure = upper.substr(0, 3);
  const std::string organization = upper.substr(4, 3);
  const std::string style = upper.substr(8, 3);
  if (structure == "SEQ") {
    spec.structure = Structure::kSequential;
  } else if (structure == "SIM") {
    spec.structure = Structure::kSimultaneous;
  } else {
    return Status::InvalidArgument("unknown structure: " + structure);
  }
  if (organization == "IND") {
    spec.organization = Organization::kIndependent;
  } else if (organization == "COL") {
    spec.organization = Organization::kCollaborative;
  } else {
    return Status::InvalidArgument("unknown organization: " + organization);
  }
  if (style == "CRO") {
    spec.style = WorkStyle::kCrowdOnly;
  } else if (style == "HYB") {
    spec.style = WorkStyle::kHybrid;
  } else {
    return Status::InvalidArgument("unknown style: " + style);
  }
  return spec;
}

std::vector<StageSpec> AllStageSpecs() {
  std::vector<StageSpec> specs;
  specs.reserve(8);
  for (int structure = 0; structure < 2; ++structure) {
    for (int organization = 0; organization < 2; ++organization) {
      for (int style = 0; style < 2; ++style) {
        specs.push_back(StageSpec{static_cast<Structure>(structure),
                                  static_cast<Organization>(organization),
                                  static_cast<WorkStyle>(style)});
      }
    }
  }
  return specs;
}

std::string Strategy::Describe() const {
  std::string out;
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) out += '>';
    out += StageName(stages_[i]);
  }
  return out;
}

Result<uint64_t> CountWorkflows(int num_stages) {
  if (num_stages < 0) return Status::InvalidArgument("negative stage count");
  // 8^x overflows uint64 at x = 22 (8^21 = 2^63).
  if (num_stages > 21) {
    return Status::OutOfRange("8^x overflows uint64 for x > 21");
  }
  uint64_t count = 1;
  for (int i = 0; i < num_stages; ++i) count *= 8;
  return count;
}

Result<std::vector<Strategy>> EnumerateWorkflows(int num_stages,
                                                 uint64_t max_results) {
  auto count = CountWorkflows(num_stages);
  if (!count.ok()) return count.status();
  if (*count > max_results) {
    return Status::OutOfRange("workflow enumeration exceeds max_results");
  }
  const std::vector<StageSpec> specs = AllStageSpecs();
  std::vector<Strategy> out;
  out.reserve(*count);
  std::vector<size_t> digits(static_cast<size_t>(num_stages), 0);
  for (uint64_t i = 0; i < *count; ++i) {
    std::vector<StageSpec> stages;
    stages.reserve(digits.size());
    uint64_t rem = i;
    for (size_t d = 0; d < digits.size(); ++d) {
      stages.push_back(specs[rem % 8]);
      rem /= 8;
    }
    out.emplace_back("wf-" + std::to_string(i), std::move(stages));
  }
  return out;
}

}  // namespace stratrec::core
