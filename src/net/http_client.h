// Blocking HTTP/1.1 client for the serving tier's bench and tests. One
// keep-alive connection per HttpClient; RoundTrip frames a request,
// writes it, and blocks for the in-order response — exactly the shape a
// closed-loop load driver wants. SendRaw/ReadResponse exist for the
// transport tests, which need to put deliberately malformed bytes on the
// wire.
#ifndef STRATREC_NET_HTTP_CLIENT_H_
#define STRATREC_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/net/http.h"

namespace stratrec::net {

class HttpClient {
 public:
  static Result<HttpClient> Connect(const std::string& host, uint16_t port);

  /// Serialize + write + read one response. The connection stays usable
  /// afterwards unless the server answered `Connection: close`.
  Result<HttpResponse> RoundTrip(const HttpRequest& request);

  /// Raw-bytes escape hatch for malformed-input tests.
  Status SendRaw(std::string_view bytes);
  Result<HttpResponse> ReadResponse();
  /// Half-close the send side (the truncated-body signal).
  void FinishSending();

  /// Convenience builders for the /v1 endpoints.
  Result<HttpResponse> Get(const std::string& target);
  Result<HttpResponse> PostJson(const std::string& target, std::string body);

 private:
  explicit HttpClient(std::unique_ptr<HttpStream> stream)
      : stream_(std::move(stream)) {}
  std::unique_ptr<HttpStream> stream_;
};

}  // namespace stratrec::net

#endif  // STRATREC_NET_HTTP_CLIENT_H_
