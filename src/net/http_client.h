// Blocking HTTP/1.1 client for the serving tier's bench and tests. One
// keep-alive connection per HttpClient; RoundTrip frames a request,
// writes it, and blocks for the in-order response — exactly the shape a
// closed-loop load driver wants. SendRaw/ReadResponse exist for the
// transport tests, which need to put deliberately malformed bytes on the
// wire.
//
// Fault tolerance (PR 10): Connect takes socket timeouts (bounded connect,
// SO_RCVTIMEO/SO_SNDTIMEO on reads/writes), and RetryingHttpClient wraps
// the per-connection client with bounded retries under deterministic
// jittered exponential backoff — reconnecting after transport failures,
// honoring Retry-After on 429, and never retrying (or masking) a real
// application error. Neither class adds locking; use one per thread.
#ifndef STRATREC_NET_HTTP_CLIENT_H_
#define STRATREC_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/net/http.h"

namespace stratrec::net {

/// Socket-level timeouts of one connection. 0 = block forever (the
/// pre-fault-tolerance behavior, still the default).
struct ClientTimeouts {
  /// Bound on ::connect (non-blocking connect + poll when > 0).
  double connect_ms = 0.0;
  /// SO_RCVTIMEO: a response read stalled past this fails with kInternal
  /// ("read timed out"), leaving the connection unusable.
  double read_ms = 0.0;
  /// SO_SNDTIMEO, same contract for writes.
  double write_ms = 0.0;
};

class HttpClient {
 public:
  static Result<HttpClient> Connect(const std::string& host, uint16_t port,
                                    ClientTimeouts timeouts = {});

  /// Serialize + write + read one response. The connection stays usable
  /// afterwards unless the server answered `Connection: close`.
  Result<HttpResponse> RoundTrip(const HttpRequest& request);

  /// Raw-bytes escape hatch for malformed-input tests.
  Status SendRaw(std::string_view bytes);
  Result<HttpResponse> ReadResponse();
  /// Half-close the send side (the truncated-body signal).
  void FinishSending();

  /// Convenience builders for the /v1 endpoints.
  Result<HttpResponse> Get(const std::string& target);
  Result<HttpResponse> PostJson(const std::string& target, std::string body);

 private:
  explicit HttpClient(std::unique_ptr<HttpStream> stream)
      : stream_(std::move(stream)) {}
  std::unique_ptr<HttpStream> stream_;
};

/// Retry budget and backoff shape of one RetryingHttpClient.
struct RetryPolicy {
  /// Total tries per request, first attempt included. 1 disables retries.
  size_t max_attempts = 3;
  /// Exponential backoff: attempt n (0-based retry index) waits
  /// base_backoff_ms * 2^n, capped at max_backoff_ms, scaled by a
  /// deterministic jitter factor in [0.5, 1.0) derived from (seed, request
  /// sequence, attempt) — the same seed always produces the same wait
  /// schedule.
  double base_backoff_ms = 10.0;
  double max_backoff_ms = 250.0;
  uint64_t seed = 0;
  /// A 429 with Retry-After waits the hinted interval instead of the
  /// backoff curve, capped here (hints are whole seconds; benches cannot
  /// stall a sweep cell for the full hint).
  double retry_after_cap_ms = 1000.0;
  /// Socket timeouts applied to every (re)connect.
  ClientTimeouts timeouts{/*connect_ms=*/1000.0, /*read_ms=*/0.0,
                          /*write_ms=*/0.0};
};

/// HttpClient plus a retry loop: transport failures (connect refused, read
/// timeout, dropped connection) reconnect and retry up to
/// RetryPolicy::max_attempts; 429 responses retry after honoring
/// Retry-After. Everything else — including 5xx — returns to the caller
/// unretried, so injected-fault accounting (bench/chaos_serving.cc) never
/// has real errors masked by the client. Counters are cumulative across
/// requests; `retries()` is the client-side twin of the
/// ServiceStats::retries journal counter.
class RetryingHttpClient {
 public:
  RetryingHttpClient(std::string host, uint16_t port, RetryPolicy policy = {})
      : host_(std::move(host)), port_(port), policy_(policy) {}

  Result<HttpResponse> Get(const std::string& target);
  Result<HttpResponse> PostJson(const std::string& target, std::string body);

  /// Re-sends after a transport failure or 429 (cumulative).
  uint64_t retries() const { return retries_; }
  /// How many of those waits honored a Retry-After hint.
  uint64_t retry_after_waits() const { return retry_after_waits_; }

  /// The deterministic jittered wait before retry `attempt` (0-based) of
  /// request `sequence`. Exposed for the determinism test; Execute uses
  /// exactly this.
  static double BackoffMs(const RetryPolicy& policy, uint64_t sequence,
                          size_t attempt);

 private:
  Result<HttpResponse> Execute(const HttpRequest& request);

  std::string host_;
  uint16_t port_;
  RetryPolicy policy_;
  std::optional<HttpClient> connection_;
  uint64_t sequence_ = 0;
  uint64_t retries_ = 0;
  uint64_t retry_after_waits_ = 0;
};

}  // namespace stratrec::net

#endif  // STRATREC_NET_HTTP_CLIENT_H_
