#include "src/net/serving.h"

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/api/codec.h"
#include "src/common/json.h"

namespace stratrec::net {

namespace {

HttpResponse JsonResponse(int status_code, std::string body) {
  HttpResponse response;
  response.status_code = status_code;
  response.AddHeader("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

std::string ErrorBody(const Status& status) {
  json::Value body = json::Value::Object();
  body.Add("error", wire::Encode(status));
  return json::Dump(body);
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusFor(status), ErrorBody(status));
}

/// X-Stratrec-Deadline-Ms: a positive millisecond budget that overrides the
/// body's own deadline_ms (curl users shouldn't have to edit the JSON).
/// Absent -> no-op; malformed -> kInvalidArgument (a garbled deadline must
/// not silently become "no deadline").
Status ApplyDeadlineHeader(const HttpRequest& http, double* deadline_ms) {
  const std::string* header = http.FindHeader("X-Stratrec-Deadline-Ms");
  if (header == nullptr) return Status::OK();
  const char* text = header->c_str();
  char* end = nullptr;
  const double parsed = std::strtod(text, &end);
  if (end == text || *end != '\0' || !std::isfinite(parsed) || parsed <= 0.0) {
    return Status::InvalidArgument(
        "X-Stratrec-Deadline-Ms must be a positive number of milliseconds");
  }
  *deadline_ms = parsed;
  return Status::OK();
}

HttpResponse MethodNotAllowed(const char* allow) {
  HttpResponse response = JsonResponse(
      405, ErrorBody(Status::InvalidArgument(
               std::string("method not allowed; use ") + allow)));
  response.AddHeader("Allow", allow);
  return response;
}

/// POST /v1/batch and /v1/sweep share everything but the codec pair and the
/// submit call; `Submit` is one of the two lambdas below.
template <typename Request, typename Report, typename Decode, typename Submit>
void HandleSolve(const ShardRouter& router, const HttpRequest& http,
                 const Responder& respond, Decode decode, Submit submit) {
  if (http.method != "POST") {
    respond(MethodNotAllowed("POST"));
    return;
  }
  // Admission first: a shedding server must not pay body parsing for
  // requests it is about to refuse.
  if (!router.TryAdmit()) {
    router.NoteRetryAfterHint();
    HttpResponse response = JsonResponse(
        429, ErrorBody(Status::FailedPrecondition(
                 "queue depth reached the admission ceiling; retry")));
    response.AddHeader("Retry-After", "1");
    respond(response);
    return;
  }
  auto parsed = json::Parse(http.body);
  if (!parsed.ok()) {
    respond(ErrorResponse(parsed.status()));
    return;
  }
  Result<Request> decoded = decode(*parsed);
  if (!decoded.ok()) {
    respond(ErrorResponse(decoded.status()));
    return;
  }
  const Status deadline = ApplyDeadlineHeader(http, &decoded->deadline_ms);
  if (!deadline.ok()) {
    respond(ErrorResponse(deadline));
    return;
  }
  api::Ticket<Report> ticket = submit(std::move(*decoded));
  // The responder rides the completion callback; this transport thread is
  // free as soon as the enqueue returns. The callback captures only the
  // responder (connection state), never the router — a pool worker must
  // not be the one to drop the last service handle.
  const Status registered =
      ticket.OnComplete([respond](const Result<Report>& outcome) {
        if (!outcome.ok()) {
          respond(ErrorResponse(outcome.status()));
          return;
        }
        respond(JsonResponse(200, json::Dump(wire::Encode(*outcome))));
      });
  if (!registered.ok()) respond(ErrorResponse(registered));
}

}  // namespace

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kCancelled:
      return 409;
    case StatusCode::kInfeasible:
      return 422;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

HttpHandler MakeServingHandler(ShardRouter router) {
  return [router = std::move(router)](const HttpRequest& http,
                                      Responder respond) {
    if (http.target == "/healthz") {
      if (http.method != "GET") {
        respond(MethodNotAllowed("GET"));
        return;
      }
      respond(JsonResponse(200, "{\"status\":\"ok\"}"));
      return;
    }
    if (http.target == "/v1/stats") {
      if (http.method != "GET") {
        respond(MethodNotAllowed("GET"));
        return;
      }
      respond(JsonResponse(200, json::Dump(wire::Encode(router.stats()))));
      return;
    }
    if (http.target == "/v1/batch") {
      HandleSolve<api::BatchRequest, api::BatchReport>(
          router, http, respond,
          [](const json::Value& value) {
            return wire::DecodeBatchRequest(value);
          },
          [&router](api::BatchRequest request) {
            return router.SubmitBatchAsync(std::move(request));
          });
      return;
    }
    if (http.target == "/v1/sweep") {
      HandleSolve<api::SweepRequest, api::SweepReport>(
          router, http, respond,
          [](const json::Value& value) {
            return wire::DecodeSweepRequest(value);
          },
          [&router](api::SweepRequest request) {
            return router.RunSweepAsync(std::move(request));
          });
      return;
    }
    respond(JsonResponse(
        404, ErrorBody(Status::NotFound("no route for " + http.method + " " +
                                        http.target))));
  };
}

Result<HttpServer> StartServing(ShardRouter router, HttpServerConfig config) {
  return HttpServer::Start(MakeServingHandler(std::move(router)),
                           std::move(config));
}

}  // namespace stratrec::net
