#include "src/net/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

namespace stratrec::net {

namespace {

// Responses carry full reports; keep the client cap comfortably above the
// server's request cap.
constexpr size_t kMaxResponseBody = 64 * 1024 * 1024;

timeval ToTimeval(double ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  return tv;
}

/// ::connect bounded by `connect_ms`: flip the socket non-blocking, start
/// the connect, poll for writability, read SO_ERROR, flip back.
Status BoundedConnect(int fd, const sockaddr_in& address, double connect_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl failed: ") +
                            std::strerror(errno));
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                     sizeof(address));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Internal(std::string("connect failed: ") +
                            std::strerror(errno));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = std::max(1, static_cast<int>(connect_ms));
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      return Status::Internal("connect timed out after " +
                              std::to_string(timeout_ms) + "ms");
    }
    if (ready < 0) {
      return Status::Internal(std::string("poll failed: ") +
                              std::strerror(errno));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      return Status::Internal(std::string("connect failed: ") +
                              std::strerror(so_error != 0 ? so_error : errno));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::Internal(std::string("fcntl failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// True for failures worth a reconnect: anything the transport produced
/// (send/recv/connect errors, timeouts, severed connections). Application
/// decodes never reach here — RoundTrip only fails at the socket layer.
bool Retryable(const Status& status) { return !status.ok(); }

/// Parses a whole-seconds Retry-After value; nullopt when absent or
/// malformed (HTTP-date form is not produced by this serving tier).
std::optional<double> RetryAfterMs(const HttpResponse& response) {
  const std::string* value = response.FindHeader("Retry-After");
  if (value == nullptr || value->empty() ||
      value->find_first_not_of("0123456789") != std::string::npos ||
      value->size() > 6) {
    return std::nullopt;
  }
  return std::stod(*value) * 1000.0;
}

}  // namespace

Result<HttpClient> HttpClient::Connect(const std::string& host, uint16_t port,
                                       ClientTimeouts timeouts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host address: " + host);
  }
  Status connected = Status::OK();
  if (timeouts.connect_ms > 0.0) {
    connected = BoundedConnect(fd, address, timeouts.connect_ms);
  } else if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                       sizeof(address)) != 0) {
    connected = Status::Internal(std::string("connect failed: ") +
                                 std::strerror(errno));
  }
  if (!connected.ok()) {
    ::close(fd);
    return Status::Internal("connect(" + host + ":" + std::to_string(port) +
                            ") failed: " + connected.message());
  }
  if (timeouts.read_ms > 0.0) {
    const timeval tv = ToTimeval(timeouts.read_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (timeouts.write_ms > 0.0) {
    const timeval tv = ToTimeval(timeouts.write_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return HttpClient(std::make_unique<HttpStream>(fd));
}

Result<HttpResponse> HttpClient::RoundTrip(const HttpRequest& request) {
  STRATREC_RETURN_NOT_OK(stream_->Write(SerializeRequest(request)));
  return stream_->ReadResponse(kMaxResponseBody);
}

Status HttpClient::SendRaw(std::string_view bytes) {
  return stream_->Write(bytes);
}

Result<HttpResponse> HttpClient::ReadResponse() {
  return stream_->ReadResponse(kMaxResponseBody);
}

void HttpClient::FinishSending() { stream_->ShutdownSend(); }

Result<HttpResponse> HttpClient::Get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return RoundTrip(request);
}

Result<HttpResponse> HttpClient::PostJson(const std::string& target,
                                          std::string body) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.AddHeader("Content-Type", "application/json");
  request.body = std::move(body);
  return RoundTrip(request);
}

double RetryingHttpClient::BackoffMs(const RetryPolicy& policy,
                                     uint64_t sequence, size_t attempt) {
  const double exponential =
      policy.base_backoff_ms * std::pow(2.0, static_cast<double>(attempt));
  const double capped = std::min(exponential, policy.max_backoff_ms);
  const uint64_t h = SplitMix64(policy.seed ^ SplitMix64(sequence) ^
                                SplitMix64(0xa0761d6478bd642full + attempt));
  return capped * (0.5 + 0.5 * ToUnit(h));
}

Result<HttpResponse> RetryingHttpClient::Execute(const HttpRequest& request) {
  const uint64_t sequence = sequence_++;
  Status last = Status::OK();
  for (size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          BackoffMs(policy_, sequence, attempt - 1)));
    }
    if (!connection_.has_value()) {
      auto connected = HttpClient::Connect(host_, port_, policy_.timeouts);
      if (!connected.ok()) {
        last = connected.status();
        continue;  // next attempt reconnects after backoff
      }
      connection_.emplace(std::move(*connected));
    }
    auto response = connection_->RoundTrip(request);
    if (!response.ok()) {
      last = response.status();
      if (!Retryable(last)) return last;
      connection_.reset();  // the socket is unusable after any read failure
      continue;
    }
    if (response->status_code == 429 && attempt + 1 < policy_.max_attempts) {
      // The admission controller said "later": honor the hint (capped) in
      // place of the next backoff step, then go around again.
      if (const std::optional<double> hint = RetryAfterMs(*response)) {
        ++retry_after_waits_;
        ++retries_;
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            std::min(*hint, policy_.retry_after_cap_ms)));
        if (const std::string* connection_header =
                response->FindHeader("Connection");
            connection_header != nullptr && *connection_header == "close") {
          connection_.reset();
        }
        // Resend without charging the loop's own backoff for this turn.
        auto retried = connection_.has_value()
                           ? connection_->RoundTrip(request)
                           : Result<HttpResponse>(
                                 Status::Internal("connection closed"));
        if (!retried.ok()) {
          last = retried.status();
          connection_.reset();
          continue;
        }
        if (retried->status_code != 429) return retried;
        response = std::move(retried);
      }
      last = Status::Internal("server answered 429 Too Many Requests");
      connection_.reset();
      continue;
    }
    // Every other status — success, 4xx, 5xx — belongs to the caller.
    return response;
  }
  return Status::Internal("request failed after " +
                             std::to_string(policy_.max_attempts) +
                             " attempts: " + last.message());
}

Result<HttpResponse> RetryingHttpClient::Get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return Execute(request);
}

Result<HttpResponse> RetryingHttpClient::PostJson(const std::string& target,
                                                  std::string body) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.AddHeader("Content-Type", "application/json");
  request.body = std::move(body);
  return Execute(request);
}

}  // namespace stratrec::net
