#include "src/net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace stratrec::net {

namespace {
// Responses carry full reports; keep the client cap comfortably above the
// server's request cap.
constexpr size_t kMaxResponseBody = 64 * 1024 * 1024;
}  // namespace

Result<HttpClient> HttpClient::Connect(const std::string& host,
                                       uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect(" + host + ":" + std::to_string(port) +
                            ") failed: " + why);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return HttpClient(std::make_unique<HttpStream>(fd));
}

Result<HttpResponse> HttpClient::RoundTrip(const HttpRequest& request) {
  STRATREC_RETURN_NOT_OK(stream_->Write(SerializeRequest(request)));
  return stream_->ReadResponse(kMaxResponseBody);
}

Status HttpClient::SendRaw(std::string_view bytes) {
  return stream_->Write(bytes);
}

Result<HttpResponse> HttpClient::ReadResponse() {
  return stream_->ReadResponse(kMaxResponseBody);
}

void HttpClient::FinishSending() { stream_->ShutdownSend(); }

Result<HttpResponse> HttpClient::Get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return RoundTrip(request);
}

Result<HttpResponse> HttpClient::PostJson(const std::string& target,
                                          std::string body) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.AddHeader("Content-Type", "application/json");
  request.body = std::move(body);
  return RoundTrip(request);
}

}  // namespace stratrec::net
