#include "src/net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/fault.h"
#include "src/common/json.h"

namespace stratrec::net {

namespace internal {

namespace {

/// One queued response position. Slots complete in any order but flush in
/// request order.
struct Slot {
  bool ready = false;
  bool close_after = false;
  std::string bytes;
};

struct Connection {
  explicit Connection(int fd) : stream(fd) {}

  HttpStream stream;
  std::mutex mutex;  ///< guards slots/writing/dead
  std::deque<std::shared_ptr<Slot>> slots;
  bool writing = false;  ///< a thread is mid-Write; others back off
  bool dead = false;     ///< write failed or close_after written
};

/// Writes every ready head-of-queue slot. Runs on whichever thread
/// completed the head slot; `writing` keeps concurrent completers from
/// interleaving bytes, and the queue keeps responses in request order.
void FlushConnection(const std::shared_ptr<Connection>& connection) {
  for (;;) {
    std::string bytes;
    bool close_after = false;
    {
      std::lock_guard<std::mutex> lock(connection->mutex);
      if (connection->writing || connection->dead ||
          connection->slots.empty() || !connection->slots.front()->ready) {
        return;
      }
      std::shared_ptr<Slot> slot = std::move(connection->slots.front());
      connection->slots.pop_front();
      bytes = std::move(slot->bytes);
      close_after = slot->close_after;
      connection->writing = true;
    }
    const Status written = connection->stream.Write(bytes);
    const bool die = !written.ok() || close_after;
    {
      std::lock_guard<std::mutex> lock(connection->mutex);
      connection->writing = false;
      if (die) connection->dead = true;
    }
    if (die) {
      connection->stream.ShutdownBoth();
      return;
    }
  }
}

std::string ErrorBody(const std::string& code, const std::string& message) {
  json::Value error = json::Value::Object();
  error.Add("code", code);
  error.Add("message", message);
  json::Value body = json::Value::Object();
  body.Add("error", std::move(error));
  return json::Dump(body);
}

struct ConnectionEntry {
  std::shared_ptr<Connection> connection;
  std::shared_ptr<std::atomic<bool>> finished;
  std::thread reader;
};

}  // namespace

struct ServerState {
  HttpServerConfig config;
  HttpHandler handler;
  int listen_fd = -1;
  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};
  std::thread acceptor;
  std::mutex connections_mutex;
  std::vector<ConnectionEntry> connections;

  ~ServerState() { StopAndJoin(); }

  void StopAndJoin() {
    if (stopped.exchange(true)) return;
    stopping.store(true);
    // Refuse new connects first: the listener goes away before any
    // connection is touched.
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
    if (acceptor.joinable()) acceptor.join();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    std::vector<ConnectionEntry> drained;
    {
      std::lock_guard<std::mutex> lock(connections_mutex);
      drained.swap(connections);
    }
    // Graceful drain: read-half-close every connection (readers finish
    // framing what is already buffered, then see clean EOF), join them, and
    // give in-flight jobs up to drain_ms to complete and flush their slots —
    // the peer still receives every response it pipelined before the stop.
    for (ConnectionEntry& entry : drained) {
      entry.connection->stream.ShutdownRead();
    }
    for (ConnectionEntry& entry : drained) {
      if (entry.reader.joinable()) entry.reader.join();
    }
    if (config.drain_ms > 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration<double, std::milli>(config.drain_ms);
      for (const ConnectionEntry& entry : drained) {
        for (;;) {
          {
            std::lock_guard<std::mutex> lock(entry.connection->mutex);
            if (entry.connection->dead ||
                (entry.connection->slots.empty() &&
                 !entry.connection->writing)) {
              break;
            }
          }
          if (std::chrono::steady_clock::now() >= deadline) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }
    for (ConnectionEntry& entry : drained) {
      entry.connection->stream.ShutdownBoth();
      // Late responders must drop, not write into the severed socket.
      std::lock_guard<std::mutex> lock(entry.connection->mutex);
      entry.connection->dead = true;
    }
  }

  /// Transport-level refusal: answered by the server, handler untouched.
  void RefuseAndClose(const std::shared_ptr<Connection>& connection,
                      const Status& why) {
    HttpResponse response;
    response.status_code =
        why.code() == StatusCode::kOutOfRange ? 413 : 400;
    response.AddHeader("Content-Type", "application/json");
    response.AddHeader("Connection", "close");
    response.body = ErrorBody(StatusCodeName(why.code()), why.message());
    auto slot = std::make_shared<Slot>();
    slot->ready = true;
    slot->close_after = true;
    slot->bytes = SerializeResponse(response);
    {
      std::lock_guard<std::mutex> lock(connection->mutex);
      if (connection->dead) return;
      connection->slots.push_back(std::move(slot));
    }
    FlushConnection(connection);
  }

  void ServeConnection(const std::shared_ptr<Connection>& connection) {
    for (;;) {
      auto request = connection->stream.ReadRequest(config.max_head_bytes,
                                                    config.max_body_bytes);
      if (!request.ok()) {
        // kCancelled is the clean keep-alive teardown; everything else is a
        // framing error the peer gets told about.
        if (request.status().code() != StatusCode::kCancelled) {
          RefuseAndClose(connection, request.status());
        }
        return;
      }
      // Fault sites, consulted per framed request before the handler runs:
      // an injected drop severs the connection with no response (the peer
      // sees a transport error — retryable, never a 5xx); an injected delay
      // stalls this reader like a slow server would.
      if (auto plan = fault::GlobalFaultPlan()) {
        if (plan->HasSite(fault::kSiteHttpDelay)) {
          const fault::FaultDecision delay =
              plan->Visit(fault::kSiteHttpDelay);
          if (delay.inject && delay.delay_ms > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay.delay_ms));
          }
        }
        if (plan->HasSite(fault::kSiteHttpDrop) &&
            plan->Visit(fault::kSiteHttpDrop).inject) {
          {
            std::lock_guard<std::mutex> lock(connection->mutex);
            connection->dead = true;
          }
          connection->stream.ShutdownBoth();
          return;
        }
      }
      const bool close_after = request->WantsClose();
      auto slot = std::make_shared<Slot>();
      slot->close_after = close_after;
      {
        std::lock_guard<std::mutex> lock(connection->mutex);
        if (connection->dead) return;
        connection->slots.push_back(slot);
      }
      handler(*request,
              [connection, slot](HttpResponse response) {
                {
                  std::lock_guard<std::mutex> lock(connection->mutex);
                  if (slot->ready) return;  // double-complete: drop
                  if (slot->close_after &&
                      response.FindHeader("Connection") == nullptr) {
                    response.AddHeader("Connection", "close");
                  }
                  slot->bytes = SerializeResponse(response);
                  slot->ready = true;
                }
                FlushConnection(connection);
              });
      // After a Connection: close request the peer sends nothing further.
      if (close_after) return;
    }
  }

  void AcceptLoop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (stopping.load()) return;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // listener gone
      }
      if (stopping.load()) {
        ::close(fd);
        return;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto connection = std::make_shared<Connection>(fd);
      auto finished = std::make_shared<std::atomic<bool>>(false);
      std::thread reader([this, connection, finished]() {
        ServeConnection(connection);
        finished->store(true);
      });
      std::lock_guard<std::mutex> lock(connections_mutex);
      // Reap connections whose reader already exited, so a long-lived
      // server doesn't accumulate one entry per finished connection.
      for (size_t i = connections.size(); i-- > 0;) {
        if (!connections[i].finished->load()) continue;
        if (connections[i].reader.joinable()) connections[i].reader.join();
        connections.erase(connections.begin() + static_cast<ptrdiff_t>(i));
      }
      connections.push_back(ConnectionEntry{std::move(connection),
                                            std::move(finished),
                                            std::move(reader)});
    }
  }
};

}  // namespace internal

Result<HttpServer> HttpServer::Start(HttpHandler handler,
                                     HttpServerConfig config) {
  if (!handler) {
    return Status::InvalidArgument("http server needs a handler");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable bind address: " + config.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind(" + config.host + ":" +
                            std::to_string(config.port) + ") failed: " + why);
  }
  if (::listen(fd, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen() failed: " + why);
  }
  // Resolve an ephemeral port request to the bound port.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname() failed: " + why);
  }
  config.port = ntohs(bound.sin_port);

  auto state = std::make_shared<internal::ServerState>();
  state->config = std::move(config);
  state->handler = std::move(handler);
  state->listen_fd = fd;
  internal::ServerState* raw = state.get();
  state->acceptor = std::thread([raw]() { raw->AcceptLoop(); });
  return HttpServer(std::move(state));
}

uint16_t HttpServer::port() const { return state_->config.port; }

const HttpServerConfig& HttpServer::config() const { return state_->config; }

void HttpServer::Stop() { state_->StopAndJoin(); }

}  // namespace stratrec::net
