// The /v1 serving endpoints: HTTP front end over a ShardRouter.
//
// Routes (bodies are wire-codec JSON — the same encoding the journal
// records, so a journal line can be replayed with curl verbatim):
//
//   POST /v1/batch   wire::BatchRequest  -> 200 wire::BatchReport
//   POST /v1/sweep   wire::SweepRequest  -> 200 wire::SweepReport
//   GET  /v1/stats   -> 200 wire::ServiceStats (router + shard counters)
//   GET  /healthz    -> 200 {"status":"ok"}
//
// A solve never blocks a transport thread: the handler maps the request
// onto SubmitBatchAsync / RunSweepAsync and hands the Responder to the
// ticket's completion callback; the response is written by the pool worker
// that finished the job, in request order per connection (http_server.h).
//
// Failure mapping (HttpStatusFor): kInvalidArgument / kOutOfRange -> 400,
// kNotFound -> 404, kFailedPrecondition / kCancelled -> 409,
// kInfeasible -> 422, kDeadlineExceeded -> 504, kInternal -> 500.
// Per-request infeasibility inside a batch is in-band (the report's
// unsatisfied/alternatives sets), not an HTTP error. Admission control
// happens before the body is even parsed: when ShardRouter::TryAdmit
// refuses, the handler answers 429 with `Retry-After: 1` and counts the
// hint.
//
// Deadlines: an `X-Stratrec-Deadline-Ms` request header (positive
// milliseconds) overrides the body's deadline_ms before submit; work whose
// budget expires while queued is cancelled with kDeadlineExceeded -> 504.
#ifndef STRATREC_NET_SERVING_H_
#define STRATREC_NET_SERVING_H_

#include "src/common/status.h"
#include "src/net/http_server.h"
#include "src/router/shard_router.h"

namespace stratrec::net {

/// HTTP status for a request-level failure from the router/service stack.
int HttpStatusFor(const Status& status);

/// The /v1 route handler over `router` (a value handle; the handler keeps
/// the router alive).
HttpHandler MakeServingHandler(ShardRouter router);

/// MakeServingHandler + HttpServer::Start.
Result<HttpServer> StartServing(ShardRouter router,
                                HttpServerConfig config = {});

}  // namespace stratrec::net

#endif  // STRATREC_NET_SERVING_H_
