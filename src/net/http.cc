#include "src/net/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

namespace stratrec::net {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* FindIn(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Pops one line off `rest` (up to LF; a trailing CR is stripped).
std::string_view NextLine(std::string_view* rest) {
  const size_t lf = rest->find('\n');
  std::string_view line;
  if (lf == std::string_view::npos) {
    line = *rest;
    rest->remove_prefix(rest->size());
  } else {
    line = rest->substr(0, lf);
    rest->remove_prefix(lf + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

const std::string* HttpResponse::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

bool HttpRequest::WantsClose() const {
  if (const std::string* connection = FindHeader("Connection")) {
    if (EqualsIgnoreCase(Trim(*connection), "close")) return true;
    if (EqualsIgnoreCase(Trim(*connection), "keep-alive")) return false;
  }
  return version == "HTTP/1.0";  // 1.0 defaults to close
}

const char* DefaultReason(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string SerializeRequest(const HttpRequest& request) {
  std::string out;
  out.reserve(128 + request.body.size());
  out += request.method;
  out += ' ';
  out += request.target;
  out += ' ';
  out += request.version;
  out += "\r\n";
  for (const auto& [key, value] : request.headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n\r\n";
  out += request.body;
  return out;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 " + std::to_string(response.status_code) + ' ';
  out += response.reason.empty() ? DefaultReason(response.status_code)
                                 : response.reason.c_str();
  out += "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n\r\n";
  out += response.body;
  return out;
}

namespace internal {

Status ParseHead(std::string_view head, std::string* start_line,
                 std::vector<std::pair<std::string, std::string>>* headers) {
  std::string_view rest = head;
  const std::string_view first = NextLine(&rest);
  if (first.empty()) {
    return Status::InvalidArgument("http: empty start line");
  }
  *start_line = std::string(first);
  while (!rest.empty()) {
    const std::string_view line = NextLine(&rest);
    if (line.empty()) break;  // blank line terminates the head
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("http: malformed header line");
    }
    const std::string_view name = line.substr(0, colon);
    if (!Trim(name).size() || Trim(name).size() != name.size()) {
      return Status::InvalidArgument("http: malformed header name");
    }
    headers->emplace_back(std::string(name),
                          std::string(Trim(line.substr(colon + 1))));
  }
  return Status::OK();
}

Result<size_t> ContentLength(
    const std::vector<std::pair<std::string, std::string>>& headers,
    size_t max_body_bytes) {
  if (FindIn(headers, "Transfer-Encoding") != nullptr) {
    return Status::InvalidArgument(
        "http: transfer-encoding is not supported (content-length framing "
        "only)");
  }
  const std::string* declared = nullptr;
  for (const auto& [key, value] : headers) {
    if (!EqualsIgnoreCase(key, "Content-Length")) continue;
    if (declared != nullptr && *declared != value) {
      return Status::InvalidArgument("http: conflicting content-length values");
    }
    declared = &value;
  }
  if (declared == nullptr) return size_t{0};
  const std::string_view text = Trim(*declared);
  if (text.empty() || text.size() > 18) {
    return Status::InvalidArgument("http: malformed content-length");
  }
  size_t length = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("http: malformed content-length");
    }
    length = length * 10 + static_cast<size_t>(c - '0');
  }
  if (length > max_body_bytes) {
    return Status::OutOfRange("http: declared body of " +
                              std::to_string(length) + " bytes exceeds the " +
                              std::to_string(max_body_bytes) + "-byte cap");
  }
  return length;
}

}  // namespace internal

HttpStream::~HttpStream() {
  if (fd_ >= 0) ::close(fd_);
}

HttpStream::HttpStream(HttpStream&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

void HttpStream::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void HttpStream::ShutdownSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void HttpStream::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

Result<bool> HttpStream::Fill() {
  char chunk[16 * 1024];
  const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
  if (got < 0) {
    return Status::Internal(std::string("http: recv failed: ") +
                            std::strerror(errno));
  }
  if (got == 0) return false;
  buffer_.append(chunk, static_cast<size_t>(got));
  return true;
}

Result<std::string> HttpStream::ReadHead(size_t max_head_bytes) {
  size_t scanned = 0;
  for (;;) {
    // Look for the blank line in what we have (either line convention).
    for (size_t i = scanned; i + 1 < buffer_.size(); ++i) {
      const bool crlf2 = i + 3 < buffer_.size() &&
                         buffer_.compare(i, 4, "\r\n\r\n") == 0;
      const bool lf2 = buffer_.compare(i, 2, "\n\n") == 0;
      if (!crlf2 && !lf2) continue;
      const size_t head_end = i + (crlf2 ? 4 : 2);
      std::string head = buffer_.substr(0, head_end);
      buffer_.erase(0, head_end);
      return head;
    }
    scanned = buffer_.size() > 3 ? buffer_.size() - 3 : 0;
    if (buffer_.size() > max_head_bytes) {
      return Status::InvalidArgument("http: request head exceeds the " +
                                     std::to_string(max_head_bytes) +
                                     "-byte cap");
    }
    auto more = Fill();
    if (!more.ok()) return more.status();
    if (!*more) {
      if (buffer_.empty()) {
        // Clean keep-alive teardown between messages.
        return Status::Cancelled("http: connection closed");
      }
      return Status::InvalidArgument("http: connection closed mid-head");
    }
  }
}

Status HttpStream::ReadBody(size_t length, std::string* out) {
  while (buffer_.size() < length) {
    auto more = Fill();
    if (!more.ok()) return more.status();
    if (!*more) {
      return Status::InvalidArgument(
          "http: truncated body (connection closed after " +
          std::to_string(buffer_.size()) + " of " + std::to_string(length) +
          " bytes)");
    }
  }
  out->assign(buffer_, 0, length);
  buffer_.erase(0, length);
  return Status::OK();
}

Result<HttpRequest> HttpStream::ReadRequest(size_t max_head_bytes,
                                            size_t max_body_bytes) {
  auto head = ReadHead(max_head_bytes);
  if (!head.ok()) return head.status();

  HttpRequest request;
  std::string start_line;
  STRATREC_RETURN_NOT_OK(
      internal::ParseHead(*head, &start_line, &request.headers));

  // METHOD SP TARGET SP VERSION, single spaces, no embedded whitespace.
  const size_t sp1 = start_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      start_line.find(' ', sp2 + 1) != std::string::npos || sp1 == 0 ||
      sp2 == sp1 + 1 || sp2 + 1 == start_line.size()) {
    return Status::InvalidArgument("http: malformed request line");
  }
  request.method = start_line.substr(0, sp1);
  request.target = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request.version = start_line.substr(sp2 + 1);
  if (request.version.rfind("HTTP/1.", 0) != 0) {
    return Status::InvalidArgument("http: unsupported protocol version");
  }

  auto length = internal::ContentLength(request.headers, max_body_bytes);
  if (!length.ok()) return length.status();
  STRATREC_RETURN_NOT_OK(ReadBody(*length, &request.body));
  return request;
}

Result<HttpResponse> HttpStream::ReadResponse(size_t max_body_bytes) {
  auto head = ReadHead(/*max_head_bytes=*/64 * 1024);
  if (!head.ok()) return head.status();

  HttpResponse response;
  std::string start_line;
  STRATREC_RETURN_NOT_OK(
      internal::ParseHead(*head, &start_line, &response.headers));

  // HTTP/1.x SP CODE SP REASON (reason may itself contain spaces).
  const size_t sp1 = start_line.find(' ');
  if (sp1 == std::string::npos || start_line.rfind("HTTP/1.", 0) != 0) {
    return Status::InvalidArgument("http: malformed status line");
  }
  const size_t sp2 = start_line.find(' ', sp1 + 1);
  const std::string code =
      start_line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                          : sp2 - sp1 - 1);
  if (code.size() != 3 || code.find_first_not_of("0123456789") !=
                              std::string::npos) {
    return Status::InvalidArgument("http: malformed status code");
  }
  response.status_code = std::stoi(code);
  if (sp2 != std::string::npos) response.reason = start_line.substr(sp2 + 1);

  auto length = internal::ContentLength(response.headers, max_body_bytes);
  if (!length.ok()) return length.status();
  STRATREC_RETURN_NOT_OK(ReadBody(*length, &response.body));
  return response;
}

Status HttpStream::Write(std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t sent = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      return Status::Internal(std::string("http: send failed: ") +
                              std::strerror(errno));
    }
    bytes.remove_prefix(static_cast<size_t>(sent));
  }
  return Status::OK();
}

}  // namespace stratrec::net
