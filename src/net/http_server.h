// HttpServer — the blocking-socket HTTP/1.1 front of the serving tier.
//
// Dependency-free by construction (POSIX sockets + std::thread; nothing the
// container doesn't already ship): one accept thread plus one reader thread
// per connection. What keeps a transport thread from ever blocking on a
// solve is the responder protocol:
//
//   * the reader frames a request and calls the handler with a Responder,
//   * the handler either answers inline (health, stats, transport 4xx) or
//     stashes the Responder in a Ticket::OnComplete callback and returns —
//     the reader immediately goes back to framing the next request,
//   * whichever thread completes the job (a pool worker, usually) invokes
//     the Responder, which serializes the response into the request's
//     *slot*; slots form a per-connection queue and are flushed strictly in
//     request order, so HTTP/1.1 pipelining and keep-alive stay correct
//     even when a later request finishes first.
//
// Transport-level failures (malformed head, truncated body, oversized
// Content-Length) are answered by the server itself — 400/413 with a JSON
// error body and `Connection: close` — without invoking the handler, so a
// bad frame never reaches a Service.
//
// Stop() drains before it kills: the listener closes first (new connects
// refused), every connection's read half shuts down (readers see clean EOF
// and stop framing new requests), and already-accepted requests get up to
// HttpServerConfig::drain_ms to complete and flush their in-order slots —
// pipelined responses the peer is owed still arrive. Only after the drain
// window (or immediately, when drain_ms == 0) do the sockets shut down
// fully; Responders held past that stay safe (they write into a dead
// connection and are dropped).
//
// Fault injection: when a fault::FaultPlan is installed with the
// "http.server.drop" / "http.server.delay" sites, each framed request
// consults it before reaching the handler — drop severs the connection
// without a response (the client sees a transport error), delay stalls the
// reader by the site's delay_ms (a slow server). Deterministic per plan
// seed; no plan, no effect.
#ifndef STRATREC_NET_HTTP_SERVER_H_
#define STRATREC_NET_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/net/http.h"

namespace stratrec::net {

namespace internal {
struct ServerState;
}  // namespace internal

struct HttpServerConfig {
  /// Bind address. The serving tier is loopback-only by default; binding
  /// wider is a deliberate caller decision.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by HttpServer::port().
  uint16_t port = 0;
  size_t max_head_bytes = 64 * 1024;
  /// Requests declaring more than this are refused with 413 before the
  /// body is read.
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Stop()'s graceful-drain window: how long already-accepted requests get
  /// to complete and flush before connections are severed. 0 restores the
  /// old hard stop (in-flight responses dropped).
  double drain_ms = 2000.0;
};

/// Completes one request; invoke exactly once. Safe to call from any
/// thread, including executor pool workers.
using Responder = std::function<void(HttpResponse)>;
/// Runs on the connection's reader thread; must not block on request work
/// (hand the Responder to a ticket callback instead).
using HttpHandler = std::function<void(const HttpRequest&, Responder)>;

/// Value-semantic handle over one listening server. The last handle stops
/// and joins the server.
class HttpServer {
 public:
  static Result<HttpServer> Start(HttpHandler handler,
                                  HttpServerConfig config = {});

  /// The bound port (resolves config.port == 0).
  uint16_t port() const;
  const HttpServerConfig& config() const;

  /// Stops accepting (new connects refused), drains in-flight requests for
  /// up to config.drain_ms, then shuts down every connection and joins all
  /// transport threads. Idempotent; also runs when the last handle drops.
  void Stop();

 private:
  explicit HttpServer(std::shared_ptr<internal::ServerState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::ServerState> state_;
};

}  // namespace stratrec::net

#endif  // STRATREC_NET_HTTP_SERVER_H_
