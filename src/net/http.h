// Minimal HTTP/1.1 message layer for the serving tier: value types for one
// request/response pair, deterministic serialization, and a buffered
// blocking reader over a connected socket.
//
// This is deliberately not a general HTTP stack — it implements exactly the
// slice the out-of-process front end needs (and nothing the container
// doesn't ship): content-length framing only (no chunked transfer, no
// trailers), CRLF or bare-LF line endings on input, keep-alive by default
// with `Connection: close` honored, and hard caps on head and body sizes so
// a misbehaving client fails fast with a 4xx instead of ballooning memory.
//
// Error taxonomy of HttpStream::ReadRequest, which the server maps straight
// to transport-level responses without touching a Service:
//
//   kCancelled         clean close before the first byte of a message
//                      (keep-alive teardown; not an error),
//   kInvalidArgument   malformed head, truncated body, unsupported framing
//                      -> 400,
//   kOutOfRange        declared Content-Length above the cap -> 413.
#ifndef STRATREC_NET_HTTP_H_
#define STRATREC_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace stratrec::net {

/// One parsed request. Header names compare case-insensitively via
/// FindHeader; insertion order is preserved (serialization is
/// deterministic, like the wire codec).
struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header named `name` (ASCII case-insensitive), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
  void AddHeader(std::string name, std::string value) {
    headers.emplace_back(std::move(name), std::move(value));
  }
  /// True when this request asks the server to close after the response
  /// (`Connection: close`, or an HTTP/1.0 peer without keep-alive).
  bool WantsClose() const;
};

/// One response. SerializeResponse appends the Content-Length header; every
/// other header travels verbatim in insertion order.
struct HttpResponse {
  int status_code = 200;
  std::string reason;  ///< empty = DefaultReason(status_code)
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
  void AddHeader(std::string name, std::string value) {
    headers.emplace_back(std::move(name), std::move(value));
  }
};

/// Canonical reason phrase ("OK", "Bad Request", ...); "Unknown" for codes
/// the serving tier never emits.
const char* DefaultReason(int status_code);

/// Wire form of a request/response, Content-Length included. Deterministic:
/// equal messages serialize to identical bytes.
std::string SerializeRequest(const HttpRequest& request);
std::string SerializeResponse(const HttpResponse& response);

/// A connected socket plus the read-ahead buffer that keep-alive framing
/// needs (bytes after one message's body belong to the next message).
/// Owns the fd. Reading and writing are independently thread-safe only in
/// the one-reader/one-writer sense the server uses; the struct itself adds
/// no locking.
class HttpStream {
 public:
  /// Takes ownership of a connected socket.
  explicit HttpStream(int fd) : fd_(fd) {}
  ~HttpStream();
  HttpStream(HttpStream&& other) noexcept;
  HttpStream& operator=(HttpStream&&) = delete;
  HttpStream(const HttpStream&) = delete;
  HttpStream& operator=(const HttpStream&) = delete;

  int fd() const { return fd_; }

  /// Blocks until one full request is framed (see the file comment for the
  /// error taxonomy).
  Result<HttpRequest> ReadRequest(size_t max_head_bytes, size_t max_body_bytes);
  /// Client side: blocks until one full response is framed.
  Result<HttpResponse> ReadResponse(size_t max_body_bytes);

  /// Writes all of `bytes` (send with SIGPIPE suppressed).
  Status Write(std::string_view bytes);

  /// Unblocks any in-flight read/write from another thread (shutdown
  /// RDWR); the fd stays open until destruction.
  void ShutdownBoth();
  /// Half-close the receive side (shutdown RD): a blocked ReadRequest sees
  /// clean EOF while writes keep flowing — the server's drain primitive
  /// (stop framing new requests, finish flushing queued responses).
  void ShutdownRead();
  /// Half-close: no more writes from this side (shutdown WR). The peer
  /// sees EOF after the bytes already sent — how a client signals a
  /// deliberately truncated body.
  void ShutdownSend();

 private:
  /// Reads up to and including the blank line; returns the head bytes.
  Result<std::string> ReadHead(size_t max_head_bytes);
  /// Moves exactly `length` body bytes into `out`.
  Status ReadBody(size_t length, std::string* out);
  /// Refills buffer_ from the socket. False on clean EOF.
  Result<bool> Fill();

  int fd_;
  std::string buffer_;  ///< read-ahead past the last framed message
};

namespace internal {
/// Shared head parsing, exposed for the transport tests: splits start-line
/// + headers, enforces the framing rules. `start_line` receives the
/// untouched first line.
Status ParseHead(std::string_view head, std::string* start_line,
                 std::vector<std::pair<std::string, std::string>>* headers);
/// Strict Content-Length extraction: 0 when absent, kInvalidArgument on
/// malformed/duplicate-mismatched values or chunked transfer-encoding,
/// kOutOfRange above `max_body_bytes`.
Result<size_t> ContentLength(
    const std::vector<std::pair<std::string, std::string>>& headers,
    size_t max_body_bytes);
}  // namespace internal

}  // namespace stratrec::net

#endif  // STRATREC_NET_HTTP_H_
