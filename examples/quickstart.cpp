// Quickstart: the paper's Example 1 (Table 1) end to end through the
// stratrec::Service facade.
//
// Three requesters submit deployment requests for sentence-translation
// tasks; the platform knows four deployment strategies. The platform
// constructs one Service over its catalog and submits the batch; the
// service serves what it can (d3 gets {s2, s3, s4}) and recommends
// alternative parameters for the others via ADPaR.
//
// Build & run:  cmake -B build && cmake --build build -j &&
//               ./build/examples/example_quickstart
#include <cstdio>

#include "src/api/service.h"
#include "src/common/ascii_table.h"

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;

int main() {
  // --- The platform's strategy catalog (Figure 2). Each strategy's
  // quality/cost/latency depend linearly on worker availability; the models
  // below reproduce Table 1's values at the example's availability W = 0.8.
  core::Catalog catalog;
  catalog.strategies = {
      {"s1", core::ParseStageName("SIM-COL-CRO").value()},
      {"s2", core::ParseStageName("SEQ-IND-CRO").value()},
      {"s3", core::ParseStageName("SIM-IND-CRO").value()},
      {"s4", core::ParseStageName("SIM-IND-HYB").value()},
  };
  // param(w) = alpha * w + beta, chosen so param(0.8) matches Table 1.
  catalog.profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},  // s1 -> (.50,.25,.28)
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},  // s2 -> (.75,.33,.28)
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},  // s3 -> (.80,.50,.14)
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},  // s4 -> (.88,.58,.14)
  };

  // --- One service per catalog; batches state the optimization goal.
  api::ServiceConfig config;
  config.batch.objective = core::Objective::kThroughput;
  config.batch.aggregation = core::AggregationMode::kMax;
  auto service = stratrec::Service::Create(std::move(catalog), config);
  if (!service.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  const auto& strategies = service->strategies();

  // --- The batch envelope: Table 1's requests (each asking for k = 3
  // strategies) plus the availability source — 50% chance of 700/1000
  // workers, 50% of 900/1000 -> W = 0.8 (Section 2.2).
  api::BatchRequest batch;
  batch.requests = {
      {"d1", {0.4, 0.17, 0.28}, 3},
      {"d2", {0.8, 0.20, 0.28}, 3},
      {"d3", {0.7, 0.83, 0.28}, 3},
  };
  batch.availability = api::AvailabilitySpec::FromPmf({{0.7, 0.5}, {0.9, 0.5}});

  auto report = service->SubmitBatch(batch);
  if (!report.ok()) {
    std::fprintf(stderr, "SubmitBatch failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("Report %s (algorithm %s) at expected availability W = %.2f\n\n",
              report->request_id.c_str(), report->algorithm.c_str(),
              report->availability);

  // --- Estimated strategy parameters at W (reproduces Table 1's lower
  // half).
  AsciiTable params({"strategy", "stage", "quality", "cost", "latency"});
  for (size_t j = 0; j < strategies.size(); ++j) {
    const core::ParamVector& p = report->result.aggregator.strategy_params[j];
    params.AddRow({strategies[j].id(), strategies[j].Describe(),
                   FormatDouble(p.quality, 2), FormatDouble(p.cost, 2),
                   FormatDouble(p.latency, 2)});
  }
  std::printf("Strategy parameters estimated at W = 0.8:\n");
  params.Print();

  // --- Batch outcomes + ADPaR alternatives.
  std::printf("\nBatch deployment outcomes:\n");
  AsciiTable outcomes({"request", "served", "strategies", "workforce"});
  for (const auto& outcome : report->result.aggregator.batch.outcomes) {
    std::string names;
    for (size_t j : outcome.strategies) {
      if (!names.empty()) names += ",";
      names += strategies[j].id();
    }
    outcomes.AddRow({batch.requests[outcome.request_index].id,
                     outcome.satisfied ? "yes" : "no",
                     names.empty() ? "-" : names,
                     FormatDouble(outcome.workforce, 3)});
  }
  outcomes.Print();

  std::printf("\nADPaR alternatives for unserved requests:\n");
  AsciiTable alternatives(
      {"request", "alt quality", "alt cost", "alt latency", "distance",
       "strategies"});
  for (const auto& alt : report->result.alternatives) {
    std::string names;
    for (size_t j : alt.result.strategies) {
      if (!names.empty()) names += ",";
      names += strategies[j].id();
    }
    alternatives.AddRow({batch.requests[alt.request_index].id,
                         FormatDouble(alt.result.alternative.quality, 2),
                         FormatDouble(alt.result.alternative.cost, 2),
                         FormatDouble(alt.result.alternative.latency, 2),
                         FormatDouble(alt.result.distance, 4), names});
  }
  alternatives.Print();
  return 0;
}
