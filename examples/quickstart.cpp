// Quickstart: the paper's Example 1 (Table 1) end to end through StratRec.
//
// Three requesters submit deployment requests for sentence-translation
// tasks; the platform knows four deployment strategies. StratRec serves the
// requests it can (d3 gets {s2, s3, s4}) and recommends alternative
// parameters for the others via ADPaR.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_quickstart
#include <cstdio>

#include "src/common/ascii_table.h"
#include "src/core/stratrec.h"

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace core = stratrec::core;

int main() {
  // --- The platform's strategy catalog (Figure 2). Each strategy's
  // quality/cost/latency depend linearly on worker availability; the models
  // below reproduce Table 1's values at the example's availability W = 0.8.
  std::vector<core::Strategy> strategies = {
      {"s1", core::ParseStageName("SIM-COL-CRO").value()},
      {"s2", core::ParseStageName("SEQ-IND-CRO").value()},
      {"s3", core::ParseStageName("SIM-IND-CRO").value()},
      {"s4", core::ParseStageName("SIM-IND-HYB").value()},
  };
  // param(w) = alpha * w + beta, chosen so param(0.8) matches Table 1.
  std::vector<core::StrategyProfile> profiles = {
      {{0.25, 0.30}, {0.3125, 0.00}, {-0.15, 0.40}},  // s1 -> (.50,.25,.28)
      {{0.25, 0.55}, {0.4125, 0.00}, {-0.15, 0.40}},  // s2 -> (.75,.33,.28)
      {{0.25, 0.60}, {0.6250, 0.00}, {-0.20, 0.30}},  // s3 -> (.80,.50,.14)
      {{0.25, 0.68}, {0.7250, 0.00}, {-0.20, 0.30}},  // s4 -> (.88,.58,.14)
  };

  auto stratrec = core::StratRec::Create(strategies, profiles);
  if (!stratrec.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 stratrec.status().ToString().c_str());
    return 1;
  }

  // --- Worker availability: 50% chance of 700/1000 workers, 50% of
  // 900/1000 -> W = 0.8 (Section 2.2).
  auto availability = core::AvailabilityModel::FromPmf(
      {{0.7, 0.5}, {0.9, 0.5}});
  if (!availability.ok()) return 1;
  std::printf("Expected worker availability W = %.2f\n\n",
              availability->ExpectedAvailability());

  // --- The batch of deployment requests (Table 1), each asking for k = 3
  // strategies.
  std::vector<core::DeploymentRequest> requests = {
      {"d1", {0.4, 0.17, 0.28}, 3},
      {"d2", {0.8, 0.20, 0.28}, 3},
      {"d3", {0.7, 0.83, 0.28}, 3},
  };

  core::StratRecOptions options;
  options.batch.objective = core::Objective::kThroughput;
  options.batch.aggregation = core::AggregationMode::kMax;
  auto report = stratrec->ProcessBatch(requests, *availability, options);
  if (!report.ok()) {
    std::fprintf(stderr, "ProcessBatch failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // --- Estimated strategy parameters at W (reproduces Table 1's lower
  // half).
  AsciiTable params({"strategy", "stage", "quality", "cost", "latency"});
  for (size_t j = 0; j < strategies.size(); ++j) {
    const core::ParamVector& p = report->aggregator.strategy_params[j];
    params.AddRow({strategies[j].id(), strategies[j].Describe(),
                   FormatDouble(p.quality, 2), FormatDouble(p.cost, 2),
                   FormatDouble(p.latency, 2)});
  }
  std::printf("Strategy parameters estimated at W = 0.8:\n");
  params.Print();

  // --- Batch outcomes + ADPaR alternatives.
  std::printf("\nBatch deployment outcomes:\n");
  AsciiTable outcomes({"request", "served", "strategies", "workforce"});
  for (const auto& outcome : report->aggregator.batch.outcomes) {
    std::string names;
    for (size_t j : outcome.strategies) {
      if (!names.empty()) names += ",";
      names += strategies[j].id();
    }
    outcomes.AddRow({requests[outcome.request_index].id,
                     outcome.satisfied ? "yes" : "no",
                     names.empty() ? "-" : names,
                     FormatDouble(outcome.workforce, 3)});
  }
  outcomes.Print();

  std::printf("\nADPaR alternatives for unserved requests:\n");
  AsciiTable alternatives(
      {"request", "alt quality", "alt cost", "alt latency", "distance",
       "strategies"});
  for (const auto& alt : report->alternatives) {
    std::string names;
    for (size_t j : alt.result.strategies) {
      if (!names.empty()) names += ",";
      names += strategies[j].id();
    }
    alternatives.AddRow({requests[alt.request_index].id,
                         FormatDouble(alt.result.alternative.quality, 2),
                         FormatDouble(alt.result.alternative.cost, 2),
                         FormatDouble(alt.result.alternative.latency, 2),
                         FormatDouble(alt.result.distance, 4), names});
  }
  alternatives.Print();
  return 0;
}
