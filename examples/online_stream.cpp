// Online stream of deployment requests — the paper's closing open problem
// (Section 7): requests arrive continuously, may be revoked, and worker
// availability changes between deployment windows. A platform opens a
// stream session on the stratrec::Service and feeds it uniform StreamEvent
// envelopes; the session prices each arrival with the Section 3.2 workforce
// machinery and behaves like a rolling BatchStrat.
//
// Run: ./build/examples/example_online_stream
#include <cstdio>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/common/rng.h"
#include "src/workload/generators.h"

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

namespace {

std::string UsedOverW(const api::StreamUpdate& update) {
  return FormatDouble(update.used_workforce, 2) + "/" +
         FormatDouble(update.availability, 2);
}

}  // namespace

int main() {
  workload::Generator generator({}, 2026);

  api::ServiceConfig config;
  config.batch.objective = core::Objective::kPayoff;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.availability = api::AvailabilitySpec::Fixed(0.7);
  auto service = stratrec::Service::Create(
      api::CatalogFromProfiles(generator.Profiles(100)), config);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    return 1;
  }

  auto session = service->OpenStream();
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n", session.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Streaming 30 events through session %s (W starts at 0.70)\n\n",
      session->id().c_str());
  AsciiTable log({"t", "event", "request", "decision", "used/W", "pending"});
  stratrec::Rng rng(7);
  std::vector<std::string> active_ids;
  int next_id = 0;

  for (int t = 0; t < 30; ++t) {
    const double roll = rng.Uniform();
    if (t == 15) {
      // The weekend window begins: availability drops.
      auto update = session->Submit(api::StreamEvent::AvailabilityChange(
          api::AvailabilitySpec::Fixed(0.55)));
      if (!update.ok()) continue;
      log.AddRow({std::to_string(t), "window change", "-", "W -> 0.55",
                  UsedOverW(*update), std::to_string(update->pending)});
      continue;
    }
    if (roll < 0.25 && !active_ids.empty()) {
      // A requester revokes (or a deployment completes).
      const auto pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(active_ids.size()) - 1));
      const std::string id = active_ids[pick];
      active_ids.erase(active_ids.begin() + static_cast<long>(pick));
      const bool revoke = rng.Bernoulli(0.5);
      auto update = session->Submit(revoke ? api::StreamEvent::Revocation(id)
                                           : api::StreamEvent::Completion(id));
      log.AddRow({std::to_string(t), revoke ? "revocation" : "completion", id,
                  update.ok() ? "ok" : update.status().ToString(),
                  update.ok() ? UsedOverW(*update) : "-",
                  std::to_string(session->pending())});
      continue;
    }
    // A new deployment request arrives.
    auto requests = generator.RequestsWithRanges(1, 2, {0.5, 0.75},
                                                 {0.7, 1.0}, {0.7, 1.0});
    requests[0].id = "req-" + std::to_string(next_id++);
    auto update = session->Submit(api::StreamEvent::Arrival(requests[0]));
    if (!update.ok()) continue;
    if (update->decision.kind == core::AdmissionDecision::Kind::kAdmitted) {
      active_ids.push_back(requests[0].id);
    }
    log.AddRow({std::to_string(t), "arrival", requests[0].id,
                api::AdmissionKindName(update->decision.kind),
                UsedOverW(*update), std::to_string(update->pending)});
  }
  log.Print();

  const auto stats = session->stats();
  std::printf(
      "\nStream summary: %zu arrivals, %zu admissions (incl. re-admits), "
      "%zu queued, %zu rejected,\n%zu revocations, %zu completions; accrued "
      "pay-off %.3f; peak utilization %.0f%%\n",
      stats.arrivals, stats.admitted, stats.queued, stats.rejected,
      stats.revoked, stats.completed, stats.objective,
      100.0 * stats.peak_utilization);
  const auto service_stats = service->stats();
  std::printf(
      "Service counters: %zu stream events across %zu session(s), "
      "%zu requests processed\n",
      service_stats.stream_events, service_stats.streams_opened,
      service_stats.requests_processed);
  return 0;
}
