// Online stream of deployment requests — the paper's closing open problem
// (Section 7): requests arrive continuously, may be revoked, and worker
// availability changes between deployment windows. The OnlineScheduler
// prices each arrival with the Section 3.2 workforce machinery and behaves
// like a rolling BatchStrat.
//
// Run: ./build/examples/example_online_stream
#include <cstdio>

#include "src/common/ascii_table.h"
#include "src/common/rng.h"
#include "src/core/online.h"
#include "src/workload/generators.h"

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

namespace {

const char* KindName(core::AdmissionDecision::Kind kind) {
  switch (kind) {
    case core::AdmissionDecision::Kind::kAdmitted:
      return "admitted";
    case core::AdmissionDecision::Kind::kQueued:
      return "queued";
    case core::AdmissionDecision::Kind::kRejected:
      return "rejected";
  }
  return "?";
}

}  // namespace

int main() {
  workload::Generator generator({}, 2026);
  const auto profiles = generator.Profiles(100);

  core::OnlineOptions options;
  options.batch.objective = core::Objective::kPayoff;
  options.batch.aggregation = core::AggregationMode::kMax;
  auto scheduler = core::OnlineScheduler::Create(profiles, 0.7, options);
  if (!scheduler.ok()) {
    std::fprintf(stderr, "scheduler: %s\n",
                 scheduler.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Streaming 30 events through the online scheduler (W starts at "
      "0.70)\n\n");
  AsciiTable log({"t", "event", "request", "decision", "used/W", "pending"});
  stratrec::Rng rng(7);
  std::vector<std::string> active_ids;
  int next_id = 0;

  for (int t = 0; t < 30; ++t) {
    const double roll = rng.Uniform();
    if (t == 15) {
      // The weekend window begins: availability drops.
      (void)scheduler->SetAvailability(0.55);
      log.AddRow({std::to_string(t), "window change", "-", "W -> 0.55",
                  FormatDouble(scheduler->used_workforce(), 2) + "/" +
                      FormatDouble(scheduler->availability(), 2),
                  std::to_string(scheduler->pending())});
      continue;
    }
    if (roll < 0.25 && !active_ids.empty()) {
      // A requester revokes (or a deployment completes).
      const auto pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(active_ids.size()) - 1));
      const std::string id = active_ids[pick];
      active_ids.erase(active_ids.begin() + static_cast<long>(pick));
      const bool revoke = rng.Bernoulli(0.5);
      const auto status = revoke ? scheduler->OnRevocation(id)
                                 : scheduler->OnCompletion(id);
      log.AddRow({std::to_string(t), revoke ? "revocation" : "completion", id,
                  status.ok() ? "ok" : status.ToString(),
                  FormatDouble(scheduler->used_workforce(), 2) + "/" +
                      FormatDouble(scheduler->availability(), 2),
                  std::to_string(scheduler->pending())});
      continue;
    }
    // A new deployment request arrives.
    auto requests = generator.RequestsWithRanges(1, 2, {0.5, 0.75},
                                                 {0.7, 1.0}, {0.7, 1.0});
    requests[0].id = "req-" + std::to_string(next_id++);
    auto decision = scheduler->OnArrival(requests[0]);
    if (!decision.ok()) continue;
    if (decision->kind == core::AdmissionDecision::Kind::kAdmitted) {
      active_ids.push_back(requests[0].id);
    }
    log.AddRow({std::to_string(t), "arrival", requests[0].id,
                KindName(decision->kind),
                FormatDouble(scheduler->used_workforce(), 2) + "/" +
                    FormatDouble(scheduler->availability(), 2),
                std::to_string(scheduler->pending())});
  }
  log.Print();

  const auto& stats = scheduler->stats();
  std::printf(
      "\nStream summary: %zu arrivals, %zu admissions (incl. re-admits), "
      "%zu queued, %zu rejected,\n%zu revocations, %zu completions; accrued "
      "pay-off %.3f; peak utilization %.0f%%\n",
      stats.arrivals, stats.admitted, stats.queued, stats.rejected,
      stats.revoked, stats.completed, stats.objective,
      100.0 * stats.peak_utilization);
  return 0;
}
