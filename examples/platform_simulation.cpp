// Platform simulation: the full Figure 1 loop on the simulated AMT
// platform — estimate worker availability from historical deployment
// traces, fit strategy parameter models from observed deployments, then
// hand the fitted catalog to the discrete-event platform simulator
// (src/sim/): seeded scenarios drive a stratrec::Service through Poisson
// and bursty arrival waves and a diurnal availability cycle, every run
// records a replayable journal, and the same (scenario, seed) reproduces
// the same decision schedule bit for bit at any worker-pool size.
//
// Run: ./build/examples/example_platform_simulation
#include <cstdio>
#include <string>
#include <vector>

#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/platform/amt.h"
#include "src/sim/engine.h"
#include "src/sim/scenario.h"
#include "src/sim/simulator.h"

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace core = stratrec::core;
namespace platform = stratrec::platform;
namespace sim = stratrec::sim;

int main() {
  const auto task_type = platform::TaskType::kSentenceTranslation;

  // --- The platform: 1000 workers with window-dependent presence.
  platform::AmtStudyOptions options;
  platform::AmtSimulator amt(options, /*seed=*/20260610);
  std::printf("Simulated platform: %zu workers, %zu suitable for %s tasks\n",
              amt.pool().workers().size(),
              amt.pool().SuitableWorkerCount(task_type),
              platform::TaskTypeName(task_type));

  // --- Availability estimation from 20 historical deployments in the
  // early-week window (Section 2.1: a PMF whose expectation StratRec uses).
  stratrec::Rng rng(99);
  auto availability = amt.pool().EstimateAvailability(
      platform::DeploymentWindow::kEarlyWeek, task_type,
      /*deployments=*/20, &rng);
  if (!availability.ok()) {
    std::fprintf(stderr, "availability estimation failed: %s\n",
                 availability.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Estimated availability PMF for the early-week window: %zu atoms, "
      "E[W] = %.3f\n",
      availability->pmf().atoms().size(),
      availability->ExpectedAvailability());

  // --- Strategy catalog: all 8 single-stage strategies with models fitted
  // from simulated historical deployments.
  auto catalog = amt.BuildCatalog(task_type);
  if (!catalog.ok()) {
    std::fprintf(stderr, "model fitting failed: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  std::printf("Fitted linear models for %zu strategies.\n\n",
              catalog->strategies.size());

  // --- Drive the fitted catalog through three simulator scenarios: steady
  // Poisson arrivals, burst/drain waves, and a diurnal availability cycle
  // with virtual-time-stamped stats checkpoints. The diurnal run (last)
  // records the journal the CI replay smoke reproduces bit for bit.
  const char* kJournalPath = "platform_simulation.journal";
  const std::vector<std::string> names = {"poisson", "bursty", "diurnal"};
  AsciiTable sweep({"scenario", "batches", "requests", "satisfied",
                    "alternatives", "W changes", "p95 latency", "digest"});
  sim::SimReport journaled;
  for (const std::string& name : names) {
    auto scenario = sim::FindScenario(name);
    if (!scenario.ok()) {
      std::fprintf(stderr, "unknown scenario: %s\n",
                   scenario.status().ToString().c_str());
      return 1;
    }
    // A short horizon keeps the example quick; the full-length sweep lives
    // in bench_platform_sim.
    sim::ScaleScenario(&*scenario, /*ticks=*/48.0, scenario->strategies);

    sim::RunOptions run;
    run.seed = 20260610;
    run.worker_threads = 4;
    run.catalog = *catalog;  // tenant 0 serves the AMT-fitted catalog
    if (name == "diurnal") run.journal_path = kJournalPath;
    auto report = sim::RunScenario(*scenario, run);
    if (!report.ok()) {
      std::fprintf(stderr, "scenario %s failed: %s\n", name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    sweep.AddRow({report->scenario, std::to_string(report->batches_submitted),
                  std::to_string(report->requests_submitted),
                  std::to_string(report->requests_satisfied),
                  std::to_string(report->alternatives_served),
                  std::to_string(report->availability_changes),
                  FormatDouble(report->latency.p95, 2) + " ticks",
                  sim::ScheduleDigest::Hex(report->schedule_digest)});
    if (name == "diurnal") journaled = std::move(*report);
  }
  sweep.Print();

  // --- The determinism contract, demonstrated: the same (scenario, seed)
  // at a *different* pool size must reproduce the same decision schedule.
  auto scenario = sim::FindScenario("diurnal");
  sim::ScaleScenario(&*scenario, 48.0, scenario->strategies);
  sim::RunOptions rerun;
  rerun.seed = 20260610;
  rerun.worker_threads = 1;
  rerun.catalog = *catalog;
  auto replayed = sim::RunScenario(*scenario, rerun);
  if (!replayed.ok()) {
    std::fprintf(stderr, "rerun failed: %s\n",
                 replayed.status().ToString().c_str());
    return 1;
  }
  if (replayed->schedule_digest != journaled.schedule_digest) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: pool 1 digest %s != pool 4 digest "
                 "%s\n",
                 sim::ScheduleDigest::Hex(replayed->schedule_digest).c_str(),
                 sim::ScheduleDigest::Hex(journaled.schedule_digest).c_str());
    return 1;
  }
  std::printf(
      "\nDeterminism: pool 1 and pool 4 runs of (diurnal, seed 20260610) "
      "agree on schedule digest %s.\n",
      sim::ScheduleDigest::Hex(journaled.schedule_digest).c_str());

  const stratrec::api::ServiceStats& stats = journaled.service_stats;
  std::printf(
      "Journaled run: %zu batches, %zu requests processed, %zu events "
      "fired over %.0f virtual ticks (cache: %zu hits / %zu misses).\n",
      stats.batches, stats.requests_processed, journaled.events_fired,
      journaled.virtual_duration, stats.cache_hits, stats.cache_misses);
  std::printf(
      "Trace recorded to %s — replay it with:\n"
      "  ./build/bench/bench_replay_load %s\n",
      kJournalPath, kJournalPath);
  return 0;
}
