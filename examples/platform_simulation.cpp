// Platform simulation: the full Figure 1 loop on the simulated AMT
// platform — estimate worker availability from historical deployment
// traces, fit strategy parameter models from observed deployments, stand up
// a stratrec::Service over the fitted catalog, then run a batch of
// sentence-translation deployment requests through it and print
// recommendations plus ADPaR alternatives.
//
// Run: ./build/examples/example_platform_simulation
#include <cstdio>

#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/platform/amt.h"

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;
namespace platform = stratrec::platform;

int main() {
  const auto task_type = platform::TaskType::kSentenceTranslation;

  // --- The platform: 1000 workers with window-dependent presence.
  platform::AmtStudyOptions options;
  platform::AmtSimulator amt(options, /*seed=*/20260610);
  std::printf("Simulated platform: %zu workers, %zu suitable for %s tasks\n",
              amt.pool().workers().size(),
              amt.pool().SuitableWorkerCount(task_type),
              platform::TaskTypeName(task_type));

  // --- Availability estimation from 20 historical deployments in the
  // early-week window (Section 2.1: a PMF whose expectation StratRec uses).
  stratrec::Rng rng(99);
  auto availability = amt.pool().EstimateAvailability(
      platform::DeploymentWindow::kEarlyWeek, task_type,
      /*deployments=*/20, &rng);
  if (!availability.ok()) {
    std::fprintf(stderr, "availability estimation failed: %s\n",
                 availability.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Estimated availability PMF for the early-week window: %zu atoms, "
      "E[W] = %.3f\n\n",
      availability->pmf().atoms().size(),
      availability->ExpectedAvailability());

  // --- Strategy catalog: all 8 single-stage strategies with models fitted
  // from simulated historical deployments, fronted by one Service.
  auto catalog = amt.BuildCatalog(task_type);
  if (!catalog.ok()) {
    std::fprintf(stderr, "model fitting failed: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  api::ServiceConfig config;
  config.batch.objective = core::Objective::kPayoff;
  config.batch.aggregation = core::AggregationMode::kMax;
  auto service = stratrec::Service::Create(std::move(*catalog), config);
  if (!service.ok()) {
    std::fprintf(stderr, "service setup failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf("Fitted linear models for %zu strategies.\n\n",
              service->strategies().size());

  // --- Register the estimated window model; batches refer to it by name.
  if (auto st = service->RegisterAvailabilityModel("early-week",
                                                   std::move(*availability));
      !st.ok()) {
    std::fprintf(stderr, "model registration failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  // --- A batch of deployment requests from different requesters.
  api::BatchRequest batch;
  batch.requests = {
      {"newsroom",  {0.75, 0.60, 0.70}, 2},  // high quality, moderate budget
      {"hobbyist",  {0.60, 0.30, 0.90}, 1},  // cheap and relaxed
      {"archive",   {0.70, 0.80, 0.50}, 3},  // fast turnaround
      {"perfection",{0.97, 0.15, 0.20}, 2},  // unrealistic -> ADPaR
  };
  batch.availability = api::AvailabilitySpec::Named("early-week");

  auto report = service->SubmitBatch(batch);
  if (!report.ok()) {
    std::fprintf(stderr, "SubmitBatch failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("Batch %s outcomes at W = %.3f (pay-off objective):\n",
              report->request_id.c_str(), report->availability);
  AsciiTable outcomes({"request", "served", "strategies", "workforce"});
  const auto& strategies = service->strategies();
  for (const auto& outcome : report->result.aggregator.batch.outcomes) {
    std::string names;
    for (size_t j : outcome.strategies) {
      if (!names.empty()) names += ",";
      names += strategies[j].Describe();
    }
    outcomes.AddRow({batch.requests[outcome.request_index].id,
                     outcome.satisfied ? "yes" : "no",
                     names.empty() ? "-" : names,
                     FormatDouble(outcome.workforce, 3)});
  }
  outcomes.Print();

  std::printf("\nADPaR alternatives:\n");
  AsciiTable alternatives({"request", "alternative d'", "distance"});
  for (const auto& alt : report->result.alternatives) {
    alternatives.AddRow({batch.requests[alt.request_index].id,
                         alt.result.alternative.ToString(),
                         FormatDouble(alt.result.distance, 4)});
  }
  if (report->result.alternatives.empty()) {
    alternatives.AddRow({"-", "-", "-"});
  }
  alternatives.Print();
  std::printf(
      "(a distance of 0 means the request was capacity-blocked, not "
      "infeasible:\n resubmitting the same parameters in a later batch can "
      "succeed)\n");

  // --- Deploy the first served request for real and report the outcome.
  for (const auto& outcome : report->result.aggregator.batch.outcomes) {
    if (!outcome.satisfied || outcome.strategies.empty()) continue;
    const auto& strategy = strategies[outcome.strategies.front()];
    std::printf("\nDeploying '%s' with %s ...\n",
                batch.requests[outcome.request_index].id.c_str(),
                strategy.Describe().c_str());
    platform::ExecutionSimulator executor(&amt.pool(),
                                          platform::ExecutionOptions{}, 7);
    const auto hit = platform::MakeHit("deploy", task_type,
                                       platform::SampleTasks(task_type));
    const auto deployed = executor.ExecuteAtAvailability(
        hit, strategy.stages().front(),
        report->availability, /*guided=*/true);
    std::printf(
        "observed quality %.2f, cost %.2f, latency %.2f (%d edits, %d "
        "conflicts)\n",
        deployed.observed.quality, deployed.observed.cost,
        deployed.observed.latency, deployed.num_edits, deployed.num_conflicts);
    break;
  }
  return 0;
}
