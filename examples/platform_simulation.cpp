// Platform simulation: the full Figure 1 loop on the simulated AMT
// platform — estimate worker availability from historical deployment
// traces, fit strategy parameter models from observed deployments, stand up
// a stratrec::Service over the fitted catalog, then drive it the way a real
// deployment would: several requester fronts submit their batches
// *concurrently* through the asynchronous ticket API, completion callbacks
// record the order the worker pool finishes them, and the early-week batch
// is unpacked in detail (recommendations plus ADPaR alternatives).
//
// Run: ./build/examples/example_platform_simulation
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/platform/amt.h"

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;
namespace platform = stratrec::platform;

int main() {
  const auto task_type = platform::TaskType::kSentenceTranslation;

  // --- The platform: 1000 workers with window-dependent presence.
  platform::AmtStudyOptions options;
  platform::AmtSimulator amt(options, /*seed=*/20260610);
  std::printf("Simulated platform: %zu workers, %zu suitable for %s tasks\n",
              amt.pool().workers().size(),
              amt.pool().SuitableWorkerCount(task_type),
              platform::TaskTypeName(task_type));

  // --- Availability estimation from 20 historical deployments in the
  // early-week window (Section 2.1: a PMF whose expectation StratRec uses).
  stratrec::Rng rng(99);
  auto availability = amt.pool().EstimateAvailability(
      platform::DeploymentWindow::kEarlyWeek, task_type,
      /*deployments=*/20, &rng);
  if (!availability.ok()) {
    std::fprintf(stderr, "availability estimation failed: %s\n",
                 availability.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Estimated availability PMF for the early-week window: %zu atoms, "
      "E[W] = %.3f\n\n",
      availability->pmf().atoms().size(),
      availability->ExpectedAvailability());

  // --- Strategy catalog: all 8 single-stage strategies with models fitted
  // from simulated historical deployments, fronted by one Service whose
  // worker pool serves every requester below.
  auto catalog = amt.BuildCatalog(task_type);
  if (!catalog.ok()) {
    std::fprintf(stderr, "model fitting failed: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  api::ServiceConfig config;
  config.batch.objective = core::Objective::kPayoff;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.execution.worker_threads = 4;
  // Record this session: the journal carries the config, the fitted
  // catalog, and every (request, report) pair, so bench_replay_load can
  // rebuild the service and reproduce the reports bit for bit.
  config.journal.path = "platform_simulation.journal";
  auto service = stratrec::Service::Create(std::move(*catalog), config);
  if (!service.ok()) {
    std::fprintf(stderr, "service setup failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf("Fitted linear models for %zu strategies; service pool: %zu "
              "worker threads.\n\n",
              service->strategies().size(), service->worker_threads());

  // --- Register the estimated window model; batches refer to it by name.
  if (auto st = service->RegisterAvailabilityModel("early-week",
                                                   std::move(*availability));
      !st.ok()) {
    std::fprintf(stderr, "model registration failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  // --- Three requester fronts, each with its own batch and its own view of
  // worker availability, submitting concurrently against one service.
  struct Front {
    const char* label;
    api::BatchRequest batch;
  };
  std::vector<Front> fronts(3);
  fronts[0].label = "early-week";
  fronts[0].batch.requests = {
      {"newsroom",  {0.75, 0.60, 0.70}, 2},  // high quality, moderate budget
      {"hobbyist",  {0.60, 0.30, 0.90}, 1},  // cheap and relaxed
      {"archive",   {0.70, 0.80, 0.50}, 3},  // fast turnaround
      {"perfection",{0.97, 0.15, 0.20}, 2},  // unrealistic -> ADPaR
  };
  fronts[0].batch.availability = api::AvailabilitySpec::Named("early-week");
  fronts[1].label = "weekend-lull";
  fronts[1].batch.requests = {
      {"newsletter", {0.65, 0.50, 0.80}, 2},
      {"caption-qa", {0.80, 0.70, 0.60}, 2},
  };
  fronts[1].batch.availability = api::AvailabilitySpec::Fixed(0.45);
  fronts[2].label = "prime-time";
  fronts[2].batch.requests = {
      {"docs-sprint", {0.72, 0.65, 0.55}, 3},
      {"forum-triage",{0.55, 0.25, 0.95}, 1},
      {"press-kit",   {0.85, 0.75, 0.40}, 2},
  };
  fronts[2].batch.availability = api::AvailabilitySpec::Fixed(0.85);

  // Submit every front without waiting; callbacks record completion order.
  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  std::vector<stratrec::Ticket<api::BatchReport>> tickets;
  tickets.reserve(fronts.size());
  for (Front& front : fronts) {
    tickets.push_back(service->SubmitBatchAsync(front.batch));
    const char* label = front.label;
    (void)tickets.back().OnComplete(
        [label, &order_mutex, &completion_order](
            const stratrec::Result<api::BatchReport>& report) {
          std::lock_guard<std::mutex> lock(order_mutex);
          completion_order.push_back(std::string(label) +
                                     (report.ok() ? "" : " (failed)"));
        });
    std::printf("submitted %-12s as ticket %s\n", front.label,
                tickets.back().id().c_str());
  }

  // Gather the reports (submission order keeps the output stable; the pool
  // may well have finished them in another order — see the callback log).
  std::vector<api::BatchReport> reports;
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto report = tickets[i].Wait();
    if (!report.ok()) {
      std::fprintf(stderr, "%s batch failed: %s\n", fronts[i].label,
                   report.status().ToString().c_str());
      return 1;
    }
    reports.push_back(std::move(*report));
  }
  {
    std::lock_guard<std::mutex> lock(order_mutex);
    std::string joined;
    for (const std::string& label : completion_order) {
      if (!joined.empty()) joined += ", ";
      joined += label;
    }
    std::printf("pool completion order: %s\n\n", joined.c_str());
  }

  AsciiTable summary(
      {"front", "ticket", "W", "served", "alternatives"});
  for (size_t i = 0; i < reports.size(); ++i) {
    const core::BatchResult& batch = reports[i].result.aggregator.batch;
    summary.AddRow({fronts[i].label, reports[i].request_id,
                    FormatDouble(reports[i].availability, 3),
                    std::to_string(batch.satisfied.size()) + "/" +
                        std::to_string(batch.outcomes.size()),
                    std::to_string(reports[i].result.alternatives.size())});
  }
  summary.Print();

  // --- The early-week batch in detail.
  const api::BatchReport& report = reports.front();
  const std::vector<core::DeploymentRequest>& requests =
      fronts.front().batch.requests;
  std::printf("\nBatch %s outcomes at W = %.3f (pay-off objective):\n",
              report.request_id.c_str(), report.availability);
  AsciiTable outcomes({"request", "served", "strategies", "workforce"});
  const auto& strategies = service->strategies();
  for (const auto& outcome : report.result.aggregator.batch.outcomes) {
    std::string names;
    for (size_t j : outcome.strategies) {
      if (!names.empty()) names += ",";
      names += strategies[j].Describe();
    }
    outcomes.AddRow({requests[outcome.request_index].id,
                     outcome.satisfied ? "yes" : "no",
                     names.empty() ? "-" : names,
                     FormatDouble(outcome.workforce, 3)});
  }
  outcomes.Print();

  std::printf("\nADPaR alternatives:\n");
  AsciiTable alternatives({"request", "alternative d'", "distance"});
  for (const auto& alt : report.result.alternatives) {
    alternatives.AddRow({requests[alt.request_index].id,
                         alt.result.alternative.ToString(),
                         FormatDouble(alt.result.distance, 4)});
  }
  if (report.result.alternatives.empty()) {
    alternatives.AddRow({"-", "-", "-"});
  }
  alternatives.Print();
  std::printf(
      "(a distance of 0 means the request was capacity-blocked, not "
      "infeasible:\n resubmitting the same parameters in a later batch can "
      "succeed)\n");

  // --- Deploy the first served request for real and report the outcome.
  for (const auto& outcome : report.result.aggregator.batch.outcomes) {
    if (!outcome.satisfied || outcome.strategies.empty()) continue;
    const auto& strategy = strategies[outcome.strategies.front()];
    std::printf("\nDeploying '%s' with %s ...\n",
                requests[outcome.request_index].id.c_str(),
                strategy.Describe().c_str());
    platform::ExecutionSimulator executor(&amt.pool(),
                                          platform::ExecutionOptions{}, 7);
    const auto hit = platform::MakeHit("deploy", task_type,
                                       platform::SampleTasks(task_type));
    const auto deployed = executor.ExecuteAtAvailability(
        hit, strategy.stages().front(),
        report.availability, /*guided=*/true);
    std::printf(
        "observed quality %.2f, cost %.2f, latency %.2f (%d edits, %d "
        "conflicts)\n",
        deployed.observed.quality, deployed.observed.cost,
        deployed.observed.latency, deployed.num_edits, deployed.num_conflicts);
    break;
  }

  const api::ServiceStats stats = service->stats();
  std::printf("\nService lifetime: %zu batches, %zu requests processed "
              "(executor: %zu queued, %zu active).\n",
              stats.batches, stats.requests_processed, stats.queue_depth,
              stats.active_workers);
  std::printf(
      "Trace recorded to %s — replay it with:\n"
      "  ./build/bench/bench_replay_load %s\n",
      config.journal.path.c_str(), config.journal.path.c_str());
  return 0;
}
