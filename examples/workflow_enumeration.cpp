// Workflow enumeration: the paper's Section 2.1 observation that the
// strategy space explodes combinatorially — with x workflow stages there are
// 8^x possible strategies (1,073,741,824 for x = 10). This example
// enumerates all two-stage Turkomatic-style workflows, scores them with a
// simple compositional parameter model, stands up a stratrec::Service over
// the resulting 64-strategy catalog and asks its sweep mode for the closest
// satisfiable alternative to an aggressive request.
//
// Run: ./build/examples/example_workflow_enumeration
#include <cstdio>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/core/strategy.h"
#include "src/platform/ground_truth.h"

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;
namespace platform = stratrec::platform;

namespace {

// Compositional model for a multi-stage workflow at availability w: the
// artifact's quality is the best stage's quality plus a refinement bonus
// (each extra stage closes 25% of the remaining gap), while costs and
// latencies accumulate (normalized by the stage count so the catalog stays
// in [0, 1]).
core::ParamVector WorkflowParams(const core::Strategy& workflow, double w) {
  double quality = 0.0;
  double cost = 0.0;
  double latency = 0.0;
  bool first = true;
  for (const core::StageSpec& stage : workflow.stages()) {
    const auto profile =
        platform::TrueProfile(platform::TaskType::kTextCreation, stage);
    const core::ParamVector p = profile.EstimateParams(w);
    if (first) {
      quality = p.quality;
      first = false;
    } else {
      quality = std::max(quality, p.quality);
      quality += 0.25 * (1.0 - quality);  // refinement pass
    }
    cost += p.cost;
    latency += p.latency;
  }
  const auto stages = static_cast<double>(workflow.num_stages());
  return core::ParamVector{std::min(1.0, quality),
                           std::min(1.0, cost / stages),
                           std::min(1.0, latency / stages)};
}

}  // namespace

int main() {
  // --- The combinatorial explosion (paper Section 2.1).
  std::printf("Number of possible workflows with x stages (8^x):\n");
  AsciiTable counts({"stages", "workflows"});
  for (int x : {1, 2, 3, 5, 10}) {
    counts.AddRow({std::to_string(x),
                   std::to_string(core::CountWorkflows(x).value())});
  }
  counts.Print();

  // --- Materialize every 2-stage workflow.
  auto workflows = core::EnumerateWorkflows(2);
  if (!workflows.ok()) {
    std::fprintf(stderr, "enumeration failed: %s\n",
                 workflows.status().ToString().c_str());
    return 1;
  }
  std::printf("\nEnumerated %zu two-stage workflows.\n", workflows->size());

  const double availability = 0.8;
  std::vector<core::ParamVector> params;
  params.reserve(workflows->size());
  for (const auto& workflow : *workflows) {
    params.push_back(WorkflowParams(workflow, availability));
  }

  // --- One service over the enumerated catalog (the workflow parameters
  // are already evaluated at W, so the catalog is availability-constant).
  core::Catalog catalog = api::ConstantCatalog(params, "w");
  catalog.strategies = *workflows;
  auto service = stratrec::Service::Create(std::move(catalog));
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    return 1;
  }

  // --- Ask for an aggressive deployment; the sweep relaxes it minimally.
  api::SweepRequest sweep;
  sweep.targets = {{"aggressive", {0.9, 0.45, 0.5}, 4}};
  auto report = service->RunSweep(sweep);
  if (!report.ok()) {
    std::fprintf(stderr, "RunSweep failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const api::SweepOutcome& outcome = report->outcomes.front();
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "no alternative: %s\n",
                 outcome.status.ToString().c_str());
    return 1;
  }

  std::printf(
      "\nRequest %s has no exact match among the %zu workflows;\n"
      "closest alternative %s (distance %.4f, solver %s) admits:\n",
      sweep.targets[0].thresholds.ToString().c_str(), workflows->size(),
      outcome.result.alternative.ToString().c_str(), outcome.result.distance,
      outcome.solver.c_str());
  AsciiTable chosen({"workflow", "quality", "cost", "latency"});
  for (size_t j : outcome.result.strategies) {
    chosen.AddRow({(*workflows)[j].Describe(),
                   FormatDouble(params[j].quality, 3),
                   FormatDouble(params[j].cost, 3),
                   FormatDouble(params[j].latency, 3)});
  }
  chosen.Print();
  return 0;
}
