// ADPaR walkthrough: reproduces the paper's Section 4 worked example
// (Tables 2-4) for request d2 of Example 1 — the per-strategy relaxation
// matrix, the sorted (R, I, D) lists, the candidate alternatives the sweep
// evaluates, and the final recommendation, side by side with the paper's
// literal sweep and the baselines via stratrec::Service::RunSweep.
//
// Run: ./build/examples/example_adpar_walkthrough
#include <cstdio>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/core/adpar.h"

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;

int main() {
  // Table 1's strategies and the unsatisfiable request d2.
  const std::vector<core::ParamVector> strategies = {
      {0.50, 0.25, 0.28},  // s1
      {0.75, 0.33, 0.28},  // s2
      {0.80, 0.50, 0.14},  // s3
      {0.88, 0.58, 0.14},  // s4
  };
  const core::ParamVector d2{0.8, 0.20, 0.28};
  const int k = 3;

  std::printf("ADPaR walkthrough for d2 = %s, k = %d\n\n",
              d2.ToString().c_str(), k);

  // --- The algorithm internals (paper Tables 3-4), from the core solver's
  // execution trace; the facade's sweep mode below compares final outputs.
  core::AdparTrace trace;
  auto result = core::AdparExact(strategies, d2, k, &trace);
  if (!result.ok()) {
    std::fprintf(stderr, "ADPaR failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // --- Step 1 (paper Table 3): per-strategy relaxation requirements.
  std::printf("Step 1 - required relaxation per strategy and parameter:\n");
  AsciiTable step1({"strategy", "cost", "quality", "latency"});
  for (const auto& rel : trace.relaxations) {
    step1.AddRow({"s" + std::to_string(rel.strategy + 1),
                  FormatDouble(rel.by_axis[1], 2),
                  FormatDouble(rel.by_axis[0], 2),
                  FormatDouble(rel.by_axis[2], 2)});
  }
  step1.Print();

  // --- Step 2 (paper Table 4): sorted relaxation list R with index I and
  // parameter D.
  std::printf("\nStep 2 - sorted relaxations (R / I / D):\n");
  AsciiTable step2({"R (relaxation)", "I (strategy)", "D (parameter)"});
  for (const auto& entry : trace.sorted) {
    step2.AddRow({FormatDouble(entry.relaxation, 2),
                  "s" + std::to_string(entry.strategy + 1),
                  core::ParamAxisName(entry.axis)});
  }
  step2.Print();

  // --- Step 3/4: the candidate alternatives the sweep evaluated.
  std::printf("\nSweep candidates (quality level x cost level, tight "
              "latency):\n");
  AsciiTable candidates({"d'.quality", "d'.cost", "d'.latency", "distance^2"});
  for (const auto& candidate : trace.candidates) {
    candidates.AddRow({FormatDouble(candidate.d_prime.quality, 2),
                       FormatDouble(candidate.d_prime.cost, 2),
                       FormatDouble(candidate.d_prime.latency, 2),
                       FormatDouble(candidate.squared_distance, 4)});
  }
  candidates.Print();

  // --- Final recommendation vs the whole registered solver family, through
  // the facade's sweep mode.
  auto service = stratrec::Service::Create(api::ConstantCatalog(strategies));
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    return 1;
  }
  api::SweepRequest sweep;
  sweep.targets = {{"d2", d2, k}};
  sweep.solvers = {"exact", "paper-sweep", "brute", "baseline2", "baseline3"};
  auto sweep_report = service->RunSweep(sweep);
  if (!sweep_report.ok()) {
    std::fprintf(stderr, "RunSweep failed: %s\n",
                 sweep_report.status().ToString().c_str());
    return 1;
  }

  std::printf("\nFinal recommendations (sweep %s):\n",
              sweep_report->request_id.c_str());
  AsciiTable finals({"solver", "d'", "distance", "strategies"});
  for (const auto& outcome : sweep_report->outcomes) {
    if (!outcome.status.ok()) {
      finals.AddRow({outcome.solver, outcome.status.ToString(), "-", "-"});
      continue;
    }
    std::string names;
    for (size_t j : outcome.result.strategies) {
      if (!names.empty()) names += ",";
      names += "s" + std::to_string(j + 1);
    }
    finals.AddRow({outcome.solver, outcome.result.alternative.ToString(),
                   FormatDouble(outcome.result.distance, 4), names});
  }
  finals.Print();

  std::printf(
      "\nNote: the paper's text (Section 4.1) states the alternative\n"
      "(0.75, 0.50, 0.28) with {s1, s2, s3}; that box covers only {s2, s3}\n"
      "(s1.quality = 0.50 < 0.75), so it violates the k = 3 constraint. The\n"
      "optimum under Equation 3 is the one printed above; see "
      "EXPERIMENTS.md.\n");
  return 0;
}
