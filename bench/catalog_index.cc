// CatalogIndex micro-benchmark: the repeated-availability batch workload.
//
// A platform in steady state serves batch after batch at the same expected
// availability W. Everything that depends only on (catalog, W) — the
// estimated parameter block, ADPaR's sorted orderings and skyline pruning
// tables — is per-batch work on the unindexed path and one-time work on the
// indexed one. This driver times the full StratRec pipeline both ways over
// identical batches (reports are bit-identical by construction — the
// property tests in tests/catalog_index_test.cc pin that) and records the
// throughput ratio at |S| in {10k, 100k, 1M} as JSON.
//
// The workload mirrors the paper's Figure 18 setup (m = 10 requests per
// batch, k = 10) with thresholds tuned so requests are *capacity-blocked*:
// parameter-feasible at W but unservable within the workforce budget, so
// every batch exercises the ADPaR leg — the regime where the per-request
// O(|S| log |S|) sort dominates the unindexed path.
//
// The indexed leg is timed twice — once with kernel dispatch forced to
// scalar, once at the active level — so one run measures the SIMD win on the
// same workload (simd_speedup in the JSON; ~1.0 on non-AVX2 hosts where the
// active level *is* scalar).
//
// Usage: bench_catalog_index [sizes_csv] [batches] [requests_per_batch]
//                            [mode] [output_path]
//        (defaults: 10000,100000,1000000  8  10  full  catalog_index.json)
//        mode "indexed-only" skips the unindexed leg (whose 1M run costs
//        ~50s) — the CI dispatch assertion uses it.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/api/catalog.h"
#include "src/common/ascii_table.h"
#include "src/core/kernels/kernels.h"
#include "src/core/stratrec.h"
#include "src/workload/generators.h"

namespace {

namespace core = stratrec::core;
namespace workload = stratrec::workload;

constexpr double kAvailability = 0.50;

struct LegResult {
  double seconds = 0.0;
  double batches_per_sec = 0.0;
  size_t alternatives = 0;
};

struct SizeResult {
  size_t strategies = 0;
  size_t batches = 0;
  size_t requests_per_batch = 0;
  LegResult unindexed;
  LegResult indexed;         // active kernel dispatch
  LegResult indexed_scalar;  // kernel dispatch forced to scalar
  double speedup = 0.0;       // unindexed vs indexed (active dispatch)
  double simd_speedup = 0.0;  // indexed scalar vs indexed active
  double snapshot_build_seconds = 0.0;
  uint64_t index_build_nanos = 0;
};

std::vector<size_t> ParseSizes(const char* arg) {
  std::vector<size_t> sizes;
  const std::string csv = arg;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    sizes.push_back(std::strtoull(csv.substr(pos, next - pos).c_str(),
                                  nullptr, 10));
    pos = next + 1;
  }
  return sizes;
}

LegResult RunLeg(const core::StratRec& stratrec,
                 const std::vector<std::vector<core::DeploymentRequest>>& batches,
                 const core::StratRecOptions& options) {
  // One untimed warm-up batch: first-touch effects, plus the lazy index /
  // snapshot-ordering builds on the indexed leg (the steady-state regime
  // this bench measures is "per-W state already resident").
  auto warmup = stratrec.ProcessBatchAtAvailability(batches.front(),
                                                    kAvailability, options);
  if (!warmup.ok()) {
    std::fprintf(stderr, "warm-up batch failed: %s\n",
                 warmup.status().ToString().c_str());
    std::exit(1);
  }

  LegResult leg;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& requests : batches) {
    auto report =
        stratrec.ProcessBatchAtAvailability(requests, kAvailability, options);
    if (!report.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
    leg.alternatives += report->alternatives.size();
  }
  leg.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  leg.batches_per_sec =
      leg.seconds > 0.0 ? static_cast<double>(batches.size()) / leg.seconds
                        : 0.0;
  return leg;
}

SizeResult RunSize(size_t num_strategies, size_t num_batches,
                   size_t requests_per_batch, bool indexed_only) {
  workload::Generator generator({}, 0xCA7A'0106ull);
  const auto profiles =
      generator.Profiles(static_cast<int>(num_strategies));
  auto stratrec = core::StratRec::Create(
      stratrec::api::CatalogFromProfiles(profiles).strategies, profiles);
  if (!stratrec.ok()) {
    std::fprintf(stderr, "catalog setup failed: %s\n",
                 stratrec.status().ToString().c_str());
    std::exit(1);
  }

  // Capacity-blocked requests: quality demands above what any strategy
  // delivers at w = 0 (so per-request workforce requirements are bounded
  // away from zero and the k-sum exceeds W), budgets generous enough that
  // >= k strategies still satisfy the thresholds at params(W) — ADPaR then
  // certifies each unserved request with a (near-)zero-distance
  // alternative, the fast early-exit regime.
  std::vector<std::vector<core::DeploymentRequest>> batches(num_batches);
  for (auto& requests : batches) {
    requests = generator.RequestsWithRanges(
        static_cast<int>(requests_per_batch), /*k=*/10,
        /*quality=*/{0.75, 0.80}, /*cost=*/{0.90, 1.0},
        /*latency=*/{1.0, 1.0});
  }

  SizeResult result;
  result.strategies = num_strategies;
  result.batches = num_batches;
  result.requests_per_batch = requests_per_batch;

  core::StratRecOptions unindexed;
  unindexed.batch.aggregation = core::AggregationMode::kSum;
  unindexed.batch.use_catalog_index = false;
  if (!indexed_only) {
    result.unindexed = RunLeg(*stratrec, batches, unindexed);
  }

  core::StratRecOptions indexed;
  indexed.batch.aggregation = core::AggregationMode::kSum;
  const auto snapshot_start = std::chrono::steady_clock::now();
  auto snapshot = stratrec->aggregator().BuildSnapshot(kAvailability);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot build failed: %s\n",
                 snapshot.status().ToString().c_str());
    std::exit(1);
  }
  (*snapshot)->orderings();  // force the lazy ADPaR block for the timing
  result.snapshot_build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    snapshot_start)
          .count();
  indexed.snapshot = *snapshot;
  // Scalar-forced leg first, then the active dispatch level on the same
  // batches; the snapshot's derived state is shared (bit-identical under
  // both levels), so only the per-batch kernels differ.
  stratrec::core::kernels::Configure(
      {stratrec::core::kernels::DispatchLevel::kScalar});
  result.indexed_scalar = RunLeg(*stratrec, batches, indexed);
  stratrec::core::kernels::Configure({});  // restore startup resolution
  result.indexed = RunLeg(*stratrec, batches, indexed);
  result.index_build_nanos = stratrec->aggregator().index_build_nanos();

  if (result.indexed.alternatives != result.indexed_scalar.alternatives ||
      (!indexed_only &&
       result.indexed.alternatives != result.unindexed.alternatives)) {
    std::fprintf(stderr,
                 "leg mismatch at |S|=%zu: %zu unindexed / %zu scalar / %zu "
                 "indexed alternatives\n",
                 num_strategies, result.unindexed.alternatives,
                 result.indexed_scalar.alternatives,
                 result.indexed.alternatives);
    std::exit(1);
  }
  result.speedup = result.unindexed.seconds > 0.0
                       ? result.unindexed.seconds / result.indexed.seconds
                       : 0.0;
  result.simd_speedup =
      result.indexed.seconds > 0.0
          ? result.indexed_scalar.seconds / result.indexed.seconds
          : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<size_t> sizes =
      argc > 1 ? ParseSizes(argv[1])
               : std::vector<size_t>{10'000, 100'000, 1'000'000};
  const size_t num_batches =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const size_t requests_per_batch =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;
  const bool indexed_only =
      argc > 4 && std::string(argv[4]) == "indexed-only";
  const char* output_path = argc > 5 ? argv[5] : "catalog_index.json";

  const char* dispatch = stratrec::core::kernels::DispatchLevelName(
      stratrec::core::kernels::ActiveDispatchLevel());
  std::printf(
      "CatalogIndex: repeated-availability batch workload, %zu batches x "
      "%zu requests at W = %.2f, single thread, kernels: %s%s.\n\n",
      num_batches, requests_per_batch, kAvailability, dispatch,
      indexed_only ? " (indexed legs only)" : "");

  std::vector<SizeResult> results;
  for (size_t size : sizes) {
    results.push_back(
        RunSize(size, num_batches, requests_per_batch, indexed_only));
    const SizeResult& r = results.back();
    std::printf(
        "|S| = %zu done: index %.2fx, simd %.2fx (unindexed %.3fs, "
        "indexed scalar %.3fs, indexed %s %.3fs)\n",
        r.strategies, r.speedup, r.simd_speedup, r.unindexed.seconds,
        r.indexed_scalar.seconds, dispatch, r.indexed.seconds);
  }

  stratrec::AsciiTable table({"strategies", "unindexed batches/s",
                              "indexed scalar batches/s",
                              "indexed batches/s", "speedup", "simd speedup",
                              "snapshot build (s)", "alternatives"});
  for (const SizeResult& r : results) {
    table.AddRow({std::to_string(r.strategies),
                  stratrec::FormatDouble(r.unindexed.batches_per_sec, 3),
                  stratrec::FormatDouble(r.indexed_scalar.batches_per_sec, 3),
                  stratrec::FormatDouble(r.indexed.batches_per_sec, 3),
                  stratrec::FormatDouble(r.speedup, 2) + "x",
                  stratrec::FormatDouble(r.simd_speedup, 2) + "x",
                  stratrec::FormatDouble(r.snapshot_build_seconds, 3),
                  std::to_string(r.indexed.alternatives)});
  }
  std::printf("\n");
  table.Print();

  // The workload block states the box it ran on: a baseline from a 1-core
  // CI runner and one from a wide dev box are not comparable, and the
  // hardware_threads / kernel_dispatch / compiler_flags fields are what
  // make the difference visible.
  std::string json =
      "{\n  \"workload\": {\"batches\": " + std::to_string(num_batches) +
      ", \"requests_per_batch\": " + std::to_string(requests_per_batch) +
      ", \"availability\": " + stratrec::FormatDouble(kAvailability, 2) +
      ", \"threads\": 1, \"hardware_threads\": " +
      std::to_string(std::thread::hardware_concurrency()) +
      ", \"kernel_dispatch\": \"" + dispatch +
      "\", \"compiler_flags\": \"" +
      stratrec::core::kernels::CompileFlags() +
      "\"},\n  \"sizes\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"strategies\": " + std::to_string(r.strategies) +
            ", \"unindexed_seconds\": " +
            stratrec::FormatDouble(r.unindexed.seconds, 6) +
            ", \"indexed_seconds\": " +
            stratrec::FormatDouble(r.indexed.seconds, 6) +
            ", \"unindexed_batches_per_sec\": " +
            stratrec::FormatDouble(r.unindexed.batches_per_sec, 3) +
            ", \"indexed_batches_per_sec\": " +
            stratrec::FormatDouble(r.indexed.batches_per_sec, 3) +
            ", \"indexed_scalar_seconds\": " +
            stratrec::FormatDouble(r.indexed_scalar.seconds, 6) +
            ", \"indexed_scalar_batches_per_sec\": " +
            stratrec::FormatDouble(r.indexed_scalar.batches_per_sec, 3) +
            ", \"speedup\": " + stratrec::FormatDouble(r.speedup, 3) +
            ", \"simd_speedup\": " +
            stratrec::FormatDouble(r.simd_speedup, 3) +
            ", \"snapshot_build_seconds\": " +
            stratrec::FormatDouble(r.snapshot_build_seconds, 6) +
            ", \"index_build_nanos\": " +
            std::to_string(r.index_build_nanos) +
            ", \"alternatives\": " + std::to_string(r.indexed.alternatives) +
            "}";
  }
  json += "\n  ]\n}\n";
  std::printf("\n%s", json.c_str());

  if (FILE* out = std::fopen(output_path, "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("(written to %s)\n", output_path);
  }
  return 0;
}
