// Figure 15: aggregated throughput of BruteForce vs BatchStrat vs BaselineG,
// varying k, m and |S|. Paper defaults k = 10, m = 5, |S| = 30, W = 0.5
// ("because brute force does not scale beyond that").
//
// Calibration note (see EXPERIMENTS.md): with only |S| = 30 strategies, the
// paper's symmetric request range [0.625, 1] leaves almost every request
// without k suitable strategies; requests here demand modest quality and
// grant generous cost/latency budgets so the optimization is exercised.
#include <cstdio>
#include <functional>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/workload/generators.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

constexpr int kDefaultS = 30;
constexpr int kDefaultM = 5;
constexpr int kDefaultK = 5;
constexpr double kDefaultW = 1.0;
constexpr int kRuns = 10;

struct Row {
  double brute = 0.0;
  double batchstrat = 0.0;
  double baseline = 0.0;
};

Row Evaluate(int num_s, int m, int k, core::Objective objective) {
  Row row;
  for (int run = 0; run < kRuns; ++run) {
    workload::GeneratorOptions options;
    workload::Generator generator(options, 0xF16'15ull * 100 + run);
    auto service = stratrec::Service::Create(
        api::CatalogFromProfiles(generator.Profiles(num_s)));
    if (!service.ok()) continue;
    api::BatchRequest batch;
    batch.requests = generator.RequestsWithRanges(
        m, k, /*quality=*/{0.50, 0.75}, /*cost=*/{0.70, 1.0},
        /*latency=*/{0.70, 1.0});
    batch.availability = api::AvailabilitySpec::Fixed(kDefaultW);
    batch.objective = objective;
    batch.aggregation = core::AggregationMode::kMax;
    batch.recommend_alternatives = false;  // only the batch stage is measured
    auto solve = [&](const char* algorithm) {
      batch.algorithm = algorithm;
      return service->SubmitBatch(batch);
    };
    auto brute = solve("brute-force");
    auto greedy = solve("batchstrat");
    auto baseline = solve("baseline-g");
    if (!brute.ok() || !greedy.ok() || !baseline.ok()) {
      std::fprintf(stderr, "run failed\n");
      continue;
    }
    row.brute += brute->result.aggregator.batch.total_objective;
    row.batchstrat += greedy->result.aggregator.batch.total_objective;
    row.baseline += baseline->result.aggregator.batch.total_objective;
  }
  row.brute /= kRuns;
  row.batchstrat /= kRuns;
  row.baseline /= kRuns;
  return row;
}

void Panel(const char* title, const char* x_label, const std::vector<int>& xs,
           const std::function<Row(int)>& evaluate) {
  std::printf("\n%s\n", title);
  AsciiTable table({x_label, "BruteForce", "BatchStrat", "BaselineG"});
  for (int x : xs) {
    const Row row = evaluate(x);
    table.AddRow({std::to_string(x), FormatDouble(row.brute, 3),
                  FormatDouble(row.batchstrat, 3),
                  FormatDouble(row.baseline, 3)});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Figure 15: aggregated throughput (objective value, avg of %d runs)\n"
      "defaults: |S|=%d m=%d k=%d W=%.2f (W raised from the paper's 0.5 so capacity\nbinds across multiple requests; see EXPERIMENTS.md)\n",
      kRuns, kDefaultS, kDefaultM, kDefaultK, kDefaultW);

  Panel("(a) varying k", "k", {2, 5, 10, 15}, [](int k) {
    return Evaluate(kDefaultS, kDefaultM, k, core::Objective::kThroughput);
  });
  Panel("(b) varying m", "m", {5, 10, 15, 20}, [](int m) {
    return Evaluate(kDefaultS, m, kDefaultK, core::Objective::kThroughput);
  });
  Panel("(c) varying |S|", "|S|", {10, 20, 30}, [](int s) {
    return Evaluate(s, kDefaultM, kDefaultK, core::Objective::kThroughput);
  });
  return 0;
}
