// Stream load: the Section-7 dynamic setting under churn — Poisson,
// bursty, and availability-drift event schedules driven through two
// implementations of the same rolling-BatchStrat semantics:
//
//   incremental    stream::StreamScheduler — executor-parallel pricing
//                  over the CatalogIndex plus an IncrementalSnapshot that
//                  absorbs arrivals/revocations/completions in O(1) and
//                  re-estimates the per-W params block only when the
//                  quantized availability moves;
//
//   full rebuild   the PR-0 core::OnlineScheduler (serial pricing over
//                  profile structs) with the per-availability derived
//                  state recomputed from scratch after every event — the
//                  counterfactual a stream tier without incremental
//                  maintenance would pay to keep its snapshot fresh.
//
// Both paths make bit-identical admission decisions (asserted per
// scenario), so the events/sec ratio isolates the maintenance strategy.
// A record/replay self-check then drives one journaled session through
// the Service facade and replays the trace at 1/2/4/8 worker threads,
// requiring byte-identical StreamUpdates at every pool size.
//
// Prints the usual ASCII table plus machine-readable JSON (stdout and
// stream_load.json) so CI can assert incremental >= full rebuild.
//
// Usage: bench_stream_load [strategies] [events_per_scenario] [replay_events]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/codec.h"
#include "src/api/replay.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/common/executor.h"
#include "src/common/rng.h"
#include "src/core/catalog_index.h"
#include "src/core/kernels/kernels.h"
#include "src/core/online.h"
#include "src/stream/stream_scheduler.h"
#include "src/workload/generators.h"

namespace {

namespace api = stratrec::api;
namespace core = stratrec::core;
namespace stream = stratrec::stream;
namespace wire = stratrec::wire;
namespace workload = stratrec::workload;

constexpr double kInitialAvailability = 0.5;
/// Snapshot grid of the incremental path: drift steps smaller than this
/// absorb as O(1) delta updates instead of re-estimating the params block.
constexpr double kAvailabilityQuantum = 0.05;

/// One pregenerated stream event. The schedule is fixed before timing
/// starts and identical for both paths, so decisions (and failures, e.g.
/// revoking an id that was rejected on arrival) line up event for event.
struct Event {
  api::StreamEvent::Kind kind = api::StreamEvent::Kind::kArrival;
  core::DeploymentRequest request;  // kArrival
  std::string request_id;           // kRevocation / kCompletion
  double availability = 0.0;        // kAvailabilityChange
};

struct Scenario {
  std::string name;
  std::vector<Event> events;
};

Event ArrivalEvent(core::DeploymentRequest request) {
  Event event;
  event.kind = api::StreamEvent::Kind::kArrival;
  event.request = std::move(request);
  return event;
}

Event ReleaseEvent(api::StreamEvent::Kind kind, std::string request_id) {
  Event event;
  event.kind = kind;
  event.request_id = std::move(request_id);
  return event;
}

Event WindowEvent(double availability) {
  Event event;
  event.kind = api::StreamEvent::Kind::kAvailabilityChange;
  event.availability = availability;
  return event;
}

/// Workload knobs shared by the scenario builders: arrivals drawn from the
/// async bench's ranges (mostly serviceable against the paper catalog).
std::vector<core::DeploymentRequest> RequestPool(workload::Generator* gen,
                                                 const std::string& prefix,
                                                 size_t count) {
  auto requests = gen->RequestsWithRanges(static_cast<int>(count), 10,
                                          {0.50, 0.75}, {0.70, 1.0},
                                          {0.70, 1.0});
  for (size_t i = 0; i < requests.size(); ++i) {
    char id[64];
    std::snprintf(id, sizeof(id), "%s-%06zu", prefix.c_str(), i);
    requests[i].id = id;
  }
  return requests;
}

/// Removes and returns a uniformly chosen id (swap-pop keeps it O(1)).
std::string TakeRandom(std::vector<std::string>* live, stratrec::Rng* rng) {
  const size_t idx = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(live->size()) - 1));
  std::string id = std::move((*live)[idx]);
  (*live)[idx] = std::move(live->back());
  live->pop_back();
  return id;
}

/// Poisson(lambda) arrivals per tick; each tick then releases a geometric
/// number of live requests (revocation with probability 0.2, completion
/// otherwise). Fixed availability — pure arrival/release churn.
Scenario PoissonScenario(workload::Generator* gen, uint64_t seed,
                         size_t target) {
  stratrec::Rng rng(seed);
  auto pool = RequestPool(gen, "poisson", target);
  Scenario scenario{"poisson", {}};
  std::vector<std::string> live;
  size_t next = 0;
  while (scenario.events.size() < target) {
    const int arrivals = rng.Poisson(3.0);
    for (int i = 0; i < arrivals && next < pool.size(); ++i) {
      live.push_back(pool[next].id);
      scenario.events.push_back(ArrivalEvent(pool[next++]));
    }
    while (!live.empty() && rng.Bernoulli(0.35)) {
      const auto kind = rng.Bernoulli(0.2)
                            ? api::StreamEvent::Kind::kRevocation
                            : api::StreamEvent::Kind::kCompletion;
      scenario.events.push_back(ReleaseEvent(kind, TakeRandom(&live, &rng)));
    }
  }
  scenario.events.resize(target);
  return scenario;
}

/// Alternating burst / drain phases: a burst submits 12..30 arrivals
/// back-to-back (the pending queue fills and the density-order drain gets
/// exercised), then the drain phase releases about half of the live set.
Scenario BurstyScenario(workload::Generator* gen, uint64_t seed,
                        size_t target) {
  stratrec::Rng rng(seed);
  auto pool = RequestPool(gen, "bursty", target);
  Scenario scenario{"bursty", {}};
  std::vector<std::string> live;
  size_t next = 0;
  while (scenario.events.size() < target) {
    const int burst = static_cast<int>(rng.UniformInt(12, 30));
    for (int i = 0; i < burst && next < pool.size(); ++i) {
      live.push_back(pool[next].id);
      scenario.events.push_back(ArrivalEvent(pool[next++]));
    }
    const size_t releases = live.size() / 2;
    for (size_t i = 0; i < releases && !live.empty(); ++i) {
      const auto kind = rng.Bernoulli(0.3)
                            ? api::StreamEvent::Kind::kRevocation
                            : api::StreamEvent::Kind::kCompletion;
      scenario.events.push_back(ReleaseEvent(kind, TakeRandom(&live, &rng)));
    }
  }
  scenario.events.resize(target);
  return scenario;
}

/// Poisson churn plus an availability random walk: half the ticks emit a
/// window change of +-0.04, clamped to [0.25, 0.85]. Against the 0.05
/// quantum most steps absorb as delta updates and only genuine moves
/// re-estimate — the exact claim the snapshot counters quantify.
Scenario DriftScenario(workload::Generator* gen, uint64_t seed,
                       size_t target) {
  stratrec::Rng rng(seed);
  auto pool = RequestPool(gen, "drift", target);
  Scenario scenario{"drift", {}};
  std::vector<std::string> live;
  size_t next = 0;
  double w = kInitialAvailability;
  while (scenario.events.size() < target) {
    const int arrivals = rng.Poisson(2.0);
    for (int i = 0; i < arrivals && next < pool.size(); ++i) {
      live.push_back(pool[next].id);
      scenario.events.push_back(ArrivalEvent(pool[next++]));
    }
    while (!live.empty() && rng.Bernoulli(0.3)) {
      const auto kind = rng.Bernoulli(0.2)
                            ? api::StreamEvent::Kind::kRevocation
                            : api::StreamEvent::Kind::kCompletion;
      scenario.events.push_back(ReleaseEvent(kind, TakeRandom(&live, &rng)));
    }
    if (rng.Bernoulli(0.5)) {
      w = std::clamp(w + rng.Uniform(-0.04, 0.04), 0.25, 0.85);
      scenario.events.push_back(WindowEvent(w));
    }
  }
  scenario.events.resize(target);
  return scenario;
}

struct DriveResult {
  double seconds = 0.0;
  double events_per_sec = 0.0;
  core::OnlineStats stats;
  size_t reschedules = 0;
  size_t delta_updates = 0;
  size_t rebuilds = 0;
};

DriveResult DriveIncremental(const core::CatalogIndex& index,
                             stratrec::Executor* executor,
                             const std::vector<Event>& events) {
  stream::StreamSchedulerOptions options;
  options.availability_quantum = kAvailabilityQuantum;
  auto scheduler = stream::StreamScheduler::Create(
      &index, executor, kInitialAvailability, options);
  if (!scheduler.ok()) {
    std::fprintf(stderr, "stream scheduler setup failed: %s\n",
                 scheduler.status().ToString().c_str());
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  for (const Event& event : events) {
    switch (event.kind) {
      case api::StreamEvent::Kind::kArrival:
        (void)scheduler->OnArrival(event.request);
        break;
      case api::StreamEvent::Kind::kRevocation:
        (void)scheduler->OnRevocation(event.request_id);
        break;
      case api::StreamEvent::Kind::kCompletion:
        (void)scheduler->OnCompletion(event.request_id);
        break;
      case api::StreamEvent::Kind::kAvailabilityChange:
        (void)scheduler->SetAvailability(event.availability);
        break;
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  DriveResult result;
  result.seconds = elapsed.count();
  result.events_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(events.size()) / result.seconds
          : 0.0;
  result.stats = scheduler->stats();
  result.reschedules = scheduler->reschedules();
  result.delta_updates = scheduler->snapshot_delta_updates();
  result.rebuilds = scheduler->snapshot_rebuilds();
  return result;
}

DriveResult DriveFullRebuild(const std::vector<core::StrategyProfile>& profiles,
                             const core::CatalogIndex& index,
                             const std::vector<Event>& events) {
  auto scheduler =
      core::OnlineScheduler::Create(profiles, kInitialAvailability, {});
  if (!scheduler.ok()) {
    std::fprintf(stderr, "online scheduler setup failed: %s\n",
                 scheduler.status().ToString().c_str());
    std::exit(1);
  }
  // The derived per-W state a naive stream tier keeps fresh by recomputing
  // it after every event: the batch path's own CatalogIndex::BuildSnapshot,
  // exactly what a session without IncrementalSnapshot would call (the
  // snapshot cache does not help — every event invalidates it). The O(1)
  // absorption replaces precisely this allocation + O(|S|) re-estimation.
  std::shared_ptr<const core::AvailabilitySnapshot> snapshot;
  double w = kInitialAvailability;
  const auto start = std::chrono::steady_clock::now();
  for (const Event& event : events) {
    switch (event.kind) {
      case api::StreamEvent::Kind::kArrival:
        (void)scheduler->OnArrival(event.request);
        break;
      case api::StreamEvent::Kind::kRevocation:
        (void)scheduler->OnRevocation(event.request_id);
        break;
      case api::StreamEvent::Kind::kCompletion:
        (void)scheduler->OnCompletion(event.request_id);
        break;
      case api::StreamEvent::Kind::kAvailabilityChange:
        w = event.availability;
        (void)scheduler->SetAvailability(w);
        break;
    }
    snapshot = index.BuildSnapshot(w);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  DriveResult result;
  result.seconds = elapsed.count();
  result.events_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(events.size()) / result.seconds
          : 0.0;
  result.stats = scheduler->stats();
  return result;
}

/// Both paths implement one semantics; a drift in the lifetime counters
/// means the ratio below compares different schedulers, not different
/// maintenance strategies — fail loudly instead of reporting it.
void RequireParity(const Scenario& scenario, const core::OnlineStats& a,
                   const core::OnlineStats& b) {
  if (a.arrivals == b.arrivals && a.admitted == b.admitted &&
      a.queued == b.queued && a.rejected == b.rejected &&
      a.revoked == b.revoked && a.completed == b.completed) {
    return;
  }
  std::fprintf(stderr,
               "scenario %s: incremental and full-rebuild decisions diverged "
               "(admitted %zu vs %zu, queued %zu vs %zu, rejected %zu vs "
               "%zu)\n",
               scenario.name.c_str(), a.admitted, b.admitted, a.queued,
               b.queued, a.rejected, b.rejected);
  std::exit(1);
}

struct ReplayCheck {
  size_t threads = 0;
  size_t sessions = 0;
  size_t events = 0;
  size_t matched = 0;
  bool ok = false;
};

/// Records one journaled session through the Service facade, then replays
/// the trace at several pool sizes: every StreamUpdate must come back byte
/// for byte. Returns one row per pool size; exits on infrastructure
/// failures (an unreadable trace is a bug, not a measurement).
std::vector<ReplayCheck> ReplaySelfCheck(
    const std::vector<core::StrategyProfile>& profiles,
    const std::vector<Event>& events) {
  const std::string journal_path = "stream_load.journal";
  std::remove(journal_path.c_str());
  {
    api::ServiceConfig config;
    config.journal.path = journal_path;
    auto service =
        stratrec::Service::Create(api::CatalogFromProfiles(profiles), config);
    if (!service.ok()) {
      std::fprintf(stderr, "recording service setup failed: %s\n",
                   service.status().ToString().c_str());
      std::exit(1);
    }
    api::StreamOptions options;
    options.recommend_alternatives = true;  // exercise the ADPaR leg too
    auto session = service->OpenStream(options);
    if (!session.ok()) {
      std::fprintf(stderr, "recording session failed to open: %s\n",
                   session.status().ToString().c_str());
      std::exit(1);
    }
    for (const Event& event : events) {
      switch (event.kind) {
        case api::StreamEvent::Kind::kArrival:
          (void)session->Submit(api::StreamEvent::Arrival(event.request));
          break;
        case api::StreamEvent::Kind::kRevocation:
          (void)session->Submit(
              api::StreamEvent::Revocation(event.request_id));
          break;
        case api::StreamEvent::Kind::kCompletion:
          (void)session->Submit(
              api::StreamEvent::Completion(event.request_id));
          break;
        case api::StreamEvent::Kind::kAvailabilityChange:
          (void)session->Submit(api::StreamEvent::AvailabilityChange(
              api::AvailabilitySpec::Fixed(event.availability)));
          break;
      }
    }
  }  // service (and journal) closed here

  auto trace = wire::ReadTraceFile(journal_path);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace read failed: %s\n",
                 trace.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<ReplayCheck> checks;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    wire::ReplayOptions options;
    options.worker_threads = threads;
    auto result = wire::ReplayTrace(*trace, options);
    if (!result.ok()) {
      std::fprintf(stderr, "replay at %zu threads failed: %s\n", threads,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    checks.push_back({threads, result->stream_sessions,
                      result->stream_events_replayed, result->stream_matched,
                      result->ok()});
  }
  std::remove(journal_path.c_str());
  return checks;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_strategies =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  const size_t events_per_scenario =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000;
  const size_t replay_events =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 200;

  std::printf(
      "Stream load: %zu events per scenario against %zu strategies "
      "(snapshot quantum %.2f)\n"
      "incremental = StreamScheduler (O(1) event absorption, parallel "
      "pricing); full rebuild = OnlineScheduler + per-event snapshot "
      "rebuild.\n\n",
      events_per_scenario, num_strategies, kAvailabilityQuantum);

  workload::Generator generator({}, 0x57E4'11BAull);
  const auto profiles = generator.Profiles(static_cast<int>(num_strategies));
  stratrec::Executor executor(0);
  const core::CatalogIndex index =
      core::CatalogIndex::Build(profiles, &executor);

  const std::vector<Scenario> scenarios = {
      PoissonScenario(&generator, 0xA0ull, events_per_scenario),
      BurstyScenario(&generator, 0xB1ull, events_per_scenario),
      DriftScenario(&generator, 0xD2ull, events_per_scenario),
  };

  struct Row {
    std::string name;
    size_t events = 0;
    DriveResult incremental;
    DriveResult rebuild;
    double speedup = 0.0;
  };
  std::vector<Row> rows;
  for (const Scenario& scenario : scenarios) {
    Row row;
    row.name = scenario.name;
    row.events = scenario.events.size();
    // Untimed warm pass over a short prefix (first-touch effects).
    const size_t warm = std::min<size_t>(32, scenario.events.size());
    (void)DriveIncremental(
        index, &executor,
        std::vector<Event>(scenario.events.begin(),
                           scenario.events.begin() + static_cast<long>(warm)));
    row.incremental = DriveIncremental(index, &executor, scenario.events);
    row.rebuild = DriveFullRebuild(profiles, index, scenario.events);
    RequireParity(scenario, row.incremental.stats, row.rebuild.stats);
    row.speedup = row.rebuild.seconds > 0.0
                      ? row.rebuild.seconds / row.incremental.seconds
                      : 0.0;
    rows.push_back(row);
  }

  stratrec::AsciiTable table({"scenario", "events", "incr events/s",
                              "rebuild events/s", "speedup", "admitted",
                              "queued", "rejected", "reschedules",
                              "delta updates", "rebuilds"});
  for (const Row& row : rows) {
    table.AddRow({row.name, std::to_string(row.events),
                  stratrec::FormatDouble(row.incremental.events_per_sec, 1),
                  stratrec::FormatDouble(row.rebuild.events_per_sec, 1),
                  stratrec::FormatDouble(row.speedup, 2) + "x",
                  std::to_string(row.incremental.stats.admitted),
                  std::to_string(row.incremental.stats.queued),
                  std::to_string(row.incremental.stats.rejected),
                  std::to_string(row.incremental.reschedules),
                  std::to_string(row.incremental.delta_updates),
                  std::to_string(row.incremental.rebuilds)});
  }
  table.Print();

  // The drift scenario exercises every event kind, so its prefix is the
  // richest trace to round-trip.
  const std::vector<Event>& drift = scenarios.back().events;
  const size_t recorded =
      std::min<size_t>(replay_events, drift.size());
  const auto replay = ReplaySelfCheck(
      profiles, std::vector<Event>(drift.begin(),
                                   drift.begin() + static_cast<long>(recorded)));

  std::printf("\nreplay self-check (drift prefix, %zu events):\n", recorded);
  bool replay_ok = true;
  for (const ReplayCheck& check : replay) {
    replay_ok = replay_ok && check.ok;
    std::printf("  pool %zu: %zu/%zu updates byte-identical (%s)\n",
                check.threads, check.matched, check.events,
                check.ok ? "ok" : "MISMATCH");
  }
  if (!replay_ok) {
    std::fprintf(stderr, "replay self-check failed\n");
    return 1;
  }

  std::string json =
      "{\n  \"workload\": {\"strategies\": " + std::to_string(num_strategies) +
      ", \"events_per_scenario\": " + std::to_string(events_per_scenario) +
      ", \"availability_quantum\": " +
      stratrec::FormatDouble(kAvailabilityQuantum, 2) +
      ", \"hardware_threads\": " +
      std::to_string(std::thread::hardware_concurrency()) +
      ", \"kernel_dispatch\": \"" +
      stratrec::core::kernels::DispatchLevelName(
          stratrec::core::kernels::ActiveDispatchLevel()) +
      "\", \"compiler_flags\": \"" + stratrec::core::kernels::CompileFlags() +
      "\"},\n  \"scenarios\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"name\": \"" + row.name +
            "\", \"events\": " + std::to_string(row.events) +
            ", \"incremental_events_per_sec\": " +
            stratrec::FormatDouble(row.incremental.events_per_sec, 2) +
            ", \"full_rebuild_events_per_sec\": " +
            stratrec::FormatDouble(row.rebuild.events_per_sec, 2) +
            ", \"speedup\": " + stratrec::FormatDouble(row.speedup, 4) +
            ", \"admitted\": " + std::to_string(row.incremental.stats.admitted) +
            ", \"queued\": " + std::to_string(row.incremental.stats.queued) +
            ", \"rejected\": " +
            std::to_string(row.incremental.stats.rejected) +
            ", \"reschedules\": " + std::to_string(row.incremental.reschedules) +
            ", \"snapshot_delta_updates\": " +
            std::to_string(row.incremental.delta_updates) +
            ", \"snapshot_rebuilds\": " +
            std::to_string(row.incremental.rebuilds) + "}";
  }
  json += "\n  ],\n  \"replay\": [";
  for (size_t i = 0; i < replay.size(); ++i) {
    const ReplayCheck& check = replay[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"threads\": " + std::to_string(check.threads) +
            ", \"sessions\": " + std::to_string(check.sessions) +
            ", \"events\": " + std::to_string(check.events) +
            ", \"matched\": " + std::to_string(check.matched) +
            ", \"ok\": " + (check.ok ? "true" : "false") + "}";
  }
  json += "\n  ]\n}\n";
  std::printf("\n%s", json.c_str());

  if (FILE* out = std::fopen("stream_load.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("(written to stream_load.json)\n");
  }
  return 0;
}
