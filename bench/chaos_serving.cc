// Chaos bench for the fault-tolerant serving tier: a deterministic fault
// schedule (src/common/fault.h) is installed over the HTTP server and the
// shard router, and a closed-loop retrying client drives batches and sweeps
// through the full stack while the bench sweeps fault shape x replica
// count. The gates — any breach exits non-zero, which is what lets CI run
// this as the chaos smoke leg:
//
//   * zero non-injected 5xx: every 500 the client sees must carry the
//     "[injected]" tag of a scheduled fault; a real failure fails the run,
//   * byte-identity under faults: every 200 body must equal the unsharded
//     in-process Service's encoding of the same request — retries, replica
//     failover, and hedging may not perturb a single byte,
//   * deadline compliance: zero 504s, and with replicas >= 2 under the
//     single-dead-replica fault the p99 of admitted requests stays within
//     the request deadline,
//   * with replicas >= 2 a dead replica is fully absorbed by failover — no
//     5xx at all, injected or otherwise.
//
// The per-cell fault schedule digest (FaultPlan::ScheduleDigest) is stamped
// into the workload block of chaos_serving.json: same seed, same schedule,
// same digest — rerun the bench and the stamps must agree.
//
// Usage: bench_chaos_serving [--quick] [strategies] [requests_per_cell]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/codec.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/common/fault.h"
#include "src/common/json.h"
#include "src/core/kernels/kernels.h"
#include "src/net/http_client.h"
#include "src/net/serving.h"
#include "src/workload/generators.h"

namespace {

namespace api = stratrec::api;
namespace core = stratrec::core;
namespace fault = stratrec::fault;
namespace net = stratrec::net;
namespace wire = stratrec::wire;
namespace workload = stratrec::workload;

// Generous relative budget: queueing under faults stays far inside it, so
// any 504 means deadline propagation itself broke.
constexpr double kDeadlineMs = 2000.0;

/// One sweep cell: a fault shape against a replica count.
struct Cell {
  const char* name;
  size_t replicas = 1;
  double drop_rate = 0.0;          // http.server.drop
  double replica_fail_rate = 0.0;  // router.replica (generic)
  bool dead_replica = false;       // router.shard.0.replica.0 at rate 1.0
  double hedge_after_ms = 0.0;
};

struct CellResult {
  size_t ok_200 = 0;
  size_t injected_5xx = 0;
  size_t non_injected_5xx = 0;
  size_t deadline_504 = 0;
  size_t other_status = 0;
  size_t identity_mismatches = 0;
  size_t transport_failures = 0;
  uint64_t retries = 0;
  uint64_t failovers = 0;
  uint64_t hedges_won = 0;
  uint64_t schedule_digest = 0;
  double p99_ms = 0.0;
};

api::BatchRequest MakeBatch(workload::Generator* generator, size_t sequence) {
  api::BatchRequest batch;
  batch.requests = generator->RequestsWithRanges(6, 5, {0.50, 0.80},
                                                 {0.60, 1.0}, {0.60, 1.0});
  batch.availability = api::AvailabilitySpec::Fixed(0.5);
  batch.aggregation = core::AggregationMode::kMax;
  batch.deadline_ms = kDeadlineMs;
  batch.request_id = "chaos-batch-" + std::to_string(sequence);
  return batch;
}

api::SweepRequest MakeSweep(workload::Generator* generator, size_t sequence) {
  api::SweepRequest sweep;
  sweep.targets = generator->RequestsWithRanges(3, 3, {0.60, 0.95},
                                                {0.40, 0.9}, {0.40, 0.9});
  sweep.availability = api::AvailabilitySpec::Fixed(0.5);
  sweep.deadline_ms = kDeadlineMs;
  sweep.request_id = "chaos-sweep-" + std::to_string(sequence);
  return sweep;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

fault::FaultConfig PlanFor(const Cell& cell, uint64_t seed) {
  fault::FaultConfig config;
  config.seed = seed;
  if (cell.drop_rate > 0.0) {
    config.sites.emplace_back(std::string(fault::kSiteHttpDrop),
                              fault::SiteSpec{cell.drop_rate, 0.0});
  }
  if (cell.replica_fail_rate > 0.0) {
    config.sites.emplace_back(std::string(fault::kSiteRouterReplica),
                              fault::SiteSpec{cell.replica_fail_rate, 0.0});
  }
  if (cell.dead_replica) {
    config.sites.emplace_back(fault::ReplicaSiteName(0, 0),
                              fault::SiteSpec{1.0, 0.0});
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "--quick") == 0) {
    quick = true;
    ++arg;
  }
  const size_t num_strategies =
      arg < argc ? std::strtoull(argv[arg++], nullptr, 10) : 6'000;
  const size_t requests_per_cell =
      arg < argc ? std::strtoull(argv[arg++], nullptr, 10)
                 : (quick ? 12 : 32);

  const std::vector<Cell> all_cells = {
      {"baseline", 1},
      {"drops", 1, /*drop_rate=*/0.05},
      {"injected-500s", 1, 0.0, /*replica_fail_rate=*/0.15},
      {"failover", 2, 0.0, 0.0, /*dead_replica=*/true},
      {"combined", 3, 0.03, 0.2, false},
      {"hedging", 2, 0.0, 0.1, false, /*hedge_after_ms=*/0.05},
  };
  std::vector<Cell> cells;
  for (const Cell& cell : all_cells) {
    if (quick && std::strcmp(cell.name, "baseline") != 0 &&
        std::strcmp(cell.name, "failover") != 0) {
      continue;
    }
    cells.push_back(cell);
  }

  std::printf(
      "Chaos serving: %zu cells x %zu requests over %zu strategies%s\n\n",
      cells.size(), requests_per_cell, num_strategies,
      quick ? " (quick)" : "");

  workload::Generator generator({}, 0x5E41'0AD5ull);
  const auto profiles = generator.Profiles(static_cast<int>(num_strategies));
  const core::Catalog catalog = api::CatalogFromProfiles(profiles);

  // The fault-free reference: an unsharded in-process Service. Every 200
  // body in every cell must match these bytes exactly.
  std::vector<std::string> bodies;
  std::vector<std::string> targets;
  std::vector<std::string> expected;
  {
    auto unsharded = api::Service::Create(catalog, {});
    if (!unsharded.ok()) {
      std::fprintf(stderr, "unsharded setup failed: %s\n",
                   unsharded.status().ToString().c_str());
      return 1;
    }
    workload::Generator request_gen({}, 0xC4A0'51D3ull);
    for (size_t r = 0; r < requests_per_cell; ++r) {
      if (r % 4 == 3) {
        const api::SweepRequest sweep = MakeSweep(&request_gen, r);
        auto report = unsharded->RunSweep(sweep);
        if (!report.ok()) {
          std::fprintf(stderr, "baseline sweep failed: %s\n",
                       report.status().ToString().c_str());
          return 1;
        }
        targets.push_back("/v1/sweep");
        bodies.push_back(stratrec::json::Dump(wire::Encode(sweep)));
        expected.push_back(stratrec::json::Dump(wire::Encode(*report)));
      } else {
        const api::BatchRequest batch = MakeBatch(&request_gen, r);
        auto report = unsharded->SubmitBatch(batch);
        if (!report.ok()) {
          std::fprintf(stderr, "baseline batch failed: %s\n",
                       report.status().ToString().c_str());
          return 1;
        }
        targets.push_back("/v1/batch");
        bodies.push_back(stratrec::json::Dump(wire::Encode(batch)));
        expected.push_back(stratrec::json::Dump(wire::Encode(*report)));
      }
    }
  }

  std::vector<CellResult> results(cells.size());
  bool gates_hold = true;
  for (size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    CellResult& result = results[c];

    stratrec::RouterConfig router_config;
    router_config.shards = 2;
    router_config.replicas = cell.replicas;
    router_config.replica_seed = 0x51EC'0000ull + c;
    router_config.hedge_after_ms = cell.hedge_after_ms;
    auto router = stratrec::ShardRouter::Create(catalog, router_config);
    if (!router.ok()) {
      std::fprintf(stderr, "%s: router setup failed: %s\n", cell.name,
                   router.status().ToString().c_str());
      return 1;
    }
    auto server = net::StartServing(*router);
    if (!server.ok()) {
      std::fprintf(stderr, "%s: server setup failed: %s\n", cell.name,
                   server.status().ToString().c_str());
      return 1;
    }

    const fault::FaultConfig plan_config = PlanFor(cell, 0xC4A0'0000ull + c);
    std::shared_ptr<fault::FaultPlan> plan;
    if (!plan_config.sites.empty()) {
      plan = fault::InstallGlobalFaultPlan(plan_config);
    } else {
      fault::ClearGlobalFaultPlan();
    }

    net::RetryPolicy policy;
    policy.max_attempts = 5;
    policy.base_backoff_ms = 5.0;
    policy.max_backoff_ms = 50.0;
    policy.seed = 0xB0FF'0000ull + c;
    net::RetryingHttpClient client("127.0.0.1", server->port(), policy);

    std::vector<double> latencies;
    latencies.reserve(requests_per_cell);
    for (size_t r = 0; r < requests_per_cell; ++r) {
      const auto start = std::chrono::steady_clock::now();
      auto response = client.PostJson(targets[r], bodies[r]);
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - start;
      if (!response.ok()) {
        ++result.transport_failures;
        continue;
      }
      latencies.push_back(elapsed.count());
      if (response->status_code == 200) {
        ++result.ok_200;
        if (response->body != expected[r]) ++result.identity_mismatches;
      } else if (response->status_code == 504) {
        ++result.deadline_504;
      } else if (response->status_code >= 500) {
        if (response->body.find("[injected]") != std::string::npos) {
          ++result.injected_5xx;
        } else {
          ++result.non_injected_5xx;
        }
      } else {
        ++result.other_status;
      }
    }

    fault::ClearGlobalFaultPlan();
    server->Stop();

    const api::ServiceStats stats = router->stats();
    result.retries = client.retries();
    result.failovers = stats.failovers;
    result.hedges_won = stats.hedges_won;
    result.schedule_digest = plan ? plan->ScheduleDigest() : 0;
    std::sort(latencies.begin(), latencies.end());
    result.p99_ms = Percentile(latencies, 0.99);

    // The gates.
    bool cell_ok = result.non_injected_5xx == 0 &&
                   result.identity_mismatches == 0 &&
                   result.deadline_504 == 0 &&
                   result.transport_failures == 0 &&
                   result.other_status == 0;
    if (cell.replicas >= 2 && cell.dead_replica) {
      // Failover must fully absorb a dead replica: no 5xx surfaces at all,
      // and admitted-request p99 stays inside the deadline.
      cell_ok = cell_ok && result.injected_5xx == 0 &&
                result.p99_ms <= kDeadlineMs && result.failovers > 0;
    }
    if (!cell_ok) {
      std::fprintf(stderr,
                   "%s: GATE BREACH (non_injected_5xx=%zu identity=%zu "
                   "deadline_504=%zu transport=%zu other=%zu injected=%zu "
                   "failovers=%llu p99=%.2fms)\n",
                   cell.name, result.non_injected_5xx,
                   result.identity_mismatches, result.deadline_504,
                   result.transport_failures, result.other_status,
                   result.injected_5xx,
                   static_cast<unsigned long long>(result.failovers),
                   result.p99_ms);
      gates_hold = false;
    }
  }

  stratrec::AsciiTable table({"cell", "replicas", "200", "injected 5xx",
                              "retries", "failovers", "hedges", "p99 ms",
                              "digest"});
  for (size_t c = 0; c < cells.size(); ++c) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(results[c].schedule_digest));
    table.AddRow({cells[c].name, std::to_string(cells[c].replicas),
                  std::to_string(results[c].ok_200),
                  std::to_string(results[c].injected_5xx),
                  std::to_string(results[c].retries),
                  std::to_string(results[c].failovers),
                  std::to_string(results[c].hedges_won),
                  stratrec::FormatDouble(results[c].p99_ms, 2), digest});
  }
  table.Print();

  std::string json =
      "{\n  \"workload\": {\"strategies\": " + std::to_string(num_strategies) +
      ", \"shards\": 2, \"requests_per_cell\": " +
      std::to_string(requests_per_cell) +
      ", \"deadline_ms\": " + stratrec::FormatDouble(kDeadlineMs, 1) +
      ", \"quick\": " + (quick ? std::string("true") : std::string("false")) +
      ", \"kernel_dispatch\": \"" +
      stratrec::core::kernels::DispatchLevelName(
          stratrec::core::kernels::ActiveDispatchLevel()) +
      "\"},\n  \"cells\": [";
  for (size_t c = 0; c < cells.size(); ++c) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(results[c].schedule_digest));
    json += std::string(c == 0 ? "\n" : ",\n") + "    {\"cell\": \"" +
            cells[c].name +
            "\", \"replicas\": " + std::to_string(cells[c].replicas) +
            ", \"ok_200\": " + std::to_string(results[c].ok_200) +
            ", \"injected_5xx\": " + std::to_string(results[c].injected_5xx) +
            ", \"non_injected_5xx\": " +
            std::to_string(results[c].non_injected_5xx) +
            ", \"deadline_504\": " + std::to_string(results[c].deadline_504) +
            ", \"identity_mismatches\": " +
            std::to_string(results[c].identity_mismatches) +
            ", \"retries\": " + std::to_string(results[c].retries) +
            ", \"failovers\": " + std::to_string(results[c].failovers) +
            ", \"hedges_won\": " + std::to_string(results[c].hedges_won) +
            ", \"p99_ms\": " + stratrec::FormatDouble(results[c].p99_ms, 3) +
            ", \"schedule_digest\": \"" + digest + "\"}";
  }
  json += "\n  ],\n  \"gates\": \"" +
          std::string(gates_hold ? "ok" : "breached") + "\"\n}\n";
  std::printf("\n%s", json.c_str());

  if (FILE* out = std::fopen("chaos_serving.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("(written to chaos_serving.json)\n");
  }

  if (!gates_hold) {
    std::fprintf(stderr, "chaos gates breached\n");
    return 1;
  }
  return 0;
}
