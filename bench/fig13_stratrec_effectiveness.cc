// Figure 13: effectiveness of StratRec — average quality, cost and latency
// of mirrored deployments with vs without StratRec recommendations, plus the
// edit-war statistics (paper: 3.45 edits per task with StratRec vs 6.25
// without) and Welch t-tests for significance.
//
// Values are denormalized to the paper's units: quality in %, cost in $ (of
// the $14 budget), latency in hours (of the 72-hour window).
#include <cstdio>

#include "src/common/ascii_table.h"
#include "src/platform/amt.h"
#include "src/stats/descriptive.h"
#include "src/stats/hypothesis.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace core = stratrec::core;
namespace platform = stratrec::platform;
namespace stats = stratrec::stats;

constexpr double kBudgetUsd = 14.0;
constexpr double kWindowHours = 72.0;

void RunStudy(platform::TaskType type, uint64_t seed) {
  platform::AmtStudyOptions options;
  platform::AmtSimulator amt(options, seed);
  // Paper thresholds: quality 70%, cost $14 (full budget), latency 72 h.
  const core::ParamVector thresholds{0.70, 1.0, 1.0};
  auto study = amt.RunMirroredStudy(type, /*num_tasks=*/10, thresholds);
  if (!study.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 study.status().ToString().c_str());
    return;
  }

  auto mean = [](const std::vector<double>& xs) {
    return stats::Mean(xs).value_or(0.0);
  };

  std::printf("\nTask type: %s\n", platform::TaskTypeName(type));
  AsciiTable table({"metric", "StratRec", "Without StratRec", "p-value"});
  auto add = [&](const char* metric, const std::vector<double>& with_rec,
                 const std::vector<double>& without, double scale,
                 int precision) {
    auto test = stats::WelchTTest(with_rec, without);
    table.AddRow({metric, FormatDouble(mean(with_rec) * scale, precision),
                  FormatDouble(mean(without) * scale, precision),
                  test.ok() ? FormatDouble(test->p_value_two_sided, 4)
                            : "n/a"});
  };
  add("quality (%)", study->quality_with, study->quality_without, 100.0, 1);
  add("cost ($)", study->cost_with, study->cost_without, kBudgetUsd, 2);
  add("latency (h)", study->latency_with, study->latency_without,
      kWindowHours, 1);
  add("edits per task", study->edits_with, study->edits_without, 1.0, 2);
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Figure 13: quality/cost/latency with vs without StratRec (10 mirrored "
      "deployments per task type)\n"
      "thresholds: quality 70%%, cost $14, latency 72h\n");
  RunStudy(platform::TaskType::kSentenceTranslation, 0xF16'13ull);
  RunStudy(platform::TaskType::kTextCreation, 0xF16'13ull + 1);
  std::printf(
      "\nExpected shape (paper): StratRec deployments achieve higher quality "
      "and lower\nlatency under the fixed cost threshold, with fewer edits "
      "(3.45 vs 6.25 for\ntranslation) — unguided workers override each "
      "other in an edit war.\n");
  return 0;
}
