// Micro-benchmarks for the substrate libraries: R-tree queries, skyline /
// k-skyband computation (and its effect as an ADPaR pruning pass), knapsack
// selection, OLS fitting, and the bounded k-smallest tracker. These back the
// complexity claims in DESIGN.md.
#include <benchmark/benchmark.h>

#include "src/core/knapsack.h"
#include "src/core/skyline.h"
#include "src/geometry/k_smallest.h"
#include "src/geometry/rtree.h"
#include "src/stats/linear_regression.h"
#include "src/workload/generators.h"

namespace {

namespace core = stratrec::core;
namespace geo = stratrec::geo;
namespace workload = stratrec::workload;

void BM_RTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stratrec::Rng rng(1);
  std::vector<geo::Point3> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  for (auto _ : state) {
    geo::RTree tree;
    for (int i = 0; i < n; ++i) {
      tree.Insert(points[static_cast<size_t>(i)], i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_RTreeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stratrec::Rng rng(2);
  geo::RTree tree;
  for (int i = 0; i < n; ++i) {
    tree.Insert({rng.Uniform(), rng.Uniform(), rng.Uniform()}, i);
  }
  const geo::Rect3 box{{0.2, 0.2, 0.2}, {0.5, 0.5, 0.5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Count(box));
  }
}
BENCHMARK(BM_RTreeQuery)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_KSkyband(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  workload::Generator generator({}, 3);
  const auto strategies = generator.StrategyParams(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::KSkyband(strategies, 5));
  }
}
BENCHMARK(BM_KSkyband)->Arg(500)->Arg(2000)->Unit(benchmark::kMicrosecond);

void BM_AdparExact_PlainVsSkyband(benchmark::State& state) {
  const bool use_skyband = state.range(0) == 1;
  workload::GeneratorOptions options;
  options.distribution = workload::DimDistribution::kNormal;
  workload::Generator generator(options, 4);
  const auto strategies = generator.StrategyParams(3000);
  const core::ParamVector d{0.9, 0.2, 0.2};
  for (auto _ : state) {
    auto result = use_skyband ? core::AdparExactSkyband(strategies, d, 5)
                              : core::AdparExact(strategies, d, 5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AdparExact_PlainVsSkyband)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stratrec::Rng rng(5);
  std::vector<core::KnapsackItem> items;
  for (int i = 0; i < n; ++i) {
    core::KnapsackItem item;
    item.index = static_cast<size_t>(i);
    item.weight = rng.Uniform(0.01, 0.2);
    item.value = rng.Uniform(0.1, 1.0);
    item.sort_value = item.value;
    items.push_back(item);
  }
  for (auto _ : state) {
    auto copy = items;
    benchmark::DoNotOptimize(core::GreedyKnapsack(std::move(copy), 5.0, {}));
  }
}
BENCHMARK(BM_GreedyKnapsack)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_FitLinear(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stratrec::Rng rng(6);
  std::vector<double> xs, ys;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform();
    xs.push_back(x);
    ys.push_back(0.09 * x + 0.85 + rng.Normal(0, 0.02));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stratrec::stats::FitLinear(xs, ys));
  }
}
BENCHMARK(BM_FitLinear)->Arg(100)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_KSmallestTracker(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stratrec::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < n; ++i) values.push_back(rng.Uniform());
  for (auto _ : state) {
    geo::KSmallestTracker tracker(10);
    for (double v : values) tracker.Push(v);
    benchmark::DoNotOptimize(tracker.KthSmallest());
  }
}
BENCHMARK(BM_KSmallestTracker)->Arg(10000)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
