// Micro-benchmarks for the substrate libraries and the SoA SIMD kernels.
//
// The kernel section times each dispatched kernel twice — forced scalar,
// then the active dispatch level — and reports throughput (cells/sec for
// the workforce-matrix fill, comparisons/sec for dominance, params/sec for
// estimation) plus the simd_speedup ratio; CI asserts the ratio never drops
// below 1 on AVX2 runners. The substrate section ports the original R-tree /
// skyband / knapsack / OLS / k-smallest micro-benchmarks. Results land in
// micro_substrates.json (override with argv[1]).
//
// Hand-rolled timing (calibrated repetition loops over steady_clock, no
// google-benchmark dependency) so the perf CI job can build and run it.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/ascii_table.h"
#include "src/core/catalog_index.h"
#include "src/core/kernels/kernels.h"
#include "src/core/knapsack.h"
#include "src/core/skyline.h"
#include "src/core/workforce.h"
#include "src/geometry/k_smallest.h"
#include "src/geometry/rtree.h"
#include "src/stats/linear_regression.h"
#include "src/workload/generators.h"

namespace {

namespace core = stratrec::core;
namespace geo = stratrec::geo;
namespace kernels = stratrec::core::kernels;
namespace workload = stratrec::workload;

/// Keeps `value` observable so the timed loop is not dead-code eliminated.
template <typename T>
inline void Escape(T&& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Seconds per iteration of `fn`, from a repetition loop calibrated to run
/// at least `min_seconds` of wall clock (doubling reps until it does).
template <typename Fn>
double TimeIt(Fn&& fn, double min_seconds = 0.15) {
  size_t reps = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reps; ++i) fn();
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (elapsed >= min_seconds || reps >= (size_t{1} << 30)) {
      return elapsed / static_cast<double>(reps);
    }
    reps = elapsed <= 0.0
               ? reps * 2
               : std::max(reps * 2,
                          static_cast<size_t>(
                              static_cast<double>(reps) * min_seconds /
                              elapsed) +
                              1);
  }
}

struct KernelRow {
  std::string name;
  std::string unit;       // what "per_sec" counts
  size_t n = 0;           // elements per iteration
  double scalar_per_sec = 0.0;
  double simd_per_sec = 0.0;
  double simd_speedup = 0.0;
};

struct SubstrateRow {
  std::string name;
  double seconds_per_iter = 0.0;
};

/// Times one kernel closure under forced-scalar and the active dispatch
/// level; `n` is the per-iteration element count the throughput reports.
template <typename Fn>
KernelRow BenchKernel(const char* name, const char* unit, size_t n, Fn&& fn) {
  KernelRow row;
  row.name = name;
  row.unit = unit;
  row.n = n;
  kernels::Configure({kernels::DispatchLevel::kScalar});
  const double scalar = TimeIt(fn);
  kernels::Configure({});  // restore the startup resolution
  const double simd = TimeIt(fn);
  row.scalar_per_sec = static_cast<double>(n) / scalar;
  row.simd_per_sec = static_cast<double>(n) / simd;
  row.simd_speedup = simd > 0.0 ? scalar / simd : 0.0;
  return row;
}

std::vector<KernelRow> RunKernelBenches() {
  constexpr size_t kN = 1'000'000;
  workload::Generator generator({}, 0x5117'CA7Bull);
  const auto profiles = generator.Profiles(static_cast<int>(kN));
  const core::CatalogIndex index = core::CatalogIndex::Build(profiles);
  const kernels::CoeffSoA soa{
      index.alphas(core::ParamAxis::kQuality).data(),
      index.betas(core::ParamAxis::kQuality).data(),
      index.alphas(core::ParamAxis::kCost).data(),
      index.betas(core::ParamAxis::kCost).data(),
      index.alphas(core::ParamAxis::kLatency).data(),
      index.betas(core::ParamAxis::kLatency).data()};

  std::vector<KernelRow> rows;

  std::vector<core::WorkforceCell> cells(kN);
  const core::ParamVector thresholds{0.77, 0.95, 1.0};
  rows.push_back(BenchKernel("fill_workforce_cells", "cells", kN, [&] {
    kernels::FillWorkforceCells(soa, 0, kN, thresholds,
                                core::WorkforcePolicy::kPaperMaxOfThree,
                                cells.data());
    Escape(cells.data());
  }));

  std::vector<core::ParamVector> params(kN);
  rows.push_back(BenchKernel("estimate_params", "params", kN, [&] {
    kernels::EstimateParams(soa, 0.5, 0, kN, params.data());
    Escape(params.data());
  }));

  // Dominance over the estimated block, SoA-transposed; a query point worse
  // than most so CountDominators does full-width counting work.
  kernels::EstimateParams(soa, 0.5, 0, kN, params.data());
  std::vector<double> quality(kN), cost(kN), latency(kN);
  for (size_t i = 0; i < kN; ++i) {
    quality[i] = params[i].quality;
    cost[i] = params[i].cost;
    latency[i] = params[i].latency;
  }
  const kernels::PointSoA pts{quality.data(), cost.data(), latency.data()};
  const core::ParamVector query{0.10, 0.95, 0.95};
  rows.push_back(BenchKernel("count_dominators", "comparisons", kN, [&] {
    Escape(kernels::CountDominators(pts, kN, query));
  }));

  return rows;
}

std::vector<SubstrateRow> RunSubstrateBenches() {
  std::vector<SubstrateRow> rows;
  auto add = [&](const char* name, double seconds) {
    rows.push_back(SubstrateRow{name, seconds});
  };

  {
    stratrec::Rng rng(1);
    std::vector<geo::Point3> points;
    points.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      points.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    }
    add("rtree_insert_10k", TimeIt([&] {
          geo::RTree tree;
          for (int i = 0; i < 10000; ++i) {
            tree.Insert(points[static_cast<size_t>(i)], i);
          }
          Escape(tree.size());
        }));
    geo::RTree tree;
    for (int i = 0; i < 10000; ++i) {
      tree.Insert(points[static_cast<size_t>(i)], i);
    }
    const geo::Rect3 box{{0.2, 0.2, 0.2}, {0.5, 0.5, 0.5}};
    add("rtree_query_10k", TimeIt([&] { Escape(tree.Count(box)); }));
  }

  {
    workload::Generator generator({}, 3);
    const auto strategies = generator.StrategyParams(2000);
    add("kskyband_2k", TimeIt([&] { Escape(core::KSkyband(strategies, 5)); }));
  }

  {
    workload::GeneratorOptions options;
    options.distribution = workload::DimDistribution::kNormal;
    workload::Generator generator(options, 4);
    const auto strategies = generator.StrategyParams(3000);
    const core::ParamVector d{0.9, 0.2, 0.2};
    add("adpar_exact_3k",
        TimeIt([&] { Escape(core::AdparExact(strategies, d, 5)); }));
    add("adpar_skyband_3k",
        TimeIt([&] { Escape(core::AdparExactSkyband(strategies, d, 5)); }));
  }

  {
    stratrec::Rng rng(5);
    std::vector<core::KnapsackItem> items;
    for (int i = 0; i < 100000; ++i) {
      core::KnapsackItem item;
      item.index = static_cast<size_t>(i);
      item.weight = rng.Uniform(0.01, 0.2);
      item.value = rng.Uniform(0.1, 1.0);
      item.sort_value = item.value;
      items.push_back(item);
    }
    add("greedy_knapsack_100k", TimeIt([&] {
          auto copy = items;
          Escape(core::GreedyKnapsack(std::move(copy), 5.0, {}));
        }));
  }

  {
    stratrec::Rng rng(6);
    std::vector<double> xs, ys;
    for (int i = 0; i < 10000; ++i) {
      const double x = rng.Uniform();
      xs.push_back(x);
      ys.push_back(0.09 * x + 0.85 + rng.Normal(0, 0.02));
    }
    add("fit_linear_10k",
        TimeIt([&] { Escape(stratrec::stats::FitLinear(xs, ys)); }));
  }

  {
    stratrec::Rng rng(7);
    std::vector<double> values;
    for (int i = 0; i < 1000000; ++i) values.push_back(rng.Uniform());
    add("ksmallest_1m", TimeIt([&] {
          geo::KSmallestTracker tracker(10);
          for (double v : values) tracker.Push(v);
          Escape(tracker.KthSmallest());
        }));
  }

  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const char* output_path = argc > 1 ? argv[1] : "micro_substrates.json";
  const char* dispatch = kernels::DispatchLevelName(
      kernels::ActiveDispatchLevel());
  std::printf("micro_substrates: kernels at |S| = 1M (scalar vs %s), plus "
              "substrate micro-benchmarks.\n\n",
              dispatch);

  const std::vector<KernelRow> kernel_rows = RunKernelBenches();
  stratrec::AsciiTable kernel_table(
      {"kernel", "scalar/s", "simd/s", "simd speedup", "unit"});
  for (const KernelRow& r : kernel_rows) {
    kernel_table.AddRow({r.name, stratrec::FormatDouble(r.scalar_per_sec, 0),
                         stratrec::FormatDouble(r.simd_per_sec, 0),
                         stratrec::FormatDouble(r.simd_speedup, 2) + "x",
                         r.unit});
  }
  kernel_table.Print();
  std::printf("\n");

  const std::vector<SubstrateRow> substrate_rows = RunSubstrateBenches();
  stratrec::AsciiTable substrate_table({"substrate", "seconds/iter"});
  for (const SubstrateRow& r : substrate_rows) {
    substrate_table.AddRow(
        {r.name, stratrec::FormatDouble(r.seconds_per_iter, 6)});
  }
  substrate_table.Print();

  std::string json =
      "{\n  \"workload\": {\"hardware_threads\": " +
      std::to_string(std::thread::hardware_concurrency()) +
      ", \"kernel_dispatch\": \"" + dispatch + "\", \"compiler_flags\": \"" +
      kernels::CompileFlags() + "\"},\n  \"kernels\": [";
  for (size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelRow& r = kernel_rows[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"name\": \"" + r.name + "\", \"unit\": \"" + r.unit +
            "\", \"n\": " + std::to_string(r.n) + ", \"scalar_per_sec\": " +
            stratrec::FormatDouble(r.scalar_per_sec, 0) +
            ", \"simd_per_sec\": " +
            stratrec::FormatDouble(r.simd_per_sec, 0) +
            ", \"simd_speedup\": " +
            stratrec::FormatDouble(r.simd_speedup, 3) + "}";
  }
  json += "\n  ],\n  \"substrates\": [";
  for (size_t i = 0; i < substrate_rows.size(); ++i) {
    const SubstrateRow& r = substrate_rows[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"name\": \"" + r.name + "\", \"seconds_per_iter\": " +
            stratrec::FormatDouble(r.seconds_per_iter, 9) + "}";
  }
  json += "\n  ]\n}\n";

  if (FILE* out = std::fopen(output_path, "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\n(written to %s)\n", output_path);
  }
  return 0;
}
