// Trace-driven load harness: replay a recorded journal through a fresh
// Service at several pool sizes, assert every replayed report bit-matches
// the recorded one, and report throughput.
//
// The input is a self-contained stratrec-journal file (record one by
// setting ServiceConfig::journal.path — e.g. example_platform_simulation
// writes platform_simulation.journal). Replay is the paper's evaluation
// loop made operational: the same request stream, pushed through the same
// pipeline, must land on byte-identical reports at any concurrency — so
// the harness doubles as a determinism check (exit code 1 on any
// mismatch) and as a load generator (rounds multiply the trace).
//
// Usage: bench_replay_load <journal> [rounds] [thread[,thread...]]
//   bench_replay_load platform_simulation.journal 64 1,2,4,8
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/api/replay.h"
#include "src/common/ascii_table.h"
#include "src/common/json.h"
#include "src/core/kernels/kernels.h"

namespace {

namespace wire = stratrec::wire;

std::vector<size_t> ParseThreadList(const char* arg) {
  std::vector<size_t> threads;
  const std::string text = arg;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const unsigned long long value =
        std::strtoull(text.substr(start, end - start).c_str(), nullptr, 10);
    if (value > 0) threads.push_back(static_cast<size_t>(value));
    start = end + 1;
  }
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <journal> [rounds] [thread[,thread...]]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const size_t rounds = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  std::vector<size_t> thread_counts =
      argc > 3 ? ParseThreadList(argv[3]) : std::vector<size_t>{1, 2, 4, 8};
  if (thread_counts.empty()) thread_counts = {1};

  auto trace = wire::ReadTraceFile(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "cannot read trace: %s\n",
                 trace.status().ToString().c_str());
    return 2;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf(
      "Replaying %s: %zu recorded pairs x %zu rounds (%u hardware "
      "threads)\n\n",
      path.c_str(), trace->pairs.size(), rounds == 0 ? 1 : rounds, hardware);

  struct Run {
    size_t threads = 0;
    wire::ReplayResult result;
  };
  std::vector<Run> runs;
  bool all_matched = true;
  for (const size_t threads : thread_counts) {
    wire::ReplayOptions options;
    options.worker_threads = threads;
    options.rounds = rounds;
    auto result = wire::ReplayTrace(*trace, options);
    if (!result.ok()) {
      std::fprintf(stderr, "replay at %zu threads failed: %s\n", threads,
                   result.status().ToString().c_str());
      return 2;
    }
    if (!result->ok()) {
      all_matched = false;
      for (const std::string& id : result->mismatched) {
        std::fprintf(stderr,
                     "MISMATCH at %zu threads: replayed report %s differs "
                     "from the journal\n",
                     threads, id.c_str());
      }
    }
    runs.push_back({threads, std::move(*result)});
  }

  stratrec::AsciiTable table({"threads", "replayed", "matched", "skipped",
                              "seconds", "pairs/sec", "work items/sec"});
  for (const Run& run : runs) {
    const wire::ReplayResult& r = run.result;
    const double pairs_per_sec =
        r.seconds > 0.0 ? static_cast<double>(r.replayed) / r.seconds : 0.0;
    const double items_per_sec =
        r.seconds > 0.0 ? static_cast<double>(r.work_items) / r.seconds : 0.0;
    table.AddRow({std::to_string(run.threads), std::to_string(r.replayed),
                  std::to_string(r.matched), std::to_string(r.skipped),
                  stratrec::FormatDouble(r.seconds, 3),
                  stratrec::FormatDouble(pairs_per_sec, 1),
                  stratrec::FormatDouble(items_per_sec, 1)});
  }
  table.Print();

  // Machine-readable trajectory, async_throughput.json style — built with
  // the json module so the path (and anything else) is escaped properly.
  namespace json = stratrec::json;
  json::Value doc = json::Value::Object();
  json::Value workload = json::Value::Object();
  workload.Add("journal", path);
  workload.Add("recorded_pairs", trace->pairs.size());
  workload.Add("rounds", rounds == 0 ? size_t{1} : rounds);
  workload.Add("hardware_threads", size_t{hardware});
  workload.Add("kernel_dispatch",
               std::string(stratrec::core::kernels::DispatchLevelName(
                   stratrec::core::kernels::ActiveDispatchLevel())));
  workload.Add("compiler_flags", stratrec::core::kernels::CompileFlags());
  doc.Add("workload", std::move(workload));
  json::Value run_rows = json::Value::Array();
  for (const Run& run : runs) {
    const wire::ReplayResult& r = run.result;
    json::Value row = json::Value::Object();
    row.Add("threads", run.threads);
    row.Add("replayed", r.replayed);
    row.Add("matched", r.matched);
    row.Add("seconds", r.seconds);
    row.Add("pairs_per_sec",
            r.seconds > 0.0 ? static_cast<double>(r.replayed) / r.seconds
                            : 0.0);
    run_rows.Append(std::move(row));
  }
  doc.Add("runs", std::move(run_rows));
  const std::string json_text = json::Dump(doc) + "\n";
  std::printf("\n%s", json_text.c_str());
  if (FILE* out = std::fopen("replay_load.json", "w")) {
    std::fputs(json_text.c_str(), out);
    std::fclose(out);
    std::printf("(written to replay_load.json)\n");
  }

  if (!all_matched) {
    std::fprintf(stderr, "\nreplay determinism check FAILED\n");
    return 1;
  }
  std::printf("\nreplay determinism check passed: every replayed report "
              "bit-matches the journal\n");
  return 0;
}
