// Figure 17: quality of ADPaR solutions — the Euclidean distance between the
// requested parameters d and the recommended alternative d' (smaller is
// better) for ADPaR-Exact vs Baseline2 vs Baseline3, and vs the exponential
// ADPaRB on small instances. Paper defaults: |S| = 200, k = 5 (brute-force
// panels use |S| = 20, k = 5); distances here are in the normalized
// parameter space (the paper plots unnormalized internal units, so only the
// ordering and trends are comparable).
#include <cstdio>
#include <functional>

#include "src/common/ascii_table.h"
#include "src/core/adpar.h"
#include "src/core/adpar_baselines.h"
#include "src/core/adpar_paper_sweep.h"
#include "src/workload/generators.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

constexpr int kRuns = 10;

struct Row {
  double exact = 0.0;
  double paper_sweep = 0.0;
  double baseline2 = 0.0;
  double baseline3 = 0.0;
  double brute = 0.0;
  bool has_brute = false;
};

// Requests are drawn demanding (high quality, tight budgets) so that the
// original parameters are rarely satisfiable and ADPaR has real work to do.
core::ParamVector HardRequest(stratrec::Rng* rng) {
  return core::ParamVector{rng->Uniform(0.85, 1.0), rng->Uniform(0.0, 0.35),
                           rng->Uniform(0.0, 0.35)};
}

Row Evaluate(int num_s, int k, bool with_brute) {
  Row row;
  row.has_brute = with_brute;
  int counted = 0;
  for (int run = 0; run < kRuns; ++run) {
    workload::GeneratorOptions options;
    workload::Generator generator(options, 0xF16'17ull * 100 + run);
    const auto strategies = generator.StrategyParams(num_s);
    stratrec::Rng request_rng(0xD00Dull + run);
    const core::ParamVector d = HardRequest(&request_rng);

    auto exact = core::AdparExact(strategies, d, k);
    auto sweep = core::AdparPaperSweep(strategies, d, k);
    auto b2 = core::AdparBaseline2(strategies, d, k);
    auto b3 = core::AdparBaseline3(strategies, d, k);
    if (!exact.ok() || !sweep.ok() || !b2.ok() || !b3.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   exact.ok() ? "baseline" : exact.status().ToString().c_str());
      continue;
    }
    row.exact += exact->distance;
    row.paper_sweep += sweep->distance;
    row.baseline2 += b2->distance;
    row.baseline3 += b3->distance;
    if (with_brute) {
      auto brute = core::AdparBrute(strategies, d, k);
      if (brute.ok()) row.brute += brute->distance;
    }
    ++counted;
  }
  if (counted > 0) {
    row.exact /= counted;
    row.paper_sweep /= counted;
    row.baseline2 /= counted;
    row.baseline3 /= counted;
    row.brute /= counted;
  }
  return row;
}

void Panel(const char* title, const char* x_label, const std::vector<int>& xs,
           const std::function<Row(int)>& evaluate) {
  std::printf("\n%s\n", title);
  bool with_brute = false;
  std::vector<Row> rows;
  rows.reserve(xs.size());
  for (int x : xs) {
    rows.push_back(evaluate(x));
    with_brute = with_brute || rows.back().has_brute;
  }
  std::vector<std::string> headers = {x_label, "ADPaR-Exact", "PaperSweep",
                                      "Baseline2", "Baseline3"};
  if (with_brute) headers.push_back("ADPaRB");
  AsciiTable table(headers);
  for (size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> cells = {std::to_string(xs[i]),
                                      FormatDouble(rows[i].exact, 4),
                                      FormatDouble(rows[i].paper_sweep, 4),
                                      FormatDouble(rows[i].baseline2, 4),
                                      FormatDouble(rows[i].baseline3, 4)};
    if (with_brute) cells.push_back(FormatDouble(rows[i].brute, 4));
    table.AddRow(std::move(cells));
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Figure 17: Euclidean distance between d and d' (avg of %d runs; "
      "smaller is better)\n",
      kRuns);

  Panel("(a) varying |S| (k = 5, no brute force)", "|S|",
        {200, 400, 600, 800, 1000},
        [](int s) { return Evaluate(s, 5, /*with_brute=*/false); });
  Panel("(b) varying |S| (k = 5, with brute force)", "|S|", {10, 20, 30},
        [](int s) { return Evaluate(s, 5, /*with_brute=*/true); });
  Panel("(c) varying k (|S| = 200, no brute force)", "k",
        {10, 20, 30, 40, 50},
        [](int k) { return Evaluate(200, k, /*with_brute=*/false); });
  Panel("(d) varying k (|S| = 20, with brute force)", "k", {5, 10, 15},
        [](int k) { return Evaluate(20, k, /*with_brute=*/true); });
  return 0;
}
