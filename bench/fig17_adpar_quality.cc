// Figure 17: quality of ADPaR solutions — the Euclidean distance between the
// requested parameters d and the recommended alternative d' (smaller is
// better) for ADPaR-Exact vs Baseline2 vs Baseline3, and vs the exponential
// ADPaRB on small instances. Paper defaults: |S| = 200, k = 5 (brute-force
// panels use |S| = 20, k = 5); distances here are in the normalized
// parameter space (the paper plots unnormalized internal units, so only the
// ordering and trends are comparable).
#include <cstdio>
#include <functional>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/workload/generators.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

constexpr int kRuns = 10;

struct Row {
  double exact = 0.0;
  double paper_sweep = 0.0;
  double baseline2 = 0.0;
  double baseline3 = 0.0;
  double brute = 0.0;
  bool has_brute = false;
};

// Requests are drawn demanding (high quality, tight budgets) so that the
// original parameters are rarely satisfiable and ADPaR has real work to do.
core::ParamVector HardRequest(stratrec::Rng* rng) {
  return core::ParamVector{rng->Uniform(0.85, 1.0), rng->Uniform(0.0, 0.35),
                           rng->Uniform(0.0, 0.35)};
}

Row Evaluate(int num_s, int k, bool with_brute) {
  Row row;
  row.has_brute = with_brute;
  int counted = 0;
  for (int run = 0; run < kRuns; ++run) {
    workload::GeneratorOptions options;
    workload::Generator generator(options, 0xF16'17ull * 100 + run);
    auto service = stratrec::Service::Create(
        api::ConstantCatalog(generator.StrategyParams(num_s)));
    if (!service.ok()) continue;
    stratrec::Rng request_rng(0xD00Dull + run);

    api::SweepRequest sweep;
    sweep.targets = {{"hard", HardRequest(&request_rng), k}};
    sweep.solvers = {"exact", "paper-sweep", "baseline2", "baseline3"};
    if (with_brute) sweep.solvers.push_back("brute");
    auto report = service->RunSweep(sweep);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      continue;
    }
    // Validate the whole run before accumulating anything, so a partial
    // failure cannot skew the averages. The brute backend alone may refuse
    // oversized instances without invalidating the run.
    bool run_ok = true;
    for (const api::SweepOutcome& outcome : report->outcomes) {
      if (!outcome.status.ok() && outcome.solver != "brute") run_ok = false;
    }
    if (!run_ok) {
      std::fprintf(stderr, "run failed: solver error\n");
      continue;
    }
    for (const api::SweepOutcome& outcome : report->outcomes) {
      if (!outcome.status.ok()) continue;
      if (outcome.solver == "exact") row.exact += outcome.result.distance;
      if (outcome.solver == "paper-sweep") {
        row.paper_sweep += outcome.result.distance;
      }
      if (outcome.solver == "baseline2") {
        row.baseline2 += outcome.result.distance;
      }
      if (outcome.solver == "baseline3") {
        row.baseline3 += outcome.result.distance;
      }
      if (outcome.solver == "brute") row.brute += outcome.result.distance;
    }
    ++counted;
  }
  if (counted > 0) {
    row.exact /= counted;
    row.paper_sweep /= counted;
    row.baseline2 /= counted;
    row.baseline3 /= counted;
    row.brute /= counted;
  }
  return row;
}

void Panel(const char* title, const char* x_label, const std::vector<int>& xs,
           const std::function<Row(int)>& evaluate) {
  std::printf("\n%s\n", title);
  bool with_brute = false;
  std::vector<Row> rows;
  rows.reserve(xs.size());
  for (int x : xs) {
    rows.push_back(evaluate(x));
    with_brute = with_brute || rows.back().has_brute;
  }
  std::vector<std::string> headers = {x_label, "ADPaR-Exact", "PaperSweep",
                                      "Baseline2", "Baseline3"};
  if (with_brute) headers.push_back("ADPaRB");
  AsciiTable table(headers);
  for (size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> cells = {std::to_string(xs[i]),
                                      FormatDouble(rows[i].exact, 4),
                                      FormatDouble(rows[i].paper_sweep, 4),
                                      FormatDouble(rows[i].baseline2, 4),
                                      FormatDouble(rows[i].baseline3, 4)};
    if (with_brute) cells.push_back(FormatDouble(rows[i].brute, 4));
    table.AddRow(std::move(cells));
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Figure 17: Euclidean distance between d and d' (avg of %d runs; "
      "smaller is better)\n",
      kRuns);

  Panel("(a) varying |S| (k = 5, no brute force)", "|S|",
        {200, 400, 600, 800, 1000},
        [](int s) { return Evaluate(s, 5, /*with_brute=*/false); });
  Panel("(b) varying |S| (k = 5, with brute force)", "|S|", {10, 20, 30},
        [](int s) { return Evaluate(s, 5, /*with_brute=*/true); });
  Panel("(c) varying k (|S| = 200, no brute force)", "k",
        {10, 20, 30, 40, 50},
        [](int k) { return Evaluate(200, k, /*with_brute=*/false); });
  Panel("(d) varying k (|S| = 20, with brute force)", "k", {5, 10, 15},
        [](int k) { return Evaluate(20, k, /*with_brute=*/true); });
  return 0;
}
