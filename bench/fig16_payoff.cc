// Figure 16: aggregated pay-off of BruteForce vs BatchStrat and the
// empirical approximation factor, varying k, m and |S|. The paper reports
// BatchStrat's factor above 0.9 throughout — far better than the theoretical
// 1/2 guarantee (Theorem 3).
#include <cstdio>
#include <functional>

#include "src/common/ascii_table.h"
#include "src/core/batch_scheduler.h"
#include "src/workload/generators.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

constexpr int kDefaultS = 30;
constexpr int kDefaultM = 5;
constexpr int kDefaultK = 5;
constexpr double kDefaultW = 1.0;
constexpr int kRuns = 10;

struct Row {
  double brute = 0.0;
  double batchstrat = 0.0;
  double worst_factor = 1.0;

  double MeanFactor() const {
    return brute > 0.0 ? batchstrat / brute : 1.0;
  }
};

Row Evaluate(int num_s, int m, int k) {
  Row row;
  for (int run = 0; run < kRuns; ++run) {
    workload::GeneratorOptions options;
    workload::Generator generator(options, 0xF16'16ull * 100 + run);
    const auto profiles = generator.Profiles(num_s);
    const auto requests = generator.RequestsWithRanges(
        m, k, /*quality=*/{0.50, 0.75}, /*cost=*/{0.70, 1.0},
        /*latency=*/{0.70, 1.0});
    core::BatchOptions batch;
    batch.objective = core::Objective::kPayoff;
    batch.aggregation = core::AggregationMode::kMax;
    auto brute = core::BruteForceBatch(requests, profiles, kDefaultW, batch);
    auto greedy = core::BatchStrat(requests, profiles, kDefaultW, batch);
    if (!brute.ok() || !greedy.ok()) {
      std::fprintf(stderr, "run failed\n");
      continue;
    }
    row.brute += brute->total_objective;
    row.batchstrat += greedy->total_objective;
    if (brute->total_objective > 0.0) {
      row.worst_factor = std::min(
          row.worst_factor, greedy->total_objective / brute->total_objective);
    }
  }
  row.brute /= kRuns;
  row.batchstrat /= kRuns;
  return row;
}

void Panel(const char* title, const char* x_label, const std::vector<int>& xs,
           const std::function<Row(int)>& evaluate) {
  std::printf("\n%s\n", title);
  AsciiTable table(
      {x_label, "BruteForce", "BatchStrat", "approx-factor", "worst-run"});
  for (int x : xs) {
    const Row row = evaluate(x);
    table.AddRow({std::to_string(x), FormatDouble(row.brute, 3),
                  FormatDouble(row.batchstrat, 3),
                  FormatDouble(row.MeanFactor(), 3),
                  FormatDouble(row.worst_factor, 3)});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Figure 16: aggregated pay-off and approximation factor (avg of %d "
      "runs)\ndefaults: |S|=%d m=%d k=%d W=%.2f; theoretical bound 0.5\n",
      kRuns, kDefaultS, kDefaultM, kDefaultK, kDefaultW);

  Panel("(a) varying k", "k", {2, 5, 10, 15},
        [](int k) { return Evaluate(kDefaultS, kDefaultM, k); });
  Panel("(b) varying m", "m", {5, 10, 15, 20},
        [](int m) { return Evaluate(kDefaultS, m, kDefaultK); });
  Panel("(c) varying |S|", "|S|", {10, 20, 30},
        [](int s) { return Evaluate(s, kDefaultM, kDefaultK); });
  return 0;
}
