// Figure 16: aggregated pay-off of BruteForce vs BatchStrat and the
// empirical approximation factor, varying k, m and |S|. The paper reports
// BatchStrat's factor above 0.9 throughout — far better than the theoretical
// 1/2 guarantee (Theorem 3).
#include <cstdio>
#include <functional>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/workload/generators.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

constexpr int kDefaultS = 30;
constexpr int kDefaultM = 5;
constexpr int kDefaultK = 5;
constexpr double kDefaultW = 1.0;
constexpr int kRuns = 10;

struct Row {
  double brute = 0.0;
  double batchstrat = 0.0;
  double worst_factor = 1.0;

  double MeanFactor() const {
    return brute > 0.0 ? batchstrat / brute : 1.0;
  }
};

Row Evaluate(int num_s, int m, int k) {
  Row row;
  for (int run = 0; run < kRuns; ++run) {
    workload::GeneratorOptions options;
    workload::Generator generator(options, 0xF16'16ull * 100 + run);
    auto service = stratrec::Service::Create(
        api::CatalogFromProfiles(generator.Profiles(num_s)));
    if (!service.ok()) continue;
    api::BatchRequest batch;
    batch.requests = generator.RequestsWithRanges(
        m, k, /*quality=*/{0.50, 0.75}, /*cost=*/{0.70, 1.0},
        /*latency=*/{0.70, 1.0});
    batch.availability = api::AvailabilitySpec::Fixed(kDefaultW);
    batch.objective = core::Objective::kPayoff;
    batch.aggregation = core::AggregationMode::kMax;
    batch.recommend_alternatives = false;  // only the batch stage is measured
    batch.algorithm = "brute-force";
    auto brute = service->SubmitBatch(batch);
    batch.algorithm = "batchstrat";
    auto greedy = service->SubmitBatch(batch);
    if (!brute.ok() || !greedy.ok()) {
      std::fprintf(stderr, "run failed\n");
      continue;
    }
    const double brute_objective =
        brute->result.aggregator.batch.total_objective;
    const double greedy_objective =
        greedy->result.aggregator.batch.total_objective;
    row.brute += brute_objective;
    row.batchstrat += greedy_objective;
    if (brute_objective > 0.0) {
      row.worst_factor =
          std::min(row.worst_factor, greedy_objective / brute_objective);
    }
  }
  row.brute /= kRuns;
  row.batchstrat /= kRuns;
  return row;
}

void Panel(const char* title, const char* x_label, const std::vector<int>& xs,
           const std::function<Row(int)>& evaluate) {
  std::printf("\n%s\n", title);
  AsciiTable table(
      {x_label, "BruteForce", "BatchStrat", "approx-factor", "worst-run"});
  for (int x : xs) {
    const Row row = evaluate(x);
    table.AddRow({std::to_string(x), FormatDouble(row.brute, 3),
                  FormatDouble(row.batchstrat, 3),
                  FormatDouble(row.MeanFactor(), 3),
                  FormatDouble(row.worst_factor, 3)});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Figure 16: aggregated pay-off and approximation factor (avg of %d "
      "runs)\ndefaults: |S|=%d m=%d k=%d W=%.2f; theoretical bound 0.5\n",
      kRuns, kDefaultS, kDefaultM, kDefaultK, kDefaultW);

  Panel("(a) varying k", "k", {2, 5, 10, 15},
        [](int k) { return Evaluate(kDefaultS, kDefaultM, k); });
  Panel("(b) varying m", "m", {5, 10, 15, 20},
        [](int m) { return Evaluate(kDefaultS, m, kDefaultK); });
  Panel("(c) varying |S|", "|S|", {10, 20, 30},
        [](int s) { return Evaluate(s, kDefaultM, kDefaultK); });
  return 0;
}
