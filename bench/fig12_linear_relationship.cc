// Figure 12: relationship between deployment parameters and worker
// availability — four panels (translation/creation x SEQ-IND-CRO/
// SIM-COL-CRO). Each panel lists observed (quality, cost, latency) at
// increasing availability; the paper's finding is that quality and cost rise
// linearly with availability while latency falls.
#include <algorithm>
#include <cstdio>

#include "src/common/ascii_table.h"
#include "src/platform/amt.h"
#include "src/stats/linear_regression.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace core = stratrec::core;
namespace platform = stratrec::platform;

void Panel(platform::AmtSimulator* amt, platform::TaskType type,
           const char* stage_name) {
  const core::StageSpec stage = core::ParseStageName(stage_name).value();
  auto observations = amt->CollectModelObservations(type, stage);
  std::sort(observations.begin(), observations.end(),
            [](const core::Observation& a, const core::Observation& b) {
              return a.availability < b.availability;
            });

  std::printf("\n(%s %s)\n", platform::TaskTypeName(type), stage_name);
  AsciiTable table({"availability", "quality", "cost", "latency"});
  // Print every third observation to keep the series readable.
  for (size_t i = 0; i < observations.size(); i += 3) {
    const auto& obs = observations[i];
    table.AddRow({FormatDouble(obs.availability, 3),
                  FormatDouble(obs.outcome.quality, 3),
                  FormatDouble(obs.outcome.cost, 3),
                  FormatDouble(obs.outcome.latency, 3)});
  }
  table.Print();

  // Direction check: fitted slopes.
  auto fitted = core::FitProfile(observations);
  if (fitted.ok()) {
    std::printf(
        "fitted slopes: quality %+0.3f (rises), cost %+0.3f (rises), "
        "latency %+0.3f (falls); R^2 q=%.3f c=%.3f l=%.3f\n",
        fitted->profile.quality.alpha, fitted->profile.cost.alpha,
        fitted->profile.latency.alpha, fitted->quality_fit.r_squared,
        fitted->cost_fit.r_squared, fitted->latency_fit.r_squared);
  }
}

}  // namespace

int main() {
  std::printf(
      "Figure 12: deployment parameters vs worker availability (4 panels)\n");
  platform::AmtStudyOptions options;
  options.observation_repetitions = 10;
  platform::AmtSimulator amt(options, /*seed=*/0xF16'12ull);

  Panel(&amt, platform::TaskType::kSentenceTranslation, "SEQ-IND-CRO");
  Panel(&amt, platform::TaskType::kSentenceTranslation, "SIM-COL-CRO");
  Panel(&amt, platform::TaskType::kTextCreation, "SEQ-IND-CRO");
  Panel(&amt, platform::TaskType::kTextCreation, "SIM-COL-CRO");

  std::printf(
      "\nExpected shape (paper): each parameter is linear in availability — "
      "quality\nand cost increase, latency decreases.\n");
  return 0;
}
