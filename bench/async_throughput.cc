// Async batch throughput: the paper's million-strategy headline workload
// (Figure 18a's BatchStrat setup: m = 10 requests against |S| = 1,000,000
// strategies) pushed through the asynchronous Service API at 1 / 2 / 4 / 8
// worker threads. Each configuration submits a fleet of batches via
// SubmitBatchAsync and waits for every ticket; throughput is deployment
// requests per second of wall clock. The run prints the ASCII table every
// bench driver emits, plus machine-readable JSON (stdout and
// async_throughput.json) so successive PRs can track the perf trajectory.
//
// Usage: bench_async_throughput [strategies] [batches] [requests_per_batch]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/core/kernels/kernels.h"
#include "src/workload/generators.h"

namespace {

namespace api = stratrec::api;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

struct RunResult {
  size_t threads = 0;
  size_t batches = 0;
  size_t requests = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double speedup = 1.0;
  // Work-stealing counters for the timed run (warm-up subtracted): how pool
  // tasks reached their thread — stolen from another worker's deque vs
  // popped from the owner's own.
  size_t steals = 0;
  size_t local_hits = 0;
  // Admission counters. A bare Service admits everything, so these stay 0
  // here; the columns exist so this table and serving_load's read alike,
  // and so a regression that makes the service shed load is loud.
  size_t rejected = 0;
  size_t retry_hints = 0;
  // Stream-tier counters, same contract as the admission pair: a batch-only
  // workload must leave them 0, so nonzero values flag batches leaking
  // through the stream path (or vice versa).
  size_t stream_reschedules = 0;
  size_t snapshot_delta_updates = 0;
  size_t snapshot_rebuilds = 0;
};

/// Counter snapshot taken only once the pool is dry: already-claimed
/// ParallelFor helpers can be popped (and counted) a beat after the batch
/// that spawned them returns, so sampling right after SubmitBatch would
/// misattribute those pops across the warm-up/timed-run boundary.
api::ServiceStats DrainedStats(const stratrec::Service& service) {
  api::ServiceStats stats = service.stats();
  while (stats.queue_depth != 0) {
    std::this_thread::yield();
    stats = service.stats();
  }
  return stats;
}

double MeasureSeconds(const stratrec::Service& service,
                      const std::vector<api::BatchRequest>& batches) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<stratrec::Ticket<api::BatchReport>> tickets;
  tickets.reserve(batches.size());
  for (const api::BatchRequest& batch : batches) {
    tickets.push_back(service.SubmitBatchAsync(batch));
  }
  for (auto& ticket : tickets) {
    auto report = ticket.Wait();
    if (!report.ok()) {
      std::fprintf(stderr, "ticket %s failed: %s\n", ticket.id().c_str(),
                   report.status().ToString().c_str());
      std::exit(1);
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_strategies =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000;
  const size_t num_batches =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  const size_t requests_per_batch =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf(
      "Async batch throughput: %zu batches x %zu requests against %zu "
      "strategies (%u hardware threads)\n"
      "Speedups above the hardware thread count are oversubscription, not "
      "parallelism.\n\n",
      num_batches, requests_per_batch, num_strategies, hardware);

  workload::Generator generator({}, 0xA51C'BE4Cull);
  const auto profiles = generator.Profiles(static_cast<int>(num_strategies));
  std::vector<api::BatchRequest> batches(num_batches);
  for (api::BatchRequest& batch : batches) {
    batch.requests = generator.RequestsWithRanges(
        static_cast<int>(requests_per_batch), 10, {0.50, 0.75}, {0.70, 1.0},
        {0.70, 1.0});
    batch.availability = api::AvailabilitySpec::Fixed(0.5);
    batch.aggregation = core::AggregationMode::kMax;
    batch.recommend_alternatives = false;
  }

  std::vector<RunResult> results;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    api::ServiceConfig config;
    config.execution.worker_threads = threads;
    auto service =
        stratrec::Service::Create(api::CatalogFromProfiles(profiles), config);
    if (!service.ok()) {
      std::fprintf(stderr, "service setup failed: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    // One untimed warm-up batch per configuration (first-touch effects).
    (void)service->SubmitBatch(batches.front());
    const api::ServiceStats warmup = DrainedStats(*service);

    RunResult run;
    run.threads = threads;
    run.batches = num_batches;
    run.requests = num_batches * requests_per_batch;
    run.seconds = MeasureSeconds(*service, batches);
    run.requests_per_sec =
        run.seconds > 0.0 ? static_cast<double>(run.requests) / run.seconds
                          : 0.0;
    run.speedup =
        results.empty() ? 1.0 : results.front().seconds / run.seconds;
    const api::ServiceStats stats = DrainedStats(*service);
    run.steals = stats.steals - warmup.steals;
    run.local_hits = stats.local_hits - warmup.local_hits;
    run.rejected = stats.rejected_requests;
    run.retry_hints = stats.retry_after_hints;
    run.stream_reschedules = stats.stream_reschedules;
    run.snapshot_delta_updates = stats.snapshot_delta_updates;
    run.snapshot_rebuilds = stats.snapshot_rebuilds;
    results.push_back(run);
  }

  stratrec::AsciiTable table({"threads", "batches", "seconds", "requests/sec",
                              "speedup vs 1", "steals", "local hits",
                              "rejected", "retry hints"});
  for (const RunResult& run : results) {
    table.AddRow({std::to_string(run.threads), std::to_string(run.batches),
                  stratrec::FormatDouble(run.seconds, 3),
                  stratrec::FormatDouble(run.requests_per_sec, 1),
                  stratrec::FormatDouble(run.speedup, 2) + "x",
                  std::to_string(run.steals),
                  std::to_string(run.local_hits),
                  std::to_string(run.rejected),
                  std::to_string(run.retry_hints)});
  }
  table.Print();

  // Machine-readable trajectory: one JSON object per configuration.
  std::string json = "{\n  \"workload\": {\"strategies\": " +
                     std::to_string(num_strategies) +
                     ", \"batches\": " + std::to_string(num_batches) +
                     ", \"requests_per_batch\": " +
                     std::to_string(requests_per_batch) +
                     ", \"hardware_threads\": " + std::to_string(hardware) +
                     ", \"kernel_dispatch\": \"" +
                     stratrec::core::kernels::DispatchLevelName(
                         stratrec::core::kernels::ActiveDispatchLevel()) +
                     "\", \"compiler_flags\": \"" +
                     stratrec::core::kernels::CompileFlags() +
                     "\"},\n  \"runs\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& run = results[i];
    json += (i == 0 ? "\n" : ",\n");
    json += "    {\"threads\": " + std::to_string(run.threads) +
            ", \"seconds\": " + stratrec::FormatDouble(run.seconds, 6) +
            ", \"requests_per_sec\": " +
            stratrec::FormatDouble(run.requests_per_sec, 2) +
            ", \"speedup_vs_1\": " + stratrec::FormatDouble(run.speedup, 4) +
            ", \"steals\": " + std::to_string(run.steals) +
            ", \"local_hits\": " + std::to_string(run.local_hits) +
            ", \"rejected_requests\": " + std::to_string(run.rejected) +
            ", \"retry_after_hints\": " + std::to_string(run.retry_hints) +
            ", \"stream_reschedules\": " +
            std::to_string(run.stream_reschedules) +
            ", \"snapshot_delta_updates\": " +
            std::to_string(run.snapshot_delta_updates) +
            ", \"snapshot_rebuilds\": " +
            std::to_string(run.snapshot_rebuilds) + "}";
  }
  json += "\n  ]\n}\n";
  std::printf("\n%s", json.c_str());

  if (FILE* out = std::fopen("async_throughput.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("(written to async_throughput.json)\n");
  }
  return 0;
}
