// Closed-loop serving-tier load: N client threads, each holding one
// keep-alive HTTP connection to a loopback server over a ShardRouter, each
// driving requests back to back (a new request the moment the previous
// response lands — classic closed-loop, so the offered load self-regulates
// to the server's capacity). Reports p50/p95/p99 request latency and
// sustained req/s, as an ASCII table and as serving_load.json.
//
// Before the timed loop the driver asserts the tier end to end: one batch
// and one sweep through the HTTP stack must be *byte-identical* to the same
// requests against an unsharded in-process Service — the router property,
// re-checked through the real transport. Any identity mismatch or any
// 5xx during the loop exits non-zero, which is what lets CI use this bench
// as the serving smoke leg.
//
// Usage: bench_serving_load [strategies] [shards] [clients]
//                           [requests_per_client]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/codec.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/common/json.h"
#include "src/core/kernels/kernels.h"
#include "src/net/http_client.h"
#include "src/net/serving.h"
#include "src/workload/generators.h"

namespace {

namespace api = stratrec::api;
namespace core = stratrec::core;
namespace net = stratrec::net;
namespace wire = stratrec::wire;
namespace workload = stratrec::workload;

struct ClientResult {
  std::vector<double> latencies_ms;
  size_t non_200 = 0;
  size_t server_errors = 0;  // any 5xx fails the bench
};

api::BatchRequest MakeBatch(workload::Generator* generator, size_t sequence) {
  api::BatchRequest batch;
  batch.requests = generator->RequestsWithRanges(8, 6, {0.50, 0.80},
                                                 {0.60, 1.0}, {0.60, 1.0});
  batch.availability = api::AvailabilitySpec::Fixed(0.5);
  batch.aggregation = core::AggregationMode::kMax;
  batch.request_id = "load-batch-" + std::to_string(sequence);
  return batch;
}

api::SweepRequest MakeSweep(workload::Generator* generator, size_t sequence) {
  api::SweepRequest sweep;
  sweep.targets = generator->RequestsWithRanges(4, 4, {0.60, 0.95},
                                                {0.40, 0.9}, {0.40, 0.9});
  sweep.availability = api::AvailabilitySpec::Fixed(0.5);
  sweep.request_id = "load-sweep-" + std::to_string(sequence);
  return sweep;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

/// The pre-flight identity gate: the HTTP response body for `body` must be
/// byte-identical to `expected` (the unsharded in-process encoding).
bool IdentityCheck(net::HttpClient* client, const std::string& target,
                   const std::string& body, const std::string& expected,
                   const char* label) {
  auto response = client->PostJson(target, body);
  if (!response.ok()) {
    std::fprintf(stderr, "identity %s: transport failed: %s\n", label,
                 response.status().ToString().c_str());
    return false;
  }
  if (response->status_code != 200) {
    std::fprintf(stderr, "identity %s: HTTP %d\n", label,
                 response->status_code);
    return false;
  }
  if (response->body != expected) {
    std::fprintf(stderr,
                 "identity %s: sharded-over-HTTP report diverged from the "
                 "unsharded Service\n",
                 label);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_strategies =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const size_t num_shards = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;
  const size_t num_clients = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  const size_t requests_per_client =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 25;

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf(
      "Serving load: %zu closed-loop clients x %zu requests against "
      "%zu shards over %zu strategies (%u hardware threads)\n\n",
      num_clients, requests_per_client, num_shards, num_strategies, hardware);

  workload::Generator generator({}, 0x5E41'0AD5ull);
  const auto profiles = generator.Profiles(static_cast<int>(num_strategies));
  const core::Catalog catalog = api::CatalogFromProfiles(profiles);

  stratrec::RouterConfig router_config;
  router_config.shards = num_shards;
  auto router = stratrec::ShardRouter::Create(catalog, router_config);
  if (!router.ok()) {
    std::fprintf(stderr, "router setup failed: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }
  auto server = net::StartServing(*router);
  if (!server.ok()) {
    std::fprintf(stderr, "server setup failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server->port());

  // Pre-flight: one batch and one sweep must come back byte-identical to
  // the unsharded Service — through the full HTTP stack.
  {
    auto unsharded = api::Service::Create(catalog, router_config.service);
    if (!unsharded.ok()) {
      std::fprintf(stderr, "unsharded setup failed: %s\n",
                   unsharded.status().ToString().c_str());
      return 1;
    }
    workload::Generator check_gen({}, 0x1DE7'71F1ull);
    const api::BatchRequest batch = MakeBatch(&check_gen, 0);
    const api::SweepRequest sweep = MakeSweep(&check_gen, 0);
    auto batch_expected = unsharded->SubmitBatch(batch);
    auto sweep_expected = unsharded->RunSweep(sweep);
    if (!batch_expected.ok() || !sweep_expected.ok()) {
      std::fprintf(stderr, "unsharded baseline failed\n");
      return 1;
    }
    auto client = net::HttpClient::Connect("127.0.0.1", server->port());
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    if (!IdentityCheck(&*client, "/v1/batch",
                       stratrec::json::Dump(wire::Encode(batch)),
                       stratrec::json::Dump(wire::Encode(*batch_expected)),
                       "batch") ||
        !IdentityCheck(&*client, "/v1/sweep",
                       stratrec::json::Dump(wire::Encode(sweep)),
                       stratrec::json::Dump(wire::Encode(*sweep_expected)),
                       "sweep")) {
      return 1;
    }
    std::printf("identity check: batch + sweep byte-identical to unsharded\n");
  }

  // The timed closed loop. Bodies are pre-encoded so the driver measures
  // the tier, not the client's JSON encoder. Every 4th request is a sweep.
  std::vector<std::string> batch_bodies;
  std::vector<std::string> sweep_bodies;
  for (size_t c = 0; c < num_clients; ++c) {
    workload::Generator client_gen({}, 0xC11E'0000ull + c);
    for (size_t r = 0; r < requests_per_client; ++r) {
      const size_t sequence = c * requests_per_client + r;
      if (r % 4 == 3) {
        sweep_bodies.push_back(
            stratrec::json::Dump(wire::Encode(MakeSweep(&client_gen,
                                                        sequence))));
      } else {
        batch_bodies.push_back(
            stratrec::json::Dump(wire::Encode(MakeBatch(&client_gen,
                                                        sequence))));
      }
    }
  }

  std::vector<ClientResult> per_client(num_clients);
  std::atomic<bool> failed{false};
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c]() {
      auto client = net::HttpClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      ClientResult& mine = per_client[c];
      size_t next_batch = c * ((requests_per_client * 3 + 3) / 4);
      size_t next_sweep = c * (requests_per_client / 4);
      for (size_t r = 0; r < requests_per_client; ++r) {
        const bool is_sweep = r % 4 == 3;
        const std::string& body = is_sweep ? sweep_bodies[next_sweep++]
                                           : batch_bodies[next_batch++];
        const char* target = is_sweep ? "/v1/sweep" : "/v1/batch";
        const auto start = std::chrono::steady_clock::now();
        auto response = client->PostJson(target, body);
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        if (!response.ok()) {
          failed.store(true);
          return;
        }
        mine.latencies_ms.push_back(elapsed.count());
        if (response->status_code != 200) {
          ++mine.non_200;
          if (response->status_code >= 500) ++mine.server_errors;
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  server->Stop();

  if (failed.load()) {
    std::fprintf(stderr, "a client hit a transport failure\n");
    return 1;
  }

  std::vector<double> latencies;
  size_t non_200 = 0;
  size_t server_errors = 0;
  for (const ClientResult& result : per_client) {
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    non_200 += result.non_200;
    server_errors += result.server_errors;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 0.50);
  const double p95 = Percentile(latencies, 0.95);
  const double p99 = Percentile(latencies, 0.99);
  const double requests_per_sec =
      wall.count() > 0.0
          ? static_cast<double>(latencies.size()) / wall.count()
          : 0.0;
  const api::ServiceStats stats = router->stats();

  stratrec::AsciiTable table({"clients", "requests", "p50 ms", "p95 ms",
                              "p99 ms", "req/s", "non-200", "rejected"});
  table.AddRow({std::to_string(num_clients), std::to_string(latencies.size()),
                stratrec::FormatDouble(p50, 2), stratrec::FormatDouble(p95, 2),
                stratrec::FormatDouble(p99, 2),
                stratrec::FormatDouble(requests_per_sec, 1),
                std::to_string(non_200),
                std::to_string(stats.rejected_requests)});
  table.Print();

  std::string json =
      "{\n  \"workload\": {\"strategies\": " + std::to_string(num_strategies) +
      ", \"shards\": " + std::to_string(num_shards) +
      ", \"clients\": " + std::to_string(num_clients) +
      ", \"requests_per_client\": " + std::to_string(requests_per_client) +
      ", \"hardware_threads\": " + std::to_string(hardware) +
      ", \"kernel_dispatch\": \"" +
      stratrec::core::kernels::DispatchLevelName(
          stratrec::core::kernels::ActiveDispatchLevel()) +
      "\", \"compiler_flags\": \"" + stratrec::core::kernels::CompileFlags() +
      "\"},\n  \"results\": {\"requests\": " + std::to_string(latencies.size()) +
      ", \"seconds\": " + stratrec::FormatDouble(wall.count(), 6) +
      ", \"p50_ms\": " + stratrec::FormatDouble(p50, 3) +
      ", \"p95_ms\": " + stratrec::FormatDouble(p95, 3) +
      ", \"p99_ms\": " + stratrec::FormatDouble(p99, 3) +
      ", \"requests_per_sec\": " +
      stratrec::FormatDouble(requests_per_sec, 2) +
      ", \"non_200\": " + std::to_string(non_200) +
      ", \"server_errors\": " + std::to_string(server_errors) +
      ", \"rejected_requests\": " + std::to_string(stats.rejected_requests) +
      ", \"retry_after_hints\": " +
      std::to_string(stats.retry_after_hints) +
      ", \"identity\": \"ok\"}\n}\n";
  std::printf("\n%s", json.c_str());

  if (FILE* out = std::fopen("serving_load.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("(written to serving_load.json)\n");
  }

  if (server_errors > 0) {
    std::fprintf(stderr, "%zu server errors (5xx) during the loop\n",
                 server_errors);
    return 1;
  }
  return 0;
}
