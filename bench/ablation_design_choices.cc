// Ablation bench for the design choices DESIGN.md calls out:
//   (1) workforce policy — minimal-workforce (our default) vs the paper's
//       literal max-of-three rule (Section 3.2);
//   (2) aggregation — sum-case vs max-case (Figure 3b/3c);
//   (3) the single-item guard on the pay-off greedy (Theorem 3's trick);
//   (4) the multi-objective scalarization's throughput/pay-off trade-off
//       (Section 7 future work).
#include <cstdio>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/ascii_table.h"
#include "src/core/multi_objective.h"
#include "src/workload/generators.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace api = stratrec::api;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

constexpr int kRuns = 10;
constexpr int kNumStrategies = 200;
constexpr int kNumRequests = 10;
constexpr int kK = 3;
constexpr double kW = 0.8;

workload::Generator MakeGenerator(int run) {
  return workload::Generator({}, 0xAB1A'7E0Full + static_cast<uint64_t>(run));
}

std::vector<core::DeploymentRequest> MakeRequests(workload::Generator* g) {
  return g->RequestsWithRanges(kNumRequests, kK, {0.5, 0.75}, {0.7, 1.0},
                               {0.7, 1.0});
}

void PolicyAndAggregationAblation() {
  std::printf(
      "\n(1+2) workforce policy x aggregation: satisfied requests and "
      "workforce used\n");
  AsciiTable table({"policy", "aggregation", "satisfied", "workforce used"});
  for (auto policy : {core::WorkforcePolicy::kMinimalWorkforce,
                      core::WorkforcePolicy::kPaperMaxOfThree}) {
    for (auto aggregation :
         {core::AggregationMode::kSum, core::AggregationMode::kMax}) {
      double satisfied = 0.0, used = 0.0;
      for (int run = 0; run < kRuns; ++run) {
        auto generator = MakeGenerator(run);
        auto service = stratrec::Service::Create(
            api::CatalogFromProfiles(generator.Profiles(kNumStrategies)));
        if (!service.ok()) continue;
        api::BatchRequest batch;
        batch.requests = MakeRequests(&generator);
        batch.availability = api::AvailabilitySpec::Fixed(kW);
        batch.policy = policy;
        batch.aggregation = aggregation;
        batch.recommend_alternatives = false;
        auto report = service->SubmitBatch(batch);
        if (!report.ok()) continue;
        const core::BatchResult& result = report->result.aggregator.batch;
        satisfied += static_cast<double>(result.satisfied.size());
        used += result.workforce_used;
      }
      table.AddRow(
          {policy == core::WorkforcePolicy::kMinimalWorkforce ? "minimal"
                                                              : "max-of-three",
           aggregation == core::AggregationMode::kSum ? "sum" : "max",
           FormatDouble(satisfied / kRuns, 2), FormatDouble(used / kRuns, 3)});
    }
  }
  table.Print();
  std::printf(
      "(max-of-three inflates per-deployment workforce — full budgets are "
      "spent —\nso fewer requests fit; sum-case charges k strategies, "
      "max-case one.)\n");
}

void GuardAblation() {
  std::printf("\n(3) single-item guard on the pay-off greedy\n");
  AsciiTable table({"variant", "mean payoff", "worst factor vs exact"});
  double guarded_total = 0.0, unguarded_total = 0.0, exact_total = 0.0;
  double guarded_worst = 1.0, unguarded_worst = 1.0;
  for (int run = 0; run < kRuns * 5; ++run) {
    auto generator = MakeGenerator(run);
    auto service = stratrec::Service::Create(
        api::CatalogFromProfiles(generator.Profiles(30)));
    if (!service.ok()) continue;
    api::BatchRequest batch;
    batch.requests = MakeRequests(&generator);
    batch.availability = api::AvailabilitySpec::Fixed(0.5);
    batch.objective = core::Objective::kPayoff;
    batch.aggregation = core::AggregationMode::kMax;
    batch.recommend_alternatives = false;
    auto solve = [&](const char* algorithm) -> stratrec::Result<double> {
      batch.algorithm = algorithm;
      auto report = service->SubmitBatch(batch);
      if (!report.ok()) return report.status();
      return report->result.aggregator.batch.total_objective;
    };
    auto guarded = solve("batchstrat");
    auto unguarded = solve("baseline-g");
    auto exact = solve("brute-force");
    if (!guarded.ok() || !unguarded.ok() || !exact.ok()) continue;
    guarded_total += *guarded;
    unguarded_total += *unguarded;
    exact_total += *exact;
    if (*exact > 0) {
      guarded_worst = std::min(guarded_worst, *guarded / *exact);
      unguarded_worst = std::min(unguarded_worst, *unguarded / *exact);
    }
  }
  table.AddRow({"BatchStrat (guarded)", FormatDouble(guarded_total / (kRuns * 5), 3),
                FormatDouble(guarded_worst, 3)});
  table.AddRow({"BaselineG (no guard)",
                FormatDouble(unguarded_total / (kRuns * 5), 3),
                FormatDouble(unguarded_worst, 3)});
  table.AddRow({"BruteForce", FormatDouble(exact_total / (kRuns * 5), 3),
                "1.000"});
  table.Print();
}

void ParetoAblation() {
  std::printf(
      "\n(4) multi-objective scalarization: throughput/pay-off trade-off\n");
  auto generator = MakeGenerator(0);
  const auto profiles = generator.Profiles(kNumStrategies);
  // Wide budget (= pay-off) spread and tight capacity so that maximizing
  // count and maximizing pay-off pick different request subsets.
  const auto requests = generator.RequestsWithRanges(
      20, kK, {0.5, 0.75}, {0.3, 1.0}, {0.7, 1.0});
  auto curve = core::SweepPareto(requests, profiles, 0.4, 6);
  if (!curve.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 curve.status().ToString().c_str());
    return;
  }
  AsciiTable table({"payoff weight", "throughput", "payoff"});
  for (const auto& point : *curve) {
    table.AddRow({FormatDouble(point.payoff_weight, 1),
                  FormatDouble(point.throughput, 1),
                  FormatDouble(point.payoff, 3)});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Ablation: design choices (defaults |S|=%d m=%d k=%d W=%.2f, %d "
      "runs)\n",
      kNumStrategies, kNumRequests, kK, kW, kRuns);
  PolicyAndAggregationAblation();
  GuardAblation();
  ParetoAblation();
  return 0;
}
