// Figure 14: percentage of deployment requests satisfiable (before invoking
// ADPaR), varying k, m, |S| and W, for uniform vs normal strategy dimension
// distributions. Paper defaults: |S| = 10000, m = 10, k = 10, W = 0.5; each
// point averages 10 runs.
//
// Interpretation note (EXPERIMENTS.md §Fig14): a request is "satisfied" when
// at least k strategies are individually deployable for it within the
// available workforce W — i.e. the workforce-requirement cell is feasible
// and costs at most W. The paper's flat batch-size panel (b) shows its
// metric does not model cross-request capacity competition, so neither does
// this bench; the batch-competition variants are exercised in Figures 15/16.
#include <cstdio>
#include <functional>

#include "src/common/ascii_table.h"
#include "src/core/workforce.h"
#include "src/workload/generators.h"

namespace {

using stratrec::AsciiTable;
using stratrec::FormatDouble;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

constexpr int kDefaultS = 10000;
constexpr int kDefaultM = 10;
constexpr int kDefaultK = 10;
constexpr double kDefaultW = 0.5;
constexpr int kRuns = 10;

double SatisfiedFraction(workload::DimDistribution distribution, int num_s,
                         int m, int k, double w, uint64_t seed) {
  workload::GeneratorOptions options;
  options.distribution = distribution;
  workload::Generator generator(options, seed);
  const auto profiles = generator.Profiles(num_s);
  const auto requests = generator.Requests(m, k);
  const auto matrix = core::WorkforceMatrix::Compute(requests, profiles);

  int satisfied = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    int deployable = 0;
    for (size_t j = 0; j < profiles.size(); ++j) {
      const auto& cell = matrix.At(i, j);
      if (cell.feasible && cell.requirement <= w) ++deployable;
      if (deployable >= k) break;
    }
    if (deployable >= k) ++satisfied;
  }
  return static_cast<double>(satisfied) / static_cast<double>(m);
}

double Averaged(workload::DimDistribution distribution, int num_s, int m,
                int k, double w) {
  double total = 0.0;
  for (int run = 0; run < kRuns; ++run) {
    total += SatisfiedFraction(distribution, num_s, m, k, w,
                               0xF16'14ull * 1000 + static_cast<uint64_t>(run));
  }
  return total / kRuns;
}

void Panel(const char* title, const char* x_label,
           const std::vector<double>& xs,
           const std::function<double(workload::DimDistribution, double)>&
               evaluate) {
  std::printf("\n%s\n", title);
  AsciiTable table({x_label, "uniform", "normal"});
  for (double x : xs) {
    table.AddRow(
        {FormatDouble(x, x < 1.0 ? 2 : 0),
         FormatDouble(evaluate(workload::DimDistribution::kUniform, x), 4),
         FormatDouble(evaluate(workload::DimDistribution::kNormal, x), 4)});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf(
      "Figure 14: %% satisfied requests before invoking ADPaR\n"
      "defaults: |S|=%d m=%d k=%d W=%.2f, %d runs per point\n",
      kDefaultS, kDefaultM, kDefaultK, kDefaultW, kRuns);

  Panel("(a) varying k", "k", {10, 100, 1000, 10000},
        [](workload::DimDistribution d, double k) {
          return Averaged(d, kDefaultS, kDefaultM, static_cast<int>(k),
                          kDefaultW);
        });
  Panel("(b) varying m", "m", {10, 100, 1000, 10000},
        [](workload::DimDistribution d, double m) {
          return Averaged(d, kDefaultS, static_cast<int>(m), kDefaultK,
                          kDefaultW);
        });
  Panel("(c) varying |S|", "|S|", {10, 100, 1000, 10000},
        [](workload::DimDistribution d, double s) {
          return Averaged(d, static_cast<int>(s), kDefaultM, kDefaultK,
                          kDefaultW);
        });
  Panel("(d) varying W", "W", {0.5, 0.6, 0.7, 0.8, 0.9},
        [](workload::DimDistribution d, double w) {
          return Averaged(d, kDefaultS, kDefaultM, kDefaultK, w);
        });
  return 0;
}
