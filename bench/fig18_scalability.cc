// Figure 18: scalability (running time) —
//   (a) batch deployment varying m: BruteForce (exponential) vs BatchStrat
//       (near-linear; the paper reports < 1 s for millions of strategies),
//   (b) ADPaR-Exact varying |S|,
//   (c) ADPaR-Exact varying k.
// Implemented with google-benchmark; times are wall-clock per solve. The
// batch panels go through stratrec::Service so the measured path is the one
// production callers take (facade + registry dispatch included).
#include <benchmark/benchmark.h>

#include "src/api/catalog.h"
#include "src/api/service.h"
#include "src/common/executor.h"
#include "src/core/adpar.h"
#include "src/workload/generators.h"

namespace {

namespace api = stratrec::api;
namespace core = stratrec::core;
namespace workload = stratrec::workload;

api::BatchRequest MakeBatch(workload::Generator* generator, int m,
                            const char* algorithm) {
  api::BatchRequest batch;
  batch.requests = generator->RequestsWithRanges(m, 10, {0.50, 0.75},
                                                 {0.70, 1.0}, {0.70, 1.0});
  batch.availability = api::AvailabilitySpec::Fixed(0.5);
  batch.aggregation = core::AggregationMode::kMax;
  batch.recommend_alternatives = false;
  batch.algorithm = algorithm;
  return batch;
}

// --- (a) Batch deployment varying m ---------------------------------------

void BM_BatchStrat_VaryM(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  workload::Generator generator({}, 0xF16'18ull);
  auto service = stratrec::Service::Create(
      api::CatalogFromProfiles(generator.Profiles(30)));
  const auto batch = MakeBatch(&generator, m, "batchstrat");
  for (auto _ : state) {
    auto result = service->SubmitBatch(batch);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BatchStrat_VaryM)->Arg(200)->Arg(400)->Arg(600)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_BatchStratMillionStrategies(benchmark::State& state) {
  // The paper's headline: "BatchStrat ... takes less than a second to handle
  // millions of strategies".
  workload::Generator generator({}, 0xF16'18ull + 1);
  auto service = stratrec::Service::Create(
      api::CatalogFromProfiles(generator.Profiles(1'000'000)));
  const auto batch = MakeBatch(&generator, 10, "batchstrat");
  for (auto _ : state) {
    auto result = service->SubmitBatch(batch);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BatchStratMillionStrategies)->Unit(benchmark::kMillisecond);

void BM_BruteForceBatch_VaryM(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  workload::Generator generator({}, 0xF16'18ull + 2);
  auto service = stratrec::Service::Create(
      api::CatalogFromProfiles(generator.Profiles(30)));
  const auto batch = MakeBatch(&generator, m, "brute-force");
  for (auto _ : state) {
    auto result = service->SubmitBatch(batch);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BruteForceBatch_VaryM)->DenseRange(5, 20, 5)
    ->Unit(benchmark::kMillisecond);

// --- (a') Stream sessions: events/second through the facade ---------------

void BM_StreamSession_Arrivals(benchmark::State& state) {
  workload::Generator generator({}, 0xF16'18ull + 6);
  api::ServiceConfig config;
  config.batch.aggregation = core::AggregationMode::kMax;
  config.availability = api::AvailabilitySpec::Fixed(0.7);
  auto service = stratrec::Service::Create(
      api::CatalogFromProfiles(generator.Profiles(100)), config);
  auto requests = generator.RequestsWithRanges(256, 2, {0.50, 0.75},
                                               {0.70, 1.0}, {0.70, 1.0});
  auto session = service->OpenStream();
  uint64_t counter = 0;
  for (auto _ : state) {
    auto& request = requests[counter % requests.size()];
    request.id = "req-" + std::to_string(counter++);
    auto decision = session->Arrive(request);
    benchmark::DoNotOptimize(decision);
    if (decision.ok() &&
        decision->kind == core::AdmissionDecision::Kind::kAdmitted) {
      (void)session->Complete(request.id);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(counter));
}
BENCHMARK(BM_StreamSession_Arrivals)->Unit(benchmark::kMicrosecond);

// --- (b) ADPaR-Exact varying |S| -------------------------------------------

void BM_AdparExact_VaryS(benchmark::State& state) {
  const int num_s = static_cast<int>(state.range(0));
  workload::Generator generator({}, 0xF16'18ull + 3);
  const auto strategies = generator.StrategyParams(num_s);
  const core::ParamVector d{0.9, 0.2, 0.2};
  for (auto _ : state) {
    auto result = core::AdparExact(strategies, d, 5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AdparExact_VaryS)->Arg(1000)->Arg(5000)->Arg(25000)
    ->Unit(benchmark::kMillisecond);

// --- (c) ADPaR-Exact varying k ----------------------------------------------

void BM_AdparExact_VaryK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  workload::Generator generator({}, 0xF16'18ull + 4);
  const auto strategies = generator.StrategyParams(10000);
  const core::ParamVector d{0.9, 0.2, 0.2};
  for (auto _ : state) {
    auto result = core::AdparExact(strategies, d, k);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AdparExact_VaryK)->Arg(10)->Arg(50)->Arg(250)
    ->Unit(benchmark::kMillisecond);

// --- Supporting micro-benchmarks --------------------------------------------

void BM_WorkforceMatrix(benchmark::State& state) {
  const int num_s = static_cast<int>(state.range(0));
  workload::Generator generator({}, 0xF16'18ull + 5);
  const auto profiles = generator.Profiles(num_s);
  const auto requests = generator.Requests(10, 10);
  for (auto _ : state) {
    auto matrix = core::WorkforceMatrix::Compute(
        requests, profiles, core::WorkforcePolicy::kMinimalWorkforce);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_WorkforceMatrix)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_WorkforceMatrixParallel(benchmark::State& state) {
  // The m x |S| matrix partitioned across an executor pool; compare against
  // BM_WorkforceMatrix/100000 for the threading win on this machine.
  const int num_s = 100000;
  stratrec::Executor executor(static_cast<size_t>(state.range(0)));
  workload::Generator generator({}, 0xF16'18ull + 5);
  const auto profiles = generator.Profiles(num_s);
  const auto requests = generator.Requests(10, 10);
  for (auto _ : state) {
    auto matrix = core::WorkforceMatrix::Compute(
        requests, profiles, core::WorkforcePolicy::kMinimalWorkforce,
        &executor, /*grain=*/4096);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_WorkforceMatrixParallel)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
